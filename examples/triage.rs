//! The verification engineer's triage loop: after running a testsuite,
//! split the uncovered associations into "definition never executed"
//! (steer control flow there, or suspect dead/infeasible code — the
//! paper's component-isolation analogy) versus "flow not observed"
//! (a redefinition or path problem between def and use), export CSVs for
//! tracking, and dump a waveform for debugging.
//!
//! Run with: `cargo run --example triage`
//!
//! With `DFT_METRICS=1` the run ends with a pipeline stage-timing table
//! (schedule / simulate / static / match, reachability-cache hit rate,
//! per-testcase event counts); `DFT_TRACE=1` additionally streams span
//! timings to stderr as they finish.

use std::fs;
use std::time::Duration;

use systemc_ams_dft::dft::{
    coverage_to_csv, diagnosis_to_csv, render_verdicts, AssertionExpr, AssertionSpec, DftSession,
    TestcaseSpec, UncoveredReason, Verdict,
};
use systemc_ams_dft::models::sensor::{
    build_sensor_cluster, sensor_design, sensor_testcases, BUGGY_ADC_FULL_SCALE,
};
use systemc_ams_dft::sim::{write_vcd, NullSink, RunLimits, Simulator};

/// Runtime properties of the (buggy) sensor: the ADC's saturation bug
/// shows up as an assertion violation in the same pass that computes
/// coverage — `adc_headroom` expects readings to stay under 400 LSB, but
/// the mis-scaled converter clips at 511.
fn sensor_assertions() -> Vec<AssertionSpec> {
    vec![
        AssertionSpec::new(
            "adc_in_range",
            AssertionExpr::never_above("adc.op_adc_out", 520.0),
        ),
        AssertionSpec::new(
            "adc_headroom",
            AssertionExpr::never_above("adc.op_adc_out", 400.0),
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = sensor_design(BUGGY_ADC_FULL_SCALE)?;
    let mut session = DftSession::new(design)?.with_assertions(sensor_assertions());
    // Batch run with a generous per-testcase wall budget: a runaway or
    // panicking testcase degrades (and is reported below) instead of
    // killing the whole triage run.
    let mut specs = Vec::new();
    for tc in sensor_testcases() {
        let (cluster, _) = build_sensor_cluster(&tc, BUGGY_ADC_FULL_SCALE)?;
        specs.push(TestcaseSpec::new(&tc.name, cluster, tc.duration));
    }
    let limits = RunLimits::none().with_wall_budget(Duration::from_secs(10));
    session.run_testcases_with(specs, limits);
    let cov = session.coverage();

    println!("=== per-testcase outcomes ===\n");
    for run in session.runs() {
        println!("  {:<6} {}", run.name, run.outcome);
    }
    let degraded = cov.degraded();
    if degraded.is_empty() {
        println!("  (all testcases completed; coverage is exact)");
    } else {
        println!(
            "  ({} degraded — coverage below is a lower bound)",
            degraded.len()
        );
    }

    println!("\n=== assertion verdicts (same simulation pass) ===");
    println!("\n{}", render_verdicts(session.runs()));

    // Degraded runs never report Holds: rerun TC1 under an activation
    // budget far too small to finish. A latched violation would survive,
    // but an unviolated property is Inconclusive — the tail of the trace
    // was never seen, so "holds" would be unsound.
    let tc1 = &sensor_testcases()[0];
    let (cluster, _) = build_sensor_cluster(tc1, BUGGY_ADC_FULL_SCALE)?;
    let mut partial =
        DftSession::new(sensor_design(BUGGY_ADC_FULL_SCALE)?)?.with_assertions(sensor_assertions());
    partial.run_testcases_with(
        vec![TestcaseSpec::new(&tc1.name, cluster, tc1.duration)],
        RunLimits::none().with_max_activations(4),
    );
    let partial_run = &partial.runs()[0];
    println!("degraded rerun ({}):", partial_run.outcome);
    for v in &partial_run.verdicts {
        assert_ne!(v.verdict, Verdict::Holds, "degraded runs never hold");
        println!("  {:<14} {}", v.name, v.verdict);
    }

    println!("\n=== uncovered-association triage ===\n");
    let diagnosis = cov.diagnose_uncovered(session.runs());
    let (dead, flow): (Vec<_>, Vec<_>) = diagnosis
        .iter()
        .partition(|(_, r)| *r == UncoveredReason::DefinitionNeverExecuted);
    println!("definition never executed ({}):", dead.len());
    for (c, _) in &dead {
        println!(
            "  {c}   -> add a testcase steering control flow to line {}",
            c.assoc.def_line
        );
    }
    println!("\nflow not observed ({}):", flow.len());
    for (c, _) in &flow {
        println!("  {c}   -> def ran; check redefinitions between def and use");
    }

    // CSV exports for CI/spreadsheet tracking.
    let out_dir = std::env::temp_dir().join("systemc-ams-dft");
    fs::create_dir_all(&out_dir)?;
    fs::write(out_dir.join("coverage.csv"), coverage_to_csv(&cov))?;
    fs::write(
        out_dir.join("triage.csv"),
        diagnosis_to_csv(&cov, session.runs()),
    )?;
    println!("\nwrote {}/coverage.csv and triage.csv", out_dir.display());

    // Waveform dump of a TC2 rerun, for GTKWave.
    let tc2 = &sensor_testcases()[1];
    let (cluster, probes) = build_sensor_cluster(tc2, BUGGY_ADC_FULL_SCALE)?;
    let mut sim = Simulator::new(cluster)?;
    sim.run(tc2.duration, &mut NullSink)?;
    let vcd = write_vcd(
        "sense_top",
        &[
            ("adc_out", &probes.adc_out),
            ("t_led", &probes.t_led),
            ("h_led", &probes.h_led),
        ],
    );
    let vcd_path = out_dir.join("tc2.vcd");
    fs::write(&vcd_path, &vcd)?;
    println!(
        "wrote {} ({} change records) — note adc_out clipping at 511",
        vcd_path.display(),
        vcd.lines().filter(|l| l.starts_with('#')).count()
    );

    let report = session.metrics();
    if report.is_empty() {
        println!("\n(set DFT_METRICS=1 for a pipeline stage-timing table)");
    } else {
        println!("\n=== pipeline stage timings ===\n\n{}", report.to_text());
    }
    Ok(())
}

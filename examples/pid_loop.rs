//! Runtime verification showcase: a PID loop with hand-written
//! assertions (settling time, overshoot bound, control-effort bound)
//! evaluated by the streaming monitor **in the same simulation pass** as
//! def-use coverage — then a fault-injection rerun whose detuned
//! integrator (anti-windup clamp disabled) falsifies the overshoot bound,
//! with the monitor pinning the first violation instant.
//!
//! Run with: `cargo run --example pid_loop`

use systemc_ams_dft::dft::{render_verdicts, verdicts_to_csv, DftSession, Verdict};
use systemc_ams_dft::models::pid::{
    build_pid_cluster, pid_assertions, pid_design, pid_testcases, PidTuning,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("PID loop — coverage and assertion verdicts from one pass\n");

    // Nominal tuning: every property holds, coverage comes for free.
    let mut session = DftSession::new(pid_design()?)?.with_assertions(pid_assertions());
    for tc in pid_testcases() {
        let (cluster, _) = build_pid_cluster(&tc, PidTuning::nominal())?;
        session.run_testcase(&tc.name, cluster, tc.duration)?;
    }
    let cov = session.coverage();
    println!(
        "coverage: {}/{} associations (same pass as the verdicts below)",
        cov.total_ratio().0,
        cov.total_ratio().1
    );
    println!("\n{}", render_verdicts(session.runs()));

    // Fault injection: the detuned integrator winds up and overshoots.
    let mut faulty = DftSession::new(pid_design()?)?.with_assertions(pid_assertions());
    for tc in pid_testcases() {
        let (cluster, _) = build_pid_cluster(&tc, PidTuning::detuned())?;
        faulty.run_testcase(&tc.name, cluster, tc.duration)?;
    }
    println!("after fault injection (detuned integrator):\n");
    println!("{}", render_verdicts(faulty.runs()));
    for run in faulty.runs() {
        for v in &run.verdicts {
            if let Verdict::Fails {
                first_violation_time,
            } = v.verdict
            {
                println!(
                    "  {}/{} first violated at {first_violation_time}",
                    run.name, v.name
                );
            }
        }
    }

    println!("\nCSV export:\n\n{}", verdicts_to_csv(faulty.runs()));
    Ok(())
}

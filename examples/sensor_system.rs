//! The paper's running example end-to-end: regenerates Table I for the
//! Fig. 2 sensor system and demonstrates how the coverage result exposes
//! the ADC-saturation interface bug.
//!
//! Run with: `cargo run --example sensor_system`

use systemc_ams_dft::dft::{render_summary, render_table1, DftSession};
use systemc_ams_dft::models::sensor::{
    build_sensor_cluster, sensor_design, sensor_testcases, BUGGY_ADC_FULL_SCALE,
    FIXED_ADC_FULL_SCALE,
};
use systemc_ams_dft::sim::{NullSink, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Sensor system (Fig. 1/Fig. 2) — data flow testing with TC1..TC3\n");

    let design = sensor_design(BUGGY_ADC_FULL_SCALE)?;
    let mut session = DftSession::new(design)?;
    println!(
        "static analysis: {} associations",
        session.static_analysis().len()
    );

    for tc in sensor_testcases() {
        let (cluster, _probes) = build_sensor_cluster(&tc, BUGGY_ADC_FULL_SCALE)?;
        let run = session.run_testcase(&tc.name, cluster, tc.duration)?;
        println!(
            "  {}: {} associations exercised, {} warnings",
            tc.name,
            run.exercised.len(),
            run.warnings.len()
        );
    }

    let cov = session.coverage();
    println!("\n=== Table I — SystemC-AMS TDF specific data flow associations ===\n");
    println!("{}", render_table1(&cov));
    println!("{}", render_summary(&cov));

    // The paper's §IV-B.3 finding: TC2 was expected to switch T_LED on, but
    // the 9-bit ADC saturates above 511 mV, so the pairs defined on lines
    // 49-52 of ctrl are never exercised.
    println!("=== the ADC interface bug ===");
    let suspicious: Vec<String> = cov
        .uncovered()
        .iter()
        .filter(|c| c.assoc.def_model == "ctrl" && (49..=52).contains(&c.assoc.def_line))
        .map(|c| c.to_string())
        .collect();
    println!(
        "uncovered associations from the T_LED branch (lines 49-52): {}",
        suspicious.len()
    );
    for s in &suspicious {
        println!("  {s}");
    }

    // Root-cause confirmation: rerun TC2 against a fixed ADC.
    let tc2 = &sensor_testcases()[1];
    let (buggy, probes_buggy) = build_sensor_cluster(tc2, BUGGY_ADC_FULL_SCALE)?;
    Simulator::new(buggy)?.run(tc2.duration, &mut NullSink)?;
    let (fixed, probes_fixed) = build_sensor_cluster(tc2, FIXED_ADC_FULL_SCALE)?;
    Simulator::new(fixed)?.run(tc2.duration, &mut NullSink)?;
    println!(
        "\nTC2 with 9-bit ADC : T_LED max = {} (ADC saturates at 511 mV)",
        probes_buggy.t_led.max_f64().unwrap_or(0.0)
    );
    println!(
        "TC2 with fixed ADC : T_LED max = {} (over-temperature detected)",
        probes_fixed.t_led.max_f64().unwrap_or(0.0)
    );
    Ok(())
}

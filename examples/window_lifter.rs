//! Case study §VI-A: the car window lifter, replaying the four testsuite
//! iterations of Table II and printing the per-iteration coverage rows.
//!
//! Run with: `cargo run --example window_lifter` (release recommended).

use systemc_ams_dft::dft::{render_table2, DftSession, Table2Row};
use systemc_ams_dft::models::window_lifter::{build_lifter_cluster, lifter_design, lifter_suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Car window lifter — testsuite refinement (Table II, rows 1-4)\n");

    let design = lifter_design()?;
    let suite = lifter_suite();
    let mut session = DftSession::new(design)?;
    println!(
        "static analysis: {} associations, {} lints",
        session.static_analysis().len(),
        session.static_analysis().lints.len()
    );

    let mut rows = Vec::new();
    let mut done = 0;
    for it in 0..suite.iterations() {
        for tc in &suite.up_to(it)[done..] {
            let (cluster, _probes) = build_lifter_cluster(tc)?;
            session.run_testcase(&tc.name, cluster, tc.duration)?;
        }
        done = suite.size_at(it);
        let cov = session.coverage();
        rows.push(Table2Row::from_coverage(
            &suite.name,
            it,
            suite.size_at(it),
            &cov,
        ));
    }

    println!("\n{}", render_table2(&rows));

    let cov = session.coverage();
    println!(
        "remaining uncovered associations: {}",
        cov.uncovered().len()
    );
    for w in session.runs().iter().flat_map(|r| &r.warnings).take(5) {
        println!("warning: {w:?}");
    }
    Ok(())
}

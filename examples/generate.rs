//! Coverage-guided testcase generation on all three case studies: the
//! paper's hand-refined suites (Table II) rediscovered by seeded search.
//!
//! For each AMS system this example (1) replays the paper's hand-written
//! testsuite to get its exercised-association baseline, (2) runs the
//! [`testgen::Generator`] from an *empty* suite until it matches that
//! baseline (or stagnates), (3) re-simulates the greedily minimized
//! subset through a fresh session to prove minimization preserved
//! coverage, and (4) re-runs the whole search at 1 and 4 matcher threads
//! to prove byte-identical determinism.
//!
//! Run with: `cargo run --release --example generate`
//!
//! Environment knobs (the CI smoke job shrinks the budget):
//!
//! * `DFT_GEN_SEED`  — search seed (default `3575`, i.e. `0xDF7`)
//! * `DFT_GEN_ITERS` — max refinement iterations (default 20)
//! * `DFT_GEN_CANDS` — candidates per iteration (default 32)
//! * `DFT_GEN_SMOKE` — set to `1` to skip the reach-the-baseline and
//!   determinism gates (small budgets cannot promise either)

use systemc_ams_dft::dft::{DftSession, Result as DftResult};
use systemc_ams_dft::gen::{ChannelSpec, GenConfig, GenOutcome, Generator};
use systemc_ams_dft::models::{buck_boost, sensor, window_lifter};
use systemc_ams_dft::signals::{Testcase, Testsuite};
use systemc_ams_dft::sim::{Cluster, SimTime};

/// One case study wired for generation.
struct System {
    name: &'static str,
    design: Box<dyn Fn() -> DftResult<systemc_ams_dft::dft::Design>>,
    build: fn(&Testcase) -> DftResult<Cluster>,
    hand_suite: fn() -> Testsuite,
    channels: Vec<ChannelSpec>,
    duration: SimTime,
}

fn systems() -> Vec<System> {
    vec![
        System {
            name: "Sensor System",
            design: Box::new(|| sensor::sensor_design(sensor::BUGGY_ADC_FULL_SCALE)),
            build: |tc| {
                sensor::build_sensor_cluster(tc, sensor::BUGGY_ADC_FULL_SCALE).map(|(c, _)| c)
            },
            hand_suite: sensor::sensor_suite,
            channels: vec![
                ChannelSpec::new(sensor::TS_CHANNEL, -0.1, 1.6),
                ChannelSpec::new(sensor::HS_CHANNEL, -0.1, 0.5),
            ],
            duration: SimTime::from_ms(2),
        },
        System {
            name: "Car Window Lifter",
            design: Box::new(window_lifter::lifter_design),
            build: |tc| window_lifter::build_lifter_cluster(tc).map(|(c, _)| c),
            hand_suite: window_lifter::lifter_suite,
            channels: vec![
                ChannelSpec::new(window_lifter::BTN_UP, 0.0, 1.0),
                ChannelSpec::new(window_lifter::BTN_DOWN, 0.0, 1.0),
                ChannelSpec::new(window_lifter::LOAD, 0.0, 5.0),
            ],
            duration: SimTime::from_ms(160),
        },
        System {
            name: "Buck Boost Converter",
            design: Box::new(buck_boost::bb_design),
            build: |tc| buck_boost::build_bb_cluster(tc).map(|(c, _)| c),
            hand_suite: buck_boost::bb_suite,
            channels: vec![
                ChannelSpec::new(buck_boost::VIN, 0.0, 32.0),
                ChannelSpec::new(buck_boost::VREF, 0.0, 45.0),
            ],
            duration: SimTime::from_ms(60),
        },
    ]
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Replays the hand-written suite and returns its exercised count.
fn baseline(sys: &System) -> Result<usize, Box<dyn std::error::Error>> {
    let mut session = DftSession::new((sys.design)()?)?;
    for tc in (sys.hand_suite)().all() {
        let cluster = (sys.build)(tc)?;
        session.run_testcase(&tc.name, cluster, tc.duration)?;
    }
    Ok(session.coverage().exercised_count())
}

fn generate(sys: &System, cfg: GenConfig) -> Result<GenOutcome, Box<dyn std::error::Error>> {
    let gen = Generator::new(
        (sys.design)()?,
        sys.channels.clone(),
        sys.duration,
        sys.build,
        cfg,
    )?
    .named(sys.name);
    Ok(gen.run())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = env_u64("DFT_GEN_SEED", 0xDF7);
    let iters = env_u64("DFT_GEN_ITERS", 20) as usize;
    let cands = env_u64("DFT_GEN_CANDS", 32) as usize;
    let smoke = env_u64("DFT_GEN_SMOKE", 0) == 1;
    println!(
        "Coverage-guided generation — seed {seed}, {iters} iterations x {cands} candidates{}\n",
        if smoke { " (smoke mode)" } else { "" }
    );

    for sys in systems() {
        let base = baseline(&sys)?;
        let hand = (sys.hand_suite)();
        let cfg = GenConfig {
            seed,
            max_iterations: iters,
            candidates_per_iteration: cands,
            target_exercised: Some(base),
            ..GenConfig::default()
        };

        let outcome = generate(&sys, cfg.clone())?;
        let exercised = outcome.coverage.exercised_count();
        println!("{}", outcome.report.render());
        println!(
            "  hand-written: {} cases -> {base} exercised | generated: {} cases -> {exercised} \
             exercised | minimized: {} cases -> {} exercised\n",
            hand.all().len(),
            outcome.suite.all().len(),
            outcome.minimized.len(),
            outcome.minimized_exercised,
        );

        if !smoke {
            assert!(
                exercised >= base,
                "{}: generated coverage {exercised} below hand-written baseline {base}",
                sys.name
            );

            // Minimization preserves coverage under re-simulation.
            let mut replay = DftSession::new((sys.design)()?)?;
            for tc in &outcome.minimized {
                let cluster = (sys.build)(tc)?;
                replay.run_testcase(&tc.name, cluster, tc.duration)?;
            }
            assert_eq!(
                replay.coverage().exercised_count(),
                exercised,
                "{}: minimized suite lost coverage on replay",
                sys.name
            );

            // Byte-determinism: the same seed at 1 and 4 matcher threads.
            let one = generate(
                &sys,
                GenConfig {
                    threads: 1,
                    ..cfg.clone()
                },
            )?;
            let four = generate(&sys, GenConfig { threads: 4, ..cfg })?;
            assert_eq!(one.suite, four.suite, "{}: suites diverge", sys.name);
            assert_eq!(
                one.report.render(),
                four.report.render(),
                "{}: reports diverge",
                sys.name
            );
            println!("  determinism: 1-thread and 4-thread runs byte-identical\n");
        }
    }

    println!("all systems done");
    Ok(())
}

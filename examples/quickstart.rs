//! Quickstart: the full Fig. 3 pipeline on a two-model toy design.
//!
//! Authors a tiny TDF design in minic, runs the static analysis, executes
//! two testcases with instrumentation, and prints the coverage result with
//! the uncovered-association work list.
//!
//! Run with: `cargo run --example quickstart`

use systemc_ams_dft::dft::{render_summary, render_table1, Design, DftSession};
use systemc_ams_dft::interp::{Interface, InterpModule, TdfModelDef};
use systemc_ams_dft::sim::{Cluster, FnSource, SimTime, Value};

const SRC: &str = "\
void sensor::processing()
{
    double mv = ip_in * 1000;
    double out = 0;
    bool alert = false;
    if (mv > 30 && mv < 1500) {
        out = mv;
        alert = true;
    }
    op_alert.write(alert);
    op_level = out;
}
void monitor::processing()
{
    bool alert = ip_alert;
    double level = ip_level;
    if (alert && level > 500) op_led = 1;
    else op_led = 0;
}";

fn model_defs() -> Vec<TdfModelDef> {
    vec![
        TdfModelDef::new(
            "sensor",
            Interface::new()
                .input("ip_in")
                .output("op_alert")
                .output("op_level")
                .timestep(SimTime::from_us(10)),
        ),
        TdfModelDef::new(
            "monitor",
            Interface::new()
                .input("ip_alert")
                .input("ip_level")
                .output("op_led"),
        ),
    ]
}

fn build_cluster(level_volts: f64) -> Result<Cluster, Box<dyn std::error::Error>> {
    let tu = minic::parse(SRC)?;
    let mut cluster = Cluster::new("top");
    let src = cluster.add_module(Box::new(FnSource::new(
        "stim",
        SimTime::from_us(10),
        move |_| Value::Double(level_volts),
    )))?;
    let sensor = cluster.add_module(Box::new(InterpModule::new(
        &tu,
        "sensor",
        model_defs()[0].interface.clone(),
    )?))?;
    let monitor = cluster.add_module(Box::new(InterpModule::new(
        &tu,
        "monitor",
        model_defs()[1].interface.clone(),
    )?))?;
    cluster.connect(src, "op_out", sensor, "ip_in")?;
    cluster.connect(sensor, "op_alert", monitor, "ip_alert")?;
    cluster.connect(sensor, "op_level", monitor, "ip_level")?;
    Ok(cluster)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1: static analysis over sources + netlist.
    let tu = minic::parse(SRC)?;
    let netlist = build_cluster(0.0)?.netlist();
    let design = Design::new(tu, model_defs(), netlist)?;
    let mut session = DftSession::new(design)?;

    println!("=== static associations ===");
    for assoc in &session.static_analysis().associations {
        println!("  {assoc}");
    }

    // Stages 2+3: two testcases — a cool level and a hot level.
    session.run_testcase("TC1_cool", build_cluster(0.1)?, SimTime::from_ms(1))?;
    session.run_testcase("TC2_hot", build_cluster(0.8)?, SimTime::from_ms(1))?;

    let cov = session.coverage();
    println!("\n=== coverage matrix (Table-I style) ===");
    println!("{}", render_table1(&cov));
    println!("=== summary ===");
    println!("{}", render_summary(&cov));

    if cov.uncovered().is_empty() {
        println!("all associations exercised — all-dataflow satisfied");
    } else {
        println!("uncovered associations (add testcases for these):");
        for missing in cov.uncovered() {
            println!("  {missing}");
        }
    }
    Ok(())
}

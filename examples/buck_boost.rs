//! Case study §VI-B: the buck-boost converter, replaying the four
//! testsuite iterations of Table II and printing the per-iteration rows —
//! including the paper's finding that all-PFirm and all-PWeak are already
//! satisfied by the initial suite.
//!
//! Run with: `cargo run --example buck_boost` (release recommended).

use systemc_ams_dft::dft::{render_table2, Criterion, DftSession, MetricsReport, Table2Row};
use systemc_ams_dft::models::buck_boost::{bb_design, bb_suite, build_bb_cluster};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Buck-boost converter — testsuite refinement (Table II, rows 5-8)\n");

    let design = bb_design()?;
    let suite = bb_suite();
    let mut session = DftSession::new(design)?;
    println!(
        "static analysis: {} associations",
        session.static_analysis().len()
    );

    let mut rows = Vec::new();
    let mut done = 0;
    for it in 0..suite.iterations() {
        for tc in &suite.up_to(it)[done..] {
            let (cluster, _probes) = build_bb_cluster(tc)?;
            session.run_testcase(&tc.name, cluster, tc.duration)?;
        }
        done = suite.size_at(it);
        let cov = session.coverage();
        if it == 0 {
            println!(
                "iteration 0 verdicts: all-PFirm {}, all-PWeak {}, all-defs {}",
                cov.satisfies(Criterion::AllPFirm),
                cov.satisfies(Criterion::AllPWeak),
                cov.satisfies(Criterion::AllDefs),
            );
        }
        rows.push(Table2Row::from_coverage(
            &suite.name,
            it,
            suite.size_at(it),
            &cov,
        ));
    }

    println!("\n{}", render_table2(&rows));

    let cov = session.coverage();
    println!(
        "final: {}/{} associations covered",
        cov.total_ratio().0,
        cov.total_ratio().1
    );

    let report = MetricsReport::capture();
    if !report.is_empty() {
        println!(
            "\npipeline stage timings (DFT_METRICS):\n\n{}",
            report.to_text()
        );
    }
    Ok(())
}

//! # tdf-interp — interpreted minic models as TDF modules
//!
//! The paper's dynamic analysis instruments the C++ sources of every TDF
//! model (a print before each definition/use, plus `parallel_print()`
//! helpers next to library components) and executes the instrumented design
//! against the testsuite. This crate is the Rust-native equivalent: a minic
//! `processing()` body is *interpreted* inside the `tdf-sim` kernel, and the
//! interpreter emits a [`tdf_sim::Event`] for every definition and use as it
//! executes — the same observation stream the printf instrumentation would
//! produce, with exact source lines and feeding provenance for input-port
//! reads.
//!
//! ## Example
//!
//! ```
//! use tdf_interp::{Interface, InterpModule};
//! use tdf_sim::{Cluster, FnSource, Probe, RecordingSink, SimTime, Simulator, Value};
//!
//! let tu = minic::parse(
//!     "void TS::processing() {\n\
//!          double tmpr = ip_signal_in * 1000;\n\
//!          if (tmpr > 30) { op_signal_out = tmpr; } else { op_signal_out = 0; }\n\
//!      }",
//! ).expect("valid source");
//! let ts = InterpModule::new(
//!     &tu,
//!     "TS",
//!     Interface::new()
//!         .input("ip_signal_in")
//!         .output("op_signal_out")
//!         .timestep(SimTime::from_us(1)),
//! )?;
//!
//! let mut cluster = Cluster::new("top");
//! let src = cluster.add_module(Box::new(FnSource::new(
//!     "src", SimTime::from_us(1), |_| Value::Double(0.1),
//! ))).unwrap();
//! let tsid = cluster.add_module(Box::new(ts)).unwrap();
//! let (probe, trace) = Probe::new("probe");
//! let pid = cluster.add_module(Box::new(probe)).unwrap();
//! cluster.connect(src, "op_out", tsid, "ip_signal_in").unwrap();
//! cluster.connect(tsid, "op_signal_out", pid, "tdf_i").unwrap();
//!
//! let mut sim = Simulator::new(cluster).unwrap();
//! let mut sink = RecordingSink::new();
//! sim.run(SimTime::from_us(2), &mut sink).unwrap();
//! assert_eq!(trace.values_f64(), vec![100.0, 100.0]);
//! assert!(!sink.events.is_empty(), "def/use instrumentation recorded");
//! # Ok::<(), tdf_interp::InterpError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod interface;
mod module;

pub use error::{InterpError, Result};
pub use interface::{Interface, TdfModelDef, VarKind};
pub use module::InterpModule;

//! Model interfaces: the elaboration-time declaration of a minic model's
//! ports and members (what SystemC-AMS declares as `sca_tdf::sca_in<T>`,
//! `sca_tdf::sca_out<T>` fields and C++ member variables).

use tdf_sim::{PortSpec, SimTime, Value};

/// How an identifier inside a `processing()` body resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Function-local variable (fresh every activation).
    Local,
    /// Input port with the given port index.
    InPort(usize),
    /// Output port with the given port index.
    OutPort(usize),
    /// Module member (persists across activations).
    Member,
}

impl VarKind {
    /// Whether this is a port of either direction.
    pub fn is_port(self) -> bool {
        matches!(self, VarKind::InPort(_) | VarKind::OutPort(_))
    }
}

/// Declared interface of one minic TDF model.
#[derive(Debug, Clone, Default, PartialEq, Hash)]
pub struct Interface {
    /// Input port specs, index order.
    pub inputs: Vec<PortSpec>,
    /// Output port specs, index order.
    pub outputs: Vec<PortSpec>,
    /// Members with initial values.
    pub members: Vec<(String, Value)>,
    /// Optional timestep anchor.
    pub timestep: Option<SimTime>,
}

impl Interface {
    /// An empty interface.
    pub fn new() -> Self {
        Interface::default()
    }

    /// Adds a rate-1 input port (builder style).
    pub fn input(mut self, name: &str) -> Self {
        self.inputs.push(PortSpec::new(name));
        self
    }

    /// Adds an input port with explicit spec.
    pub fn input_spec(mut self, spec: PortSpec) -> Self {
        self.inputs.push(spec);
        self
    }

    /// Adds a rate-1 output port (builder style).
    pub fn output(mut self, name: &str) -> Self {
        self.outputs.push(PortSpec::new(name));
        self
    }

    /// Adds an output port with explicit spec.
    pub fn output_spec(mut self, spec: PortSpec) -> Self {
        self.outputs.push(spec);
        self
    }

    /// Adds a member with an initial value (builder style).
    pub fn member(mut self, name: &str, initial: impl Into<Value>) -> Self {
        self.members.push((name.to_owned(), initial.into()));
        self
    }

    /// Anchors the module timestep (builder style).
    pub fn timestep(mut self, ts: SimTime) -> Self {
        self.timestep = Some(ts);
        self
    }

    /// Resolves `name` against this interface (locals resolve elsewhere).
    pub fn kind_of(&self, name: &str) -> Option<VarKind> {
        if let Some(i) = self.inputs.iter().position(|p| p.name == name) {
            return Some(VarKind::InPort(i));
        }
        if let Some(i) = self.outputs.iter().position(|p| p.name == name) {
            return Some(VarKind::OutPort(i));
        }
        if self.members.iter().any(|(m, _)| m == name) {
            return Some(VarKind::Member);
        }
        None
    }

    /// The [`minic::ExternalDecls`] view of this interface, for semantic
    /// checking of the model body with [`minic::type_check`]. Port element
    /// types are not tracked by TDF interfaces, so ports are declared as
    /// `double` (every minic type coerces both ways).
    pub fn external_decls(&self) -> minic::ExternalDecls {
        let mut ext = minic::ExternalDecls::new();
        for p in &self.inputs {
            ext = ext.input(&p.name, minic::Type::Double);
        }
        for p in &self.outputs {
            ext = ext.output(&p.name, minic::Type::Double);
        }
        for (m, v) in &self.members {
            let ty = match v {
                Value::Double(_) => minic::Type::Double,
                Value::Int(_) => minic::Type::Int,
                Value::Bool(_) => minic::Type::Bool,
            };
            ext = ext.member(m, ty);
        }
        ext
    }

    /// All declared names (for duplicate checking).
    pub fn names(&self) -> Vec<&str> {
        self.inputs
            .iter()
            .map(|p| p.name.as_str())
            .chain(self.outputs.iter().map(|p| p.name.as_str()))
            .chain(self.members.iter().map(|(m, _)| m.as_str()))
            .collect()
    }
}

/// A minic model definition: the model name plus its declared interface.
/// The static analysis (in `dft-core`) consumes a slice of these together
/// with the parsed sources and the cluster netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct TdfModelDef {
    /// The model (class) name, matching `model::processing()` in the source.
    pub model: String,
    /// The declared interface.
    pub interface: Interface,
}

impl TdfModelDef {
    /// Creates a model definition.
    pub fn new(model: impl Into<String>, interface: Interface) -> Self {
        TdfModelDef {
            model: model.into(),
            interface,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let iface = Interface::new()
            .input("ip_a")
            .input("ip_b")
            .output("op_y")
            .member("m_state", 0i64)
            .timestep(SimTime::from_us(5));
        assert_eq!(iface.kind_of("ip_b"), Some(VarKind::InPort(1)));
        assert_eq!(iface.kind_of("op_y"), Some(VarKind::OutPort(0)));
        assert_eq!(iface.kind_of("m_state"), Some(VarKind::Member));
        assert_eq!(iface.kind_of("local"), None);
        assert_eq!(iface.names().len(), 4);
        assert_eq!(iface.timestep, Some(SimTime::from_us(5)));
    }

    #[test]
    fn var_kind_is_port() {
        assert!(VarKind::InPort(0).is_port());
        assert!(VarKind::OutPort(1).is_port());
        assert!(!VarKind::Member.is_port());
        assert!(!VarKind::Local.is_port());
    }

    #[test]
    fn explicit_port_specs() {
        let iface = Interface::new()
            .input_spec(PortSpec::new("ip_x").with_rate(2))
            .output_spec(PortSpec::new("op_y").with_delay(1));
        assert_eq!(iface.inputs[0].rate, 2);
        assert_eq!(iface.outputs[0].delay, 1);
    }
}

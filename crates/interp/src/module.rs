//! The interpreted TDF module: executes a minic `processing()` body inside
//! the `tdf-sim` kernel, emitting a def/use [`Event`] for every variable
//! access — the dynamic-analysis instrumentation of the paper, without the
//! printf round trip.

use std::collections::HashMap;

use minic::{BinOp, Block, Expr, ExprKind, Function, Stmt, StmtKind, TranslationUnit, UnOp};
use tdf_sim::{
    CompactEvent, EventKind, Interner, ModuleClass, ModuleSpec, ProcessingCtx, ProvId, Provenance,
    Sample, Sym, TdfModule, Value,
};

use crate::error::{InterpError, Result};
use crate::interface::{Interface, TdfModelDef, VarKind};

/// Builtin math functions callable from minic code.
const BUILTINS: &[&str] = &["abs", "min", "max", "sqrt", "floor", "ceil", "pow"];

/// Safety valve against runaway `while`/`for` loops in model code.
const MAX_LOOP_ITERATIONS: usize = 1_000_000;

/// A TDF module whose behaviour is an interpreted minic `processing()` body.
///
/// Every definition and use executed is reported to the simulator's
/// [`EventSink`](tdf_sim::EventSink); output-port writes stamp the produced
/// [`Sample`] with `(port, line, model)` provenance so downstream models can
/// attribute the samples they read.
pub struct InterpModule {
    name: String,
    def: TdfModelDef,
    function: Function,
    /// Optional `model::initialize()` body, run (with instrumentation) at
    /// the start of the first activation after elaboration — the paper's
    /// "location of initialize() function" definition site for members.
    init_function: Option<Function>,
    kinds: HashMap<String, VarKind>,
    members: HashMap<String, Value>,
    run_init: bool,
    emit_cache: Option<EmitCache>,
}

/// Interned ids for this module's emit sites, valid against exactly one
/// cluster [`Interner`] (identified by address; rebuilt when the module
/// meets a different one, dropped on `initialize()`). With the cache in
/// place every def/use event is a [`CompactEvent`] copy — no `String`
/// allocation per event.
struct EmitCache {
    interner_addr: usize,
    model: Sym,
    vars: HashMap<String, Sym>,
}

impl EmitCache {
    fn build(name: &str, kinds: &HashMap<String, VarKind>, interner: &Interner) -> EmitCache {
        let mut names: Vec<&String> = kinds.keys().collect();
        names.sort_unstable(); // deterministic intern order
        EmitCache {
            interner_addr: interner as *const Interner as usize,
            model: interner.intern(name),
            vars: names
                .into_iter()
                .map(|n| (n.clone(), interner.intern(n)))
                .collect(),
        }
    }

    fn sym(&self, var: &str, interner: &Interner) -> Sym {
        match self.vars.get(var) {
            Some(&s) => s,
            None => interner.intern(var),
        }
    }
}

impl std::fmt::Debug for InterpModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterpModule")
            .field("name", &self.name)
            .field("model", &self.def.model)
            .finish()
    }
}

impl InterpModule {
    /// Binds the `model::processing()` function from `tu` to `interface`.
    ///
    /// # Errors
    ///
    /// * [`InterpError::MissingProcessing`] — no such function in `tu`;
    /// * [`InterpError::DuplicateName`] — interface declares a name twice;
    /// * [`InterpError::UnknownIdentifier`] — the body references a name
    ///   that is neither a declared local nor in the interface;
    /// * [`InterpError::WriteToInput`] — the body assigns an input port.
    ///
    /// # Panics
    ///
    /// Panics if any interface port has a rate other than 1 (interpreted
    /// models are single-rate; use native components for multirate blocks).
    pub fn new(tu: &TranslationUnit, model: &str, interface: Interface) -> Result<InterpModule> {
        Self::with_processing(tu, model, "processing", interface)
    }

    /// Like [`InterpModule::new`], but the behaviour lives in a user-named
    /// function instead of `processing()` — the `register_processing()`
    /// mechanism of §V ("it could also be in a user defined function. This
    /// is registered in the elaboration phase").
    ///
    /// # Errors
    ///
    /// Same as [`InterpModule::new`], with [`InterpError::MissingProcessing`]
    /// referring to the registered function.
    ///
    /// # Panics
    ///
    /// Panics if any interface port has a rate other than 1.
    pub fn with_processing(
        tu: &TranslationUnit,
        model: &str,
        registered: &str,
        interface: Interface,
    ) -> Result<InterpModule> {
        for p in interface.inputs.iter().chain(&interface.outputs) {
            assert_eq!(p.rate, 1, "interpreted models are single-rate");
        }
        let function = tu
            .function(model, registered)
            .ok_or_else(|| InterpError::MissingProcessing {
                model: model.to_owned(),
            })?
            .clone();
        let init_function = tu.function(model, "initialize").cloned();

        // Duplicate check across the interface.
        let mut seen: Vec<&str> = Vec::new();
        for n in interface.names() {
            if seen.contains(&n) {
                return Err(InterpError::DuplicateName {
                    model: model.to_owned(),
                    name: n.to_owned(),
                });
            }
            seen.push(n);
        }

        // Resolve every identifier: interface first, then declared locals.
        let mut kinds: HashMap<String, VarKind> = HashMap::new();
        for (i, p) in interface.inputs.iter().enumerate() {
            kinds.insert(p.name.clone(), VarKind::InPort(i));
        }
        for (i, p) in interface.outputs.iter().enumerate() {
            kinds.insert(p.name.clone(), VarKind::OutPort(i));
        }
        for (m, _) in &interface.members {
            kinds.insert(m.clone(), VarKind::Member);
        }
        collect_locals(&function.body, &mut kinds);
        if let Some(init) = &init_function {
            collect_locals(&init.body, &mut kinds);
            check_resolved(&init.body, model, &kinds)?;
        }
        check_resolved(&function.body, model, &kinds)?;

        let members: HashMap<String, Value> = interface
            .members
            .iter()
            .map(|(n, v)| (n.clone(), *v))
            .collect();

        let run_init = init_function.is_some();
        Ok(InterpModule {
            name: model.to_owned(),
            def: TdfModelDef::new(model, interface),
            function,
            init_function,
            kinds,
            members,
            run_init,
            emit_cache: None,
        })
    }

    /// The model definition (name + interface), as consumed by the static
    /// analysis.
    pub fn model_def(&self) -> &TdfModelDef {
        &self.def
    }

    /// Resolution kind of `name`, if it exists in this model.
    pub fn kind_of(&self, name: &str) -> Option<VarKind> {
        self.kinds.get(name).copied()
    }

    /// Current value of member `name` (testing/debug aid).
    pub fn member(&self, name: &str) -> Option<Value> {
        self.members.get(name).copied()
    }
}

fn collect_locals(block: &Block, kinds: &mut HashMap<String, VarKind>) {
    for s in &block.stmts {
        match &s.kind {
            StmtKind::Decl { name, .. } => {
                kinds.entry(name.clone()).or_insert(VarKind::Local);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_locals(then_branch, kinds);
                if let Some(e) = else_branch {
                    collect_locals(e, kinds);
                }
            }
            StmtKind::While { body, .. } => collect_locals(body, kinds),
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    if let StmtKind::Decl { name, .. } = &i.kind {
                        kinds.entry(name.clone()).or_insert(VarKind::Local);
                    }
                }
                let _ = step;
                collect_locals(body, kinds);
            }
            StmtKind::Block(b) => collect_locals(b, kinds),
            _ => {}
        }
    }
}

fn check_resolved(block: &Block, model: &str, kinds: &HashMap<String, VarKind>) -> Result<()> {
    use minic::visit::{walk_expr, walk_stmt, Visitor};
    struct Check<'a> {
        model: &'a str,
        kinds: &'a HashMap<String, VarKind>,
        error: Option<InterpError>,
    }
    impl Check<'_> {
        fn require(&mut self, name: &str, line: u32) {
            if self.error.is_none() && !self.kinds.contains_key(name) {
                self.error = Some(InterpError::UnknownIdentifier {
                    model: self.model.to_owned(),
                    name: name.to_owned(),
                    line,
                });
            }
        }
        fn forbid_input_write(&mut self, name: &str, line: u32) {
            if self.error.is_none() {
                if let Some(VarKind::InPort(_)) = self.kinds.get(name) {
                    self.error = Some(InterpError::WriteToInput {
                        model: self.model.to_owned(),
                        name: name.to_owned(),
                        line,
                    });
                }
            }
        }
    }
    impl Visitor for Check<'_> {
        fn visit_stmt(&mut self, s: &Stmt) {
            let line = s.span.line();
            match &s.kind {
                StmtKind::Assign { target, .. } => {
                    self.require(target, line);
                    self.forbid_input_write(target, line);
                }
                StmtKind::Write { port, .. } => {
                    self.require(port, line);
                    self.forbid_input_write(port, line);
                }
                _ => {}
            }
            walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            match &e.kind {
                ExprKind::Var(name) => self.require(name, e.span.line()),
                ExprKind::MethodCall { receiver, .. } => {
                    self.require(receiver, e.span.line());
                }
                ExprKind::Call { callee, .. }
                    if self.error.is_none() && !BUILTINS.contains(&callee.as_str()) =>
                {
                    self.error = Some(InterpError::UnknownIdentifier {
                        model: self.model.to_owned(),
                        name: callee.clone(),
                        line: e.span.line(),
                    });
                }
                _ => {}
            }
            walk_expr(self, e);
        }
    }
    let mut check = Check {
        model,
        kinds,
        error: None,
    };
    for s in &block.stmts {
        check.visit_stmt(s);
    }
    match check.error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

impl TdfModule for InterpModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> ModuleSpec {
        ModuleSpec {
            in_ports: self.def.interface.inputs.clone(),
            out_ports: self.def.interface.outputs.clone(),
            timestep: self.def.interface.timestep,
        }
    }

    fn class(&self) -> ModuleClass {
        ModuleClass::UserCode
    }

    fn initialize(&mut self) {
        self.members = self
            .def
            .interface
            .members
            .iter()
            .map(|(n, v)| (n.clone(), *v))
            .collect();
        self.run_init = self.init_function.is_some();
        self.emit_cache = None;
    }

    fn processing(&mut self, ctx: &mut ProcessingCtx<'_>) {
        let interner_addr = ctx.interner() as *const Interner as usize;
        if self
            .emit_cache
            .as_ref()
            .is_none_or(|c| c.interner_addr != interner_addr)
        {
            self.emit_cache = Some(EmitCache::build(&self.name, &self.kinds, ctx.interner()));
        }
        let cache = self.emit_cache.as_ref().expect("just built");
        let mut out_values: Vec<Option<(Value, u32)>> =
            vec![None; self.def.interface.outputs.len()];
        if self.run_init {
            self.run_init = false;
            let init = self.init_function.clone().expect("armed only when present");
            let mut exec = Exec {
                model: &self.name,
                kinds: &self.kinds,
                cache,
                members: &mut self.members,
                locals: HashMap::new(),
                out_values: &mut out_values,
                ctx,
            };
            exec.block(&init.body);
        }
        {
            let function = &self.function;
            let mut exec = Exec {
                model: &self.name,
                kinds: &self.kinds,
                cache,
                members: &mut self.members,
                locals: HashMap::new(),
                out_values: &mut out_values,
                ctx,
            };
            exec.block(&function.body);
        }
        for (i, slot) in out_values.into_iter().enumerate() {
            if let Some((v, line)) = slot {
                let port = &self.def.interface.outputs[i].name;
                ctx.write(
                    i,
                    Sample::with_provenance(v, Provenance::new(port.clone(), line, &self.name)),
                );
            }
            // Unwritten ports are padded as undefined by the kernel.
        }
    }
}

/// Control-flow outcome of executing a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

struct Exec<'m, 'c> {
    model: &'m str,
    kinds: &'m HashMap<String, VarKind>,
    cache: &'m EmitCache,
    members: &'m mut HashMap<String, Value>,
    locals: HashMap<String, Value>,
    out_values: &'m mut Vec<Option<(Value, u32)>>,
    ctx: &'m mut ProcessingCtx<'c>,
}

impl Exec<'_, '_> {
    fn emit_def(&mut self, var: &str, line: u32) {
        let event = CompactEvent {
            time: self.ctx.time(),
            model: self.cache.model,
            var: self.cache.sym(var, self.ctx.interner()),
            line,
            kind: EventKind::Def,
            prov: ProvId::NONE,
            defined: true,
        };
        self.ctx.emit_compact(event);
    }

    fn emit_use(&mut self, var: &str, line: u32, feeding: ProvId, defined: bool) {
        let event = CompactEvent {
            time: self.ctx.time(),
            model: self.cache.model,
            var: self.cache.sym(var, self.ctx.interner()),
            line,
            kind: EventKind::Use,
            prov: feeding,
            defined,
        };
        self.ctx.emit_compact(event);
    }

    fn block(&mut self, b: &Block) -> Flow {
        for s in &b.stmts {
            match self.stmt(s) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    fn stmt(&mut self, s: &Stmt) -> Flow {
        let line = s.span.line();
        match &s.kind {
            StmtKind::Decl { name, init, .. } => {
                if let Some(e) = init {
                    let v = self.eval(e);
                    self.locals.insert(name.clone(), v);
                    self.emit_def(name, line);
                }
                Flow::Normal
            }
            StmtKind::Assign { target, op, value } => {
                let base = if op.reads_target() {
                    let v = self.read_var(target, line);
                    Some(v)
                } else {
                    None
                };
                let rhs = self.eval(value);
                let v = match (base, op.binop()) {
                    (Some(b), Some(binop)) => apply_binop(binop, b, rhs),
                    _ => rhs,
                };
                self.write_var(target, v, line);
                Flow::Normal
            }
            StmtKind::Write { port, value } => {
                let v = self.eval(value);
                self.write_var(port, v, line);
                Flow::Normal
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond).as_bool() {
                    self.block(then_branch)
                } else if let Some(e) = else_branch {
                    self.block(e)
                } else {
                    Flow::Normal
                }
            }
            StmtKind::While { cond, body } => {
                let mut iters = 0usize;
                while self.eval(cond).as_bool() {
                    iters += 1;
                    assert!(
                        iters <= MAX_LOOP_ITERATIONS,
                        "runaway while loop in model `{}` (line {line})",
                        self.model
                    );
                    match self.block(body) {
                        Flow::Break => break,
                        Flow::Return => return Flow::Return,
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Flow::Normal
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    if self.stmt(i) == Flow::Return {
                        return Flow::Return;
                    }
                }
                let mut iters = 0usize;
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c).as_bool() {
                            break;
                        }
                    }
                    iters += 1;
                    assert!(
                        iters <= MAX_LOOP_ITERATIONS,
                        "runaway for loop in model `{}` (line {line})",
                        self.model
                    );
                    match self.block(body) {
                        Flow::Break => break,
                        Flow::Return => return Flow::Return,
                        Flow::Continue | Flow::Normal => {}
                    }
                    if let Some(st) = step {
                        if self.stmt(st) == Flow::Return {
                            return Flow::Return;
                        }
                    }
                }
                Flow::Normal
            }
            StmtKind::Return => Flow::Return,
            StmtKind::Break => Flow::Break,
            StmtKind::Continue => Flow::Continue,
            StmtKind::Block(b) => self.block(b),
            StmtKind::Expr(e) => {
                self.eval(e);
                Flow::Normal
            }
        }
    }

    /// Reads a variable, emitting the corresponding use event.
    fn read_var(&mut self, name: &str, line: u32) -> Value {
        match self.kinds.get(name).copied() {
            Some(VarKind::InPort(i)) => {
                let (value, defined, prov) = {
                    let sample = self.ctx.input1(i);
                    let prov = match &sample.provenance {
                        Some(p) => self.ctx.interner().intern_prov(p),
                        None => ProvId::NONE,
                    };
                    (sample.value, sample.defined, prov)
                };
                self.emit_use(name, line, prov, defined);
                value
            }
            Some(VarKind::OutPort(i)) => {
                // Reading back an output port: the value written earlier in
                // this activation (or default).
                let v = self.out_values[i].map(|(v, _)| v).unwrap_or_default();
                self.emit_use(name, line, ProvId::NONE, true);
                v
            }
            Some(VarKind::Member) => {
                let v = self.members.get(name).copied().unwrap_or_default();
                self.emit_use(name, line, ProvId::NONE, true);
                v
            }
            Some(VarKind::Local) | None => {
                let v = self.locals.get(name).copied().unwrap_or_default();
                self.emit_use(name, line, ProvId::NONE, true);
                v
            }
        }
    }

    /// Writes a variable, emitting the corresponding def event.
    fn write_var(&mut self, name: &str, v: Value, line: u32) {
        match self.kinds.get(name).copied() {
            Some(VarKind::OutPort(i)) => {
                self.out_values[i] = Some((v, line));
            }
            Some(VarKind::Member) => {
                self.members.insert(name.to_owned(), v);
            }
            Some(VarKind::InPort(_)) => {
                unreachable!("writes to input ports rejected at construction");
            }
            Some(VarKind::Local) | None => {
                self.locals.insert(name.to_owned(), v);
            }
        }
        self.emit_def(name, line);
    }

    fn eval(&mut self, e: &Expr) -> Value {
        let line = e.span.line();
        match &e.kind {
            ExprKind::IntLit(v) => Value::Int(*v),
            ExprKind::FloatLit(v) => Value::Double(*v),
            ExprKind::BoolLit(v) => Value::Bool(*v),
            ExprKind::Var(name) => self.read_var(name, line),
            ExprKind::MethodCall { receiver, .. } => self.read_var(receiver, line),
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner);
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(-i),
                        other => Value::Double(-other.as_f64()),
                    },
                    UnOp::Not => Value::Bool(!v.as_bool()),
                }
            }
            ExprKind::Binary(op, l, r) => match op {
                // Short-circuit evaluation: skipped operands really are
                // skipped, so their uses are *not* exercised — faithful to
                // the instrumented-C++ behaviour.
                BinOp::And => {
                    if !self.eval(l).as_bool() {
                        Value::Bool(false)
                    } else {
                        Value::Bool(self.eval(r).as_bool())
                    }
                }
                BinOp::Or => {
                    if self.eval(l).as_bool() {
                        Value::Bool(true)
                    } else {
                        Value::Bool(self.eval(r).as_bool())
                    }
                }
                _ => {
                    let lv = self.eval(l);
                    let rv = self.eval(r);
                    apply_binop(*op, lv, rv)
                }
            },
            ExprKind::Call { callee, args } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a)).collect();
                builtin(callee, &vals)
            }
        }
    }
}

fn both_int(l: Value, r: Value) -> Option<(i64, i64)> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Some((a, b)),
        (Value::Int(a), Value::Bool(b)) => Some((a, b as i64)),
        (Value::Bool(a), Value::Int(b)) => Some((a as i64, b)),
        (Value::Bool(a), Value::Bool(b)) => Some((a as i64, b as i64)),
        _ => None,
    }
}

/// C-like arithmetic: integer ops stay integral, anything touching a double
/// promotes; comparisons yield bools; integer division by zero yields 0
/// (documented deviation from C's UB, chosen for determinism).
fn apply_binop(op: BinOp, l: Value, r: Value) -> Value {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
            if let Some((a, b)) = both_int(l, r) {
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    _ => unreachable!(),
                };
                Value::Int(v)
            } else {
                let (a, b) = (l.as_f64(), r.as_f64());
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    _ => unreachable!(),
                };
                Value::Double(v)
            }
        }
        BinOp::Eq => Value::Bool(l.numeric_eq(r)),
        BinOp::Ne => Value::Bool(!l.numeric_eq(r)),
        BinOp::Lt => Value::Bool(l.as_f64() < r.as_f64()),
        BinOp::Le => Value::Bool(l.as_f64() <= r.as_f64()),
        BinOp::Gt => Value::Bool(l.as_f64() > r.as_f64()),
        BinOp::Ge => Value::Bool(l.as_f64() >= r.as_f64()),
        BinOp::And | BinOp::Or => unreachable!("short-circuited in eval"),
    }
}

fn builtin(name: &str, args: &[Value]) -> Value {
    let a = |i: usize| args.get(i).copied().unwrap_or_default().as_f64();
    match name {
        "abs" => Value::Double(a(0).abs()),
        "min" => Value::Double(a(0).min(a(1))),
        "max" => Value::Double(a(0).max(a(1))),
        "sqrt" => Value::Double(a(0).max(0.0).sqrt()),
        "floor" => Value::Double(a(0).floor()),
        "ceil" => Value::Double(a(0).ceil()),
        "pow" => Value::Double(a(0).powf(a(1))),
        _ => Value::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_sim::{Cluster, Event, FnSource, NullSink, Probe, RecordingSink, SimTime, Simulator};

    fn run_model(
        src: &str,
        model: &str,
        iface: Interface,
        input_value: f64,
        periods: u64,
    ) -> (Vec<Event>, Vec<f64>) {
        let tu = minic::parse(src).expect("parses");
        let module = InterpModule::new(&tu, model, iface).expect("binds");
        let has_input = !module.def.interface.inputs.is_empty();
        let in_name = module.def.interface.inputs.first().map(|p| p.name.clone());
        let out_name = module.def.interface.outputs.first().map(|p| p.name.clone());

        let mut cluster = Cluster::new("top");
        let mid = cluster.add_module(Box::new(module)).unwrap();
        if let (true, Some(inp)) = (has_input, in_name) {
            let srcm = cluster
                .add_module(Box::new(FnSource::new(
                    "src",
                    SimTime::from_us(1),
                    move |_| Value::Double(input_value),
                )))
                .unwrap();
            cluster.connect(srcm, "op_out", mid, &inp).unwrap();
        }
        let trace = out_name.map(|out| {
            let (probe, buf) = Probe::new("probe");
            let pid = cluster.add_module(Box::new(probe)).unwrap();
            cluster.connect(mid, &out, pid, "tdf_i").unwrap();
            buf
        });
        let mut sim = Simulator::new(cluster).unwrap();
        let mut sink = RecordingSink::new();
        sim.run_periods(periods, &mut sink).unwrap();
        let values = trace.map(|t| t.values_f64()).unwrap_or_default();
        (sink.events, values)
    }

    const TS_SRC: &str = "\
void TS::processing()
{
    double sig_in = ip_signal_in;
    double tmpr = sig_in*1000;
    double out_tmpr = 0;
    bool intr_ = false;
    if (!ip_hold){
        if (ip_clear) intr_ = 0;
        else if ((tmpr > 30) && (tmpr < 1500 )){
            out_tmpr = tmpr;
            intr_ = true;
        }
        op_intr.write(intr_);
        op_signal_out = out_tmpr;
    }
}";

    fn ts_iface() -> Interface {
        Interface::new()
            .input("ip_signal_in")
            .input("ip_hold")
            .input("ip_clear")
            .output("op_intr")
            .output("op_signal_out")
            .timestep(SimTime::from_us(1))
    }

    #[test]
    fn binds_fig2_ts_model() {
        let tu = minic::parse(TS_SRC).unwrap();
        let m = InterpModule::new(&tu, "TS", ts_iface()).unwrap();
        assert_eq!(m.kind_of("tmpr"), Some(VarKind::Local));
        assert_eq!(m.kind_of("ip_hold"), Some(VarKind::InPort(1)));
        assert_eq!(m.kind_of("op_intr"), Some(VarKind::OutPort(0)));
    }

    #[test]
    fn missing_processing_reported() {
        let tu = minic::parse("void X::processing() { }").unwrap();
        let err = InterpModule::new(&tu, "TS", Interface::new()).unwrap_err();
        assert!(matches!(err, InterpError::MissingProcessing { .. }));
    }

    #[test]
    fn unknown_identifier_reported_with_line() {
        let tu = minic::parse("void M::processing() {\n  x = missing;\n}").unwrap();
        let err = InterpModule::new(&tu, "M", Interface::new().member("x", 0i64)).unwrap_err();
        let InterpError::UnknownIdentifier { name, line, .. } = err else {
            panic!("wrong error");
        };
        assert_eq!(name, "missing");
        assert_eq!(line, 2);
    }

    #[test]
    fn write_to_input_rejected() {
        let tu = minic::parse("void M::processing() { ip_x = 1; }").unwrap();
        let err = InterpModule::new(&tu, "M", Interface::new().input("ip_x")).unwrap_err();
        assert!(matches!(err, InterpError::WriteToInput { .. }));
    }

    #[test]
    fn duplicate_interface_name_rejected() {
        let tu = minic::parse("void M::processing() { }").unwrap();
        let err = InterpModule::new(&tu, "M", Interface::new().input("x").output("x")).unwrap_err();
        assert!(matches!(err, InterpError::DuplicateName { .. }));
    }

    #[test]
    fn simple_pipeline_computes() {
        // Scale volts to millivolts and pass threshold.
        let src = "void M::processing() {\n\
                   double t = ip_in * 1000;\n\
                   if (t > 30) { op_out = t; } else { op_out = 0; }\n\
                   }";
        let iface = Interface::new()
            .input("ip_in")
            .output("op_out")
            .timestep(SimTime::from_us(1));
        let (_, vals) = run_model(src, "M", iface, 0.1, 3);
        assert_eq!(vals, vec![100.0, 100.0, 100.0]);
        let iface2 = Interface::new()
            .input("ip_in")
            .output("op_out")
            .timestep(SimTime::from_us(1));
        let (_, vals2) = run_model(src, "M", iface2, 0.02, 2);
        assert_eq!(vals2, vec![0.0, 0.0], "below threshold goes to else");
    }

    #[test]
    fn def_use_events_carry_lines() {
        let src = "void M::processing() {\n\
                   double t = ip_in * 2;\n\
                   op_out = t;\n\
                   }";
        let iface = Interface::new()
            .input("ip_in")
            .output("op_out")
            .timestep(SimTime::from_us(1));
        let (events, _) = run_model(src, "M", iface, 1.0, 1);
        // use ip_in @2, def t @2, use t @3, def op_out @3
        let summary: Vec<(bool, &str, u32)> = events
            .iter()
            .map(|e| match e {
                Event::Def { var, line, .. } => (true, var.as_str(), *line),
                Event::Use { var, line, .. } => (false, var.as_str(), *line),
            })
            .collect();
        assert_eq!(
            summary,
            vec![
                (false, "ip_in", 2),
                (true, "t", 2),
                (false, "t", 3),
                (true, "op_out", 3),
            ]
        );
    }

    #[test]
    fn input_port_use_carries_feeding_provenance() {
        // Chain two interp models: A defines op_y, B reads ip_x.
        let src = "void A::processing() { op_y = 5; }\n\
                   void B::processing() { double v = ip_x; op_z = v; }";
        let tu = minic::parse(src).unwrap();
        let a = InterpModule::new(
            &tu,
            "A",
            Interface::new()
                .output("op_y")
                .timestep(SimTime::from_us(1)),
        )
        .unwrap();
        let b = InterpModule::new(&tu, "B", Interface::new().input("ip_x").output("op_z")).unwrap();
        let mut cluster = Cluster::new("top");
        let aid = cluster.add_module(Box::new(a)).unwrap();
        let bid = cluster.add_module(Box::new(b)).unwrap();
        cluster.connect(aid, "op_y", bid, "ip_x").unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        let mut sink = RecordingSink::new();
        sim.run_periods(1, &mut sink).unwrap();
        let use_ev = sink
            .events
            .iter()
            .find_map(|e| match e {
                Event::Use {
                    var,
                    feeding: Some(p),
                    ..
                } if var == "ip_x" => Some(p.clone()),
                _ => None,
            })
            .expect("input use with provenance");
        assert_eq!(use_ev, Provenance::new("op_y", 1, "A"));
    }

    #[test]
    fn short_circuit_skips_right_operand_uses() {
        let src = "void M::processing() {\n\
                   bool a = false;\n\
                   bool c = a && ip_in;\n\
                   op_out = c;\n\
                   }";
        let iface = Interface::new()
            .input("ip_in")
            .output("op_out")
            .timestep(SimTime::from_us(1));
        let (events, _) = run_model(src, "M", iface, 1.0, 1);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, Event::Use { var, .. } if var == "ip_in")),
            "ip_in must not be used when && short-circuits"
        );
    }

    #[test]
    fn members_persist_across_activations() {
        let src = "void M::processing() {\n\
                   m_count = m_count + 1;\n\
                   op_out = m_count;\n\
                   }";
        let iface = Interface::new()
            .member("m_count", 0i64)
            .output("op_out")
            .timestep(SimTime::from_us(1));
        let (_, vals) = run_model(src, "M", iface, 0.0, 4);
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn initialize_resets_members() {
        let src = "void M::processing() { m_c = m_c + 1; op_out = m_c; }";
        let tu = minic::parse(src).unwrap();
        let mut m = InterpModule::new(
            &tu,
            "M",
            Interface::new()
                .member("m_c", 10i64)
                .output("op_out")
                .timestep(SimTime::from_us(1)),
        )
        .unwrap();
        assert_eq!(m.member("m_c"), Some(Value::Int(10)));
        m.initialize();
        assert_eq!(m.member("m_c"), Some(Value::Int(10)));
    }

    #[test]
    fn unwritten_output_port_yields_undefined_downstream() {
        // M only writes op_out when the input exceeds a threshold;
        // downstream use of the unwritten port is flagged undefined.
        let src = "void A::processing() { if (ip_in > 10) { op_y = 1; } }\n\
                   void B::processing() { op_z = ip_x; }";
        let tu = minic::parse(src).unwrap();
        let a = InterpModule::new(
            &tu,
            "A",
            Interface::new()
                .input("ip_in")
                .output("op_y")
                .timestep(SimTime::from_us(1)),
        )
        .unwrap();
        let b = InterpModule::new(&tu, "B", Interface::new().input("ip_x").output("op_z")).unwrap();
        let mut cluster = Cluster::new("top");
        let srcm = cluster
            .add_module(Box::new(FnSource::new("src", SimTime::from_us(1), |_| {
                Value::Double(0.0)
            })))
            .unwrap();
        let aid = cluster.add_module(Box::new(a)).unwrap();
        let bid = cluster.add_module(Box::new(b)).unwrap();
        cluster.connect(srcm, "op_out", aid, "ip_in").unwrap();
        cluster.connect(aid, "op_y", bid, "ip_x").unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        let mut sink = RecordingSink::new();
        sim.run_periods(1, &mut sink).unwrap();
        let undef_use = sink
            .events
            .iter()
            .any(|e| matches!(e, Event::Use { var, defined: false, .. } if var == "ip_x"));
        assert!(undef_use, "B reads an undefined sample");
    }

    #[test]
    fn loops_and_builtins_execute() {
        let src = "void M::processing() {\n\
                   double acc = 0;\n\
                   for (int i = 0; i < 4; i++) { acc += sqrt(ip_in); }\n\
                   int guard = 0;\n\
                   while (guard < 2) { guard++; }\n\
                   op_out = max(acc, guard);\n\
                   }";
        let iface = Interface::new()
            .input("ip_in")
            .output("op_out")
            .timestep(SimTime::from_us(1));
        let (_, vals) = run_model(src, "M", iface, 4.0, 1);
        assert_eq!(vals, vec![8.0]); // 4 * sqrt(4) = 8 > 2
    }

    #[test]
    fn integer_division_truncates_like_c() {
        let src = "void M::processing() {\n\
                   op_out = ip_in / 10;\n\
                   }";
        // Feed an int through: use an interp source to keep Int typing.
        let full = format!("void S::processing() {{ op_out = 599; }}\n{src}");
        let tu = minic::parse(&full).unwrap();
        let s = InterpModule::new(
            &tu,
            "S",
            Interface::new()
                .output("op_out")
                .timestep(SimTime::from_us(1)),
        )
        .unwrap();
        let m =
            InterpModule::new(&tu, "M", Interface::new().input("ip_in").output("op_out")).unwrap();
        let mut cluster = Cluster::new("top");
        let sid = cluster.add_module(Box::new(s)).unwrap();
        let mid = cluster.add_module(Box::new(m)).unwrap();
        let (probe, buf) = Probe::new("probe");
        let pid = cluster.add_module(Box::new(probe)).unwrap();
        cluster.connect(sid, "op_out", mid, "ip_in").unwrap();
        cluster.connect(mid, "op_out", pid, "tdf_i").unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run_periods(1, &mut NullSink).unwrap();
        assert_eq!(buf.values_f64(), vec![59.0], "599 / 10 == 59 in C");
    }

    #[test]
    fn division_by_zero_int_yields_zero() {
        assert_eq!(
            apply_binop(BinOp::Div, Value::Int(5), Value::Int(0)),
            Value::Int(0)
        );
        assert_eq!(
            apply_binop(BinOp::Rem, Value::Int(5), Value::Int(0)),
            Value::Int(0)
        );
    }

    #[test]
    fn mixed_arithmetic_promotes_to_double() {
        assert_eq!(
            apply_binop(BinOp::Add, Value::Int(1), Value::Double(0.5)),
            Value::Double(1.5)
        );
        assert_eq!(
            apply_binop(BinOp::Mul, Value::Bool(true), Value::Int(3)),
            Value::Int(3)
        );
    }

    #[test]
    fn comparisons_are_boolean() {
        assert_eq!(
            apply_binop(BinOp::Lt, Value::Int(1), Value::Double(1.5)),
            Value::Bool(true)
        );
        assert_eq!(
            apply_binop(BinOp::Eq, Value::Bool(true), Value::Int(1)),
            Value::Bool(true)
        );
    }

    #[test]
    fn builtins_compute() {
        assert_eq!(builtin("abs", &[Value::Double(-2.0)]), Value::Double(2.0));
        assert_eq!(
            builtin("min", &[Value::Double(1.0), Value::Double(2.0)]),
            Value::Double(1.0)
        );
        assert_eq!(builtin("sqrt", &[Value::Double(-1.0)]), Value::Double(0.0));
        assert_eq!(
            builtin("pow", &[Value::Double(2.0), Value::Double(3.0)]),
            Value::Double(8.0)
        );
        assert_eq!(builtin("nope", &[]), Value::default());
    }
}

#[cfg(test)]
mod register_processing_tests {
    use super::*;
    use tdf_sim::{Cluster, NullSink, Probe, SimTime, Simulator};

    #[test]
    fn user_named_processing_function_registers() {
        // §V: behaviour in `sig_proc()` instead of `processing()`.
        let src = "void DSP::sig_proc() { op_out = 7; }";
        let tu = minic::parse(src).unwrap();
        let iface = Interface::new()
            .output("op_out")
            .timestep(SimTime::from_us(1));
        let m = InterpModule::with_processing(&tu, "DSP", "sig_proc", iface).unwrap();
        let mut cluster = Cluster::new("top");
        let id = cluster.add_module(Box::new(m)).unwrap();
        let (probe, buf) = Probe::new("p");
        let pid = cluster.add_module(Box::new(probe)).unwrap();
        cluster.connect(id, "op_out", pid, "tdf_i").unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run_periods(2, &mut NullSink).unwrap();
        assert_eq!(buf.values_f64(), vec![7.0, 7.0]);
    }

    #[test]
    fn default_name_still_required_when_not_registered() {
        let src = "void DSP::sig_proc() { op_out = 7; }";
        let tu = minic::parse(src).unwrap();
        let err = InterpModule::new(&tu, "DSP", Interface::new().output("op_out"));
        assert!(matches!(err, Err(InterpError::MissingProcessing { .. })));
    }
}

#[cfg(test)]
mod loop_guard_tests {
    use super::*;
    use tdf_sim::{Cluster, NullSink, SimTime, Simulator};

    #[test]
    #[should_panic(expected = "runaway while loop")]
    fn infinite_loop_is_caught() {
        let src = "void M::processing() { while (true) { m_x = m_x + 1; } }";
        let tu = minic::parse(src).unwrap();
        let m = InterpModule::new(
            &tu,
            "M",
            Interface::new()
                .member("m_x", 0i64)
                .timestep(SimTime::from_us(1)),
        )
        .unwrap();
        let mut cluster = Cluster::new("top");
        cluster.add_module(Box::new(m)).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        let _ = sim.run_periods(1, &mut NullSink);
    }
}

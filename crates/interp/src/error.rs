//! Errors raised while binding a minic model to the TDF kernel.

use std::error::Error;
use std::fmt;

/// Errors from constructing or resolving an interpreted TDF model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The translation unit has no `model::processing()` function.
    MissingProcessing {
        /// The model name looked up.
        model: String,
    },
    /// An identifier in the body is neither a declared local, a port nor a
    /// member of the interface.
    UnknownIdentifier {
        /// Model name.
        model: String,
        /// The unresolved name.
        name: String,
        /// Source line of the first occurrence.
        line: u32,
    },
    /// The interface declares the same name twice.
    DuplicateName {
        /// Model name.
        model: String,
        /// The duplicated name.
        name: String,
    },
    /// Code writes an input port (or reads a write-only construct).
    WriteToInput {
        /// Model name.
        model: String,
        /// Port name.
        name: String,
        /// Source line.
        line: u32,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MissingProcessing { model } => {
                write!(f, "no processing() function found for model `{model}`")
            }
            InterpError::UnknownIdentifier { model, name, line } => write!(
                f,
                "unknown identifier `{name}` in model `{model}` (line {line}); declare it as a local, port or member"
            ),
            InterpError::DuplicateName { model, name } => {
                write!(f, "name `{name}` declared twice in interface of `{model}`")
            }
            InterpError::WriteToInput { model, name, line } => write!(
                f,
                "model `{model}` writes input port `{name}` (line {line})"
            ),
        }
    }
}

impl Error for InterpError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, InterpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let e = InterpError::UnknownIdentifier {
            model: "TS".into(),
            name: "tmrp".into(),
            line: 9,
        };
        let s = e.to_string();
        assert!(s.contains("tmrp") && s.contains("TS") && s.contains('9'));
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync>(_: E) {}
        check(InterpError::MissingProcessing { model: "x".into() });
    }
}

//! The compiled monitor bank: `Sym`-indexed per-signal automata with O(1)
//! state per assertion, mirroring the match automaton's dense-table
//! design — subscriptions live in a `Vec` indexed by raw `Sym` id, so the
//! per-sample hot path is one bounds-checked slot load; signals interned
//! *after* compilation index past the table and are (correctly) ignored.

use std::collections::VecDeque;

use tdf_sim::{Interner, Sample, SimTime, Sym};

use crate::spec::{AssertionExpr, AssertionSpec, CountBound, SignalPred, ThresholdKind};

static MONITOR_SAMPLES: obs::Counter = obs::Counter::new("monitor.samples");
static MONITOR_VIOLATIONS: obs::Counter = obs::Counter::new("monitor.violations");

/// The outcome of one assertion over one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Verdict {
    /// The property held with a non-vacuous witness.
    Holds,
    /// The property was violated.
    Fails {
        /// Dense time of the earliest violation.
        first_violation_time: SimTime,
    },
    /// The property never triggered (e.g. a bounded-response assertion
    /// whose trigger never fired).
    Vacuous,
    /// Not enough trace to decide — no samples, an obligation still open,
    /// a deadline not yet reached, or a degraded (truncated) run.
    #[default]
    Inconclusive,
}

impl Verdict {
    /// True exactly for [`Verdict::Fails`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fails { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Fails {
                first_violation_time,
            } => write!(f, "FAILS @ {first_violation_time}"),
            Verdict::Vacuous => write!(f, "vacuous"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// One assertion's verdict, carried through
/// [`TestcaseResult`](../dft_core/struct.TestcaseResult.html)-style run
/// records in spec order (so reports are byte-deterministic regardless of
/// `Sym` id assignment).
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionVerdict {
    /// The assertion's name.
    pub name: String,
    /// Its verdict for this run.
    pub verdict: Verdict,
}

/// Which input of a leaf automaton a subscription feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// The (sole) monitored signal, or a `Within` trigger.
    Primary,
    /// A `Within` response.
    Response,
    /// A `Within` whose trigger and response ride the same signal.
    Both,
}

/// One subscription table entry.
#[derive(Debug, Clone, Copy)]
struct Sub {
    leaf: usize,
    role: Role,
}

/// The temporal operator tree with leaves resolved to bank indices.
#[derive(Debug)]
enum CompiledExpr {
    Leaf(usize),
    AllOf(Vec<CompiledExpr>),
    AnyOf(Vec<CompiledExpr>),
    Not(Box<CompiledExpr>),
}

#[derive(Debug)]
struct CompiledAssertion {
    name: String,
    expr: CompiledExpr,
}

/// One leaf automaton. Every variant keeps O(1) state (the recurrence
/// deques are bounded by the count bound, a compile-time constant).
#[derive(Debug)]
enum LeafState {
    Threshold {
        kind: ThresholdKind,
        level: f64,
        hysteresis: f64,
        armed: bool,
        seen: bool,
        fail: Option<SimTime>,
    },
    Settling {
        target: f64,
        epsilon: f64,
        window: SimTime,
        deadline: Option<SimTime>,
        in_band_since: Option<SimTime>,
        settled: bool,
        seen: bool,
        fail: Option<SimTime>,
    },
    Recurrence {
        pred: SignalPred,
        window: SimTime,
        bound: CountBound,
        prev: bool,
        /// Last `n` (at-least) or `n+1` (at-most) rising-edge times.
        edges: VecDeque<SimTime>,
        /// Whether at least one full window was checked (at-least only).
        checked: bool,
        seen: bool,
        fail: Option<SimTime>,
    },
    Within {
        trigger: SignalPred,
        response: SignalPred,
        within: SimTime,
        /// Earliest outstanding trigger time. Discharging the earliest
        /// obligation discharges every later one (any response answering
        /// trigger `t0` also answers all triggers after `t0`), so one
        /// slot suffices.
        pending: Option<SimTime>,
        triggered: bool,
        fail: Option<SimTime>,
    },
}

#[derive(Debug)]
struct Leaf {
    state: LeafState,
    violations: u64,
}

impl Leaf {
    /// Feeds one defined sample value. Total: no arithmetic in here can
    /// panic (window sums saturate, deques are bounded).
    fn step(&mut self, time: SimTime, role: Role, v: f64) {
        match &mut self.state {
            LeafState::Threshold {
                kind,
                level,
                hysteresis,
                armed,
                seen,
                fail,
            } => {
                *seen = true;
                let breach = match kind {
                    ThresholdKind::Above => v > *level,
                    ThresholdKind::Below => v < *level,
                };
                if *armed && breach {
                    self.violations += 1;
                    if fail.is_none() {
                        *fail = Some(time);
                    }
                    *armed = false;
                } else if !*armed && !breach {
                    let rearmed = match kind {
                        ThresholdKind::Above => v <= *level - *hysteresis,
                        ThresholdKind::Below => v >= *level + *hysteresis,
                    };
                    if rearmed {
                        *armed = true;
                    }
                }
            }
            LeafState::Settling {
                target,
                epsilon,
                window,
                deadline,
                in_band_since,
                settled,
                seen,
                fail,
            } => {
                *seen = true;
                if *settled || fail.is_some() {
                    return;
                }
                let in_band = (v - *target).abs() <= *epsilon;
                if in_band {
                    let since = *in_band_since.get_or_insert(time);
                    let achieved = since.saturating_add(*window);
                    if time >= achieved {
                        // The window completed at `achieved` (the signal
                        // was continuously in band since `since`).
                        if let Some(d) = *deadline {
                            if achieved > d {
                                self.violations += 1;
                                *fail = Some(d);
                                return;
                            }
                        }
                        *settled = true;
                        return;
                    }
                } else {
                    *in_band_since = None;
                }
                // Not settled yet: once dense time passes the deadline no
                // in-band run can complete in time any more (a run that
                // could have was caught by the branch above).
                if let Some(d) = *deadline {
                    if time > d {
                        self.violations += 1;
                        *fail = Some(d);
                    }
                }
            }
            LeafState::Recurrence {
                pred,
                window,
                bound,
                prev,
                edges,
                checked,
                seen,
                fail,
            } => {
                *seen = true;
                if fail.is_some() {
                    return;
                }
                let now_true = pred.eval(v);
                let edge = now_true && !*prev;
                *prev = now_true;
                match *bound {
                    CountBound::AtLeast(n) => {
                        if edge {
                            edges.push_back(time);
                            while edges.len() > n as usize {
                                edges.pop_front();
                            }
                        }
                        // Check the full trailing window [t-window, t].
                        if time >= *window {
                            *checked = true;
                            let satisfied = n == 0
                                || (edges.len() == n as usize
                                    && edges
                                        .front()
                                        .is_some_and(|&e| e >= time.saturating_sub(*window)));
                            if !satisfied {
                                self.violations += 1;
                                *fail = Some(time);
                            }
                        }
                    }
                    CountBound::AtMost(n) => {
                        if edge {
                            edges.push_back(time);
                            while edges.len() > n as usize + 1 {
                                edges.pop_front();
                            }
                            if edges.len() == n as usize + 1
                                && edges
                                    .front()
                                    .is_some_and(|&e| time.saturating_sub(e) <= *window)
                            {
                                self.violations += 1;
                                *fail = Some(time);
                            }
                        }
                    }
                }
            }
            LeafState::Within {
                trigger,
                response,
                within,
                pending,
                triggered,
                fail,
            } => {
                if fail.is_some() {
                    return;
                }
                // Expiry first: an overdue obligation fails at its due
                // time no matter what this sample says.
                if let Some(t0) = *pending {
                    let due = t0.saturating_add(*within);
                    if time > due {
                        self.violations += 1;
                        *fail = Some(due);
                        *pending = None;
                        return;
                    }
                }
                if matches!(role, Role::Response | Role::Both) && response.eval(v) {
                    *pending = None;
                }
                if matches!(role, Role::Primary | Role::Both) && trigger.eval(v) {
                    *triggered = true;
                    if pending.is_none() {
                        *pending = Some(time);
                    }
                }
            }
        }
    }

    /// The leaf's verdict once the stream ends at `end`. `degraded` means
    /// the run was truncated (budget trip / panic / error): only latched
    /// in-run violations survive — every end-of-trace synthesis would
    /// reason about trace the simulation never produced.
    fn verdict(&self, end: SimTime, degraded: bool) -> Verdict {
        let latched = match &self.state {
            LeafState::Threshold { fail, .. }
            | LeafState::Settling { fail, .. }
            | LeafState::Recurrence { fail, .. }
            | LeafState::Within { fail, .. } => *fail,
        };
        if let Some(t) = latched {
            return Verdict::Fails {
                first_violation_time: t,
            };
        }
        if degraded {
            return Verdict::Inconclusive;
        }
        match &self.state {
            LeafState::Threshold { seen, .. } => {
                if *seen {
                    Verdict::Holds
                } else {
                    Verdict::Inconclusive
                }
            }
            LeafState::Settling {
                deadline,
                settled,
                seen,
                ..
            } => {
                if *settled {
                    Verdict::Holds
                } else if !*seen {
                    Verdict::Inconclusive
                } else {
                    match *deadline {
                        Some(d) if end < d => Verdict::Inconclusive,
                        Some(d) => Verdict::Fails {
                            first_violation_time: d,
                        },
                        None => Verdict::Fails {
                            first_violation_time: end,
                        },
                    }
                }
            }
            LeafState::Recurrence {
                bound,
                checked,
                seen,
                ..
            } => {
                if !*seen {
                    Verdict::Inconclusive
                } else {
                    match bound {
                        CountBound::AtLeast(_) if !*checked => Verdict::Inconclusive,
                        _ => Verdict::Holds,
                    }
                }
            }
            LeafState::Within {
                within,
                pending,
                triggered,
                ..
            } => match pending {
                Some(t0) => {
                    let due = t0.saturating_add(*within);
                    if end > due {
                        Verdict::Fails {
                            first_violation_time: due,
                        }
                    } else {
                        Verdict::Inconclusive
                    }
                }
                None => {
                    if *triggered {
                        Verdict::Holds
                    } else {
                        Verdict::Vacuous
                    }
                }
            },
        }
    }
}

/// The compiled, streaming evaluation engine for a list of
/// [`AssertionSpec`]s over one simulation run.
///
/// Compile once per run ([`MonitorBank::compile`]), feed every tapped
/// sample ([`MonitorBank::observe`] — usually via
/// [`MonitorSink`](crate::MonitorSink)), then [`MonitorBank::finalize`]
/// into per-assertion [`AssertionVerdict`]s. Verdicts are emitted in spec
/// order, so they are byte-deterministic regardless of thread count,
/// match strategy or `Sym` id assignment order.
#[derive(Debug)]
pub struct MonitorBank {
    assertions: Vec<CompiledAssertion>,
    leaves: Vec<Leaf>,
    /// Subscriptions indexed by raw `Sym` id; syms interned after
    /// compilation index past the end and have no subscribers.
    subs: Vec<Vec<Sub>>,
    samples: u64,
}

impl MonitorBank {
    /// Compiles `specs` against `interner` (the design-wide interner the
    /// simulation records against, so tapped `Sym`s and subscriptions
    /// agree on ids).
    pub fn compile(specs: &[AssertionSpec], interner: &Interner) -> MonitorBank {
        let mut bank = MonitorBank {
            assertions: Vec::with_capacity(specs.len()),
            leaves: Vec::new(),
            subs: Vec::new(),
            samples: 0,
        };
        for spec in specs {
            let expr = bank.compile_expr(&spec.expr, interner);
            bank.assertions.push(CompiledAssertion {
                name: spec.name.clone(),
                expr,
            });
        }
        bank
    }

    fn subscribe(&mut self, sym: Sym, leaf: usize, role: Role) {
        let idx = sym.0 as usize;
        if self.subs.len() <= idx {
            self.subs.resize_with(idx + 1, Vec::new);
        }
        self.subs[idx].push(Sub { leaf, role });
    }

    fn compile_expr(&mut self, expr: &AssertionExpr, interner: &Interner) -> CompiledExpr {
        match expr {
            AssertionExpr::Threshold {
                signal,
                kind,
                level,
                hysteresis,
            } => {
                let leaf = self.push_leaf(LeafState::Threshold {
                    kind: *kind,
                    level: *level,
                    hysteresis: *hysteresis,
                    armed: true,
                    seen: false,
                    fail: None,
                });
                self.subscribe(interner.intern(signal), leaf, Role::Primary);
                CompiledExpr::Leaf(leaf)
            }
            AssertionExpr::SettlingTime {
                signal,
                target,
                epsilon,
                window,
                deadline,
            } => {
                let leaf = self.push_leaf(LeafState::Settling {
                    target: *target,
                    epsilon: *epsilon,
                    window: *window,
                    deadline: *deadline,
                    in_band_since: None,
                    settled: false,
                    seen: false,
                    fail: None,
                });
                self.subscribe(interner.intern(signal), leaf, Role::Primary);
                CompiledExpr::Leaf(leaf)
            }
            AssertionExpr::RecurrenceWindow {
                signal,
                pred,
                window,
                bound,
            } => {
                let leaf = self.push_leaf(LeafState::Recurrence {
                    pred: *pred,
                    window: *window,
                    bound: *bound,
                    prev: false,
                    edges: VecDeque::new(),
                    checked: false,
                    seen: false,
                    fail: None,
                });
                self.subscribe(interner.intern(signal), leaf, Role::Primary);
                CompiledExpr::Leaf(leaf)
            }
            AssertionExpr::Within {
                trigger_signal,
                trigger,
                response_signal,
                response,
                within,
            } => {
                let leaf = self.push_leaf(LeafState::Within {
                    trigger: *trigger,
                    response: *response,
                    within: *within,
                    pending: None,
                    triggered: false,
                    fail: None,
                });
                let t = interner.intern(trigger_signal);
                let r = interner.intern(response_signal);
                if t == r {
                    self.subscribe(t, leaf, Role::Both);
                } else {
                    self.subscribe(t, leaf, Role::Primary);
                    self.subscribe(r, leaf, Role::Response);
                }
                CompiledExpr::Leaf(leaf)
            }
            AssertionExpr::AllOf(es) => {
                CompiledExpr::AllOf(es.iter().map(|e| self.compile_expr(e, interner)).collect())
            }
            AssertionExpr::AnyOf(es) => {
                CompiledExpr::AnyOf(es.iter().map(|e| self.compile_expr(e, interner)).collect())
            }
            AssertionExpr::Not(e) => CompiledExpr::Not(Box::new(self.compile_expr(e, interner))),
        }
    }

    fn push_leaf(&mut self, state: LeafState) -> usize {
        self.leaves.push(Leaf {
            state,
            violations: 0,
        });
        self.leaves.len() - 1
    }

    /// Number of compiled assertions.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// Whether the bank monitors nothing.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Samples observed so far.
    pub fn samples_observed(&self) -> u64 {
        self.samples
    }

    /// Feeds one tapped sample. Undefined samples carry no value and only
    /// count toward the sample total; unsubscribed signals are one slot
    /// load. Total: never panics, on any input.
    pub fn observe(&mut self, time: SimTime, signal: Sym, sample: &Sample) {
        self.samples += 1;
        if !sample.defined {
            return;
        }
        let idx = signal.0 as usize;
        let n = self.subs.get(idx).map_or(0, Vec::len);
        if n == 0 {
            return;
        }
        let v = sample.value.as_f64();
        for i in 0..n {
            let sub = self.subs[idx][i];
            self.leaves[sub.leaf].step(time, sub.role, v);
        }
    }

    /// Ends the stream at `end` (the requested run duration for healthy
    /// runs) and resolves every assertion. `degraded` marks a truncated
    /// run: observed violations stay `Fails` (a witnessed violation is
    /// real no matter how the run ended), everything else is forced
    /// `Inconclusive` — a truncated trace must never report a pass.
    ///
    /// Publishes `monitor.samples` / `monitor.violations` counter deltas
    /// when metrics are enabled, then resets them, so calling `finalize`
    /// once per run reports exact per-run totals.
    pub fn finalize(&mut self, end: SimTime, degraded: bool) -> Vec<AssertionVerdict> {
        let leaf_verdicts: Vec<Verdict> = self
            .leaves
            .iter()
            .map(|l| l.verdict(end, degraded))
            .collect();
        let out = self
            .assertions
            .iter()
            .map(|a| {
                let mut verdict = resolve(&a.expr, &leaf_verdicts, end);
                if degraded && !verdict.is_fail() {
                    verdict = Verdict::Inconclusive;
                }
                AssertionVerdict {
                    name: a.name.clone(),
                    verdict,
                }
            })
            .collect();
        if obs::metrics_enabled() {
            MONITOR_SAMPLES.add(std::mem::take(&mut self.samples));
            let violations: u64 = self.leaves.iter().map(|l| l.violations).sum();
            MONITOR_VIOLATIONS.add(violations);
            for l in &mut self.leaves {
                l.violations = 0;
            }
        }
        out
    }
}

/// Resolves a combinator tree over already-computed leaf verdicts.
fn resolve(expr: &CompiledExpr, leaves: &[Verdict], end: SimTime) -> Verdict {
    match expr {
        CompiledExpr::Leaf(i) => leaves[*i],
        CompiledExpr::Not(e) => match resolve(e, leaves, end) {
            Verdict::Holds => Verdict::Fails {
                first_violation_time: end,
            },
            Verdict::Fails { .. } => Verdict::Holds,
            Verdict::Vacuous => Verdict::Vacuous,
            Verdict::Inconclusive => Verdict::Inconclusive,
        },
        CompiledExpr::AllOf(es) => {
            let vs: Vec<Verdict> = es.iter().map(|e| resolve(e, leaves, end)).collect();
            if let Some(t) = vs
                .iter()
                .filter_map(|v| match v {
                    Verdict::Fails {
                        first_violation_time,
                    } => Some(*first_violation_time),
                    _ => None,
                })
                .min()
            {
                Verdict::Fails {
                    first_violation_time: t,
                }
            } else if vs.contains(&Verdict::Inconclusive) {
                Verdict::Inconclusive
            } else if !vs.is_empty() && vs.iter().all(|v| *v == Verdict::Vacuous) {
                Verdict::Vacuous
            } else {
                Verdict::Holds
            }
        }
        CompiledExpr::AnyOf(es) => {
            let vs: Vec<Verdict> = es
                .iter()
                .map(|e| resolve(e, leaves, end))
                .filter(|v| *v != Verdict::Vacuous)
                .collect();
            if vs.is_empty() {
                Verdict::Vacuous
            } else if vs.contains(&Verdict::Holds) {
                Verdict::Holds
            } else if vs.contains(&Verdict::Inconclusive) {
                Verdict::Inconclusive
            } else {
                // All remaining operands failed: the disjunction became
                // false when the *last* of them did.
                let t = vs
                    .iter()
                    .filter_map(|v| match v {
                        Verdict::Fails {
                            first_violation_time,
                        } => Some(*first_violation_time),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(end);
                Verdict::Fails {
                    first_violation_time: t,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AssertionExpr as E;

    fn feed(bank: &mut MonitorBank, sym: Sym, series: &[(u64, f64)]) {
        for &(us, v) in series {
            bank.observe(SimTime::from_us(us), sym, &Sample::new(v));
        }
    }

    fn single(expr: AssertionExpr, series: &[(u64, f64)], end_us: u64, degraded: bool) -> Verdict {
        let interner = Interner::new();
        let mut bank = MonitorBank::compile(&[AssertionSpec::new("a", expr)], &interner);
        let sym = interner.intern("m.op_y");
        feed(&mut bank, sym, series);
        bank.finalize(SimTime::from_us(end_us), degraded)[0].verdict
    }

    #[test]
    fn threshold_latches_first_violation() {
        let v = single(
            E::never_above("m.op_y", 2.0),
            &[(0, 1.0), (1, 2.5), (2, 1.0), (3, 3.0)],
            4,
            false,
        );
        assert_eq!(
            v,
            Verdict::Fails {
                first_violation_time: SimTime::from_us(1)
            }
        );
        assert_eq!(
            single(
                E::never_above("m.op_y", 2.0),
                &[(0, 1.0), (1, 2.0)],
                2,
                false
            ),
            Verdict::Holds
        );
        assert_eq!(
            single(
                E::never_below("m.op_y", 0.0),
                &[(0, 1.0), (1, -0.1)],
                2,
                false
            ),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(1)
            }
        );
        assert_eq!(
            single(E::never_above("m.op_y", 2.0), &[], 2, false),
            Verdict::Inconclusive
        );
    }

    #[test]
    fn settling_holds_after_window_in_band() {
        let expr = || E::settles("m.op_y", 5.0, 0.1, SimTime::from_us(3));
        // In band from 2 us on; window completes at 5 us.
        assert_eq!(
            single(
                expr(),
                &[
                    (0, 0.0),
                    (1, 3.0),
                    (2, 5.0),
                    (3, 5.05),
                    (4, 4.95),
                    (5, 5.0),
                    (6, 5.0)
                ],
                7,
                false
            ),
            Verdict::Holds
        );
        // Leaves the band at 4 us: the run restarts and never completes.
        assert_eq!(
            single(expr(), &[(0, 5.0), (4, 9.0), (5, 5.0), (6, 5.0)], 7, false),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(7)
            }
        );
    }

    #[test]
    fn settling_deadline_pins_violation_time() {
        let expr = E::settles_by("m.op_y", 5.0, 0.1, SimTime::from_us(3), SimTime::from_us(4));
        // In band only from 3 us: the window would complete at 6 us > 4 us.
        assert_eq!(
            single(expr.clone(), &[(0, 0.0), (3, 5.0), (7, 5.0)], 8, false),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(4)
            }
        );
        // Run ends before the deadline: inconclusive.
        assert_eq!(
            single(expr, &[(0, 0.0), (1, 0.0)], 2, false),
            Verdict::Inconclusive
        );
        // Sparse samples: in band since 0, window completes at 3 <= 4 even
        // though the next sample lands at 10.
        assert_eq!(
            single(
                E::settles_by("m.op_y", 5.0, 0.1, SimTime::from_us(3), SimTime::from_us(4)),
                &[(0, 5.0), (10, 5.0)],
                10,
                false
            ),
            Verdict::Holds
        );
    }

    #[test]
    fn recurrence_at_least_fails_on_a_quiet_window() {
        let expr = || E::recurs_at_least("m.op_y", SignalPred::Above(0.5), 1, SimTime::from_us(3));
        // A pulse each 2 us: every trailing 3 us window has an edge.
        assert_eq!(
            single(
                expr(),
                &[
                    (0, 1.0),
                    (1, 0.0),
                    (2, 1.0),
                    (3, 0.0),
                    (4, 1.0),
                    (5, 0.0),
                    (6, 1.0)
                ],
                7,
                false
            ),
            Verdict::Holds
        );
        // Goes quiet after 1 us: the window ending at 5 us has no edge.
        assert_eq!(
            single(
                expr(),
                &[(0, 1.0), (1, 0.0), (2, 0.0), (3, 0.0), (4, 0.0), (5, 0.0)],
                6,
                false
            ),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(4)
            }
        );
        // Run shorter than one window: never checked.
        assert_eq!(
            single(expr(), &[(0, 1.0), (1, 0.0)], 2, false),
            Verdict::Inconclusive
        );
    }

    #[test]
    fn recurrence_at_most_counts_edges_per_window() {
        let expr = || E::recurs_at_most("m.op_y", SignalPred::Above(0.5), 1, SimTime::from_us(3));
        // Two rising edges 2 us apart: violates at-most-1-per-3 us.
        assert_eq!(
            single(expr(), &[(0, 1.0), (1, 0.0), (2, 1.0)], 3, false),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(2)
            }
        );
        // Edges 4 us apart: fine.
        assert_eq!(
            single(
                expr(),
                &[(0, 1.0), (1, 0.0), (4, 1.0), (5, 0.0), (8, 1.0)],
                9,
                false
            ),
            Verdict::Holds
        );
    }

    #[test]
    fn within_discharges_expires_and_vacuous() {
        let mk = || {
            E::responds_within(
                "m.op_y",
                SignalPred::Above(1.0),
                "m.op_y",
                SignalPred::Below(0.5),
                SimTime::from_us(2),
            )
        };
        // Trigger at 1, response at 2: holds.
        assert_eq!(
            single(mk(), &[(0, 0.0), (1, 2.0), (2, 0.0), (5, 0.0)], 6, false),
            Verdict::Holds
        );
        // Trigger at 1, no response by 3: fails at 3 (= 1 + 2).
        assert_eq!(
            single(mk(), &[(0, 0.0), (1, 2.0), (2, 2.0), (4, 2.0)], 5, false),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(3)
            }
        );
        // Never triggered: vacuous.
        assert_eq!(
            single(mk(), &[(0, 0.0), (1, 0.9)], 2, false),
            Verdict::Vacuous
        );
        // Triggered at the very end, obligation still open: inconclusive.
        assert_eq!(
            single(mk(), &[(0, 0.0), (5, 2.0)], 6, false),
            Verdict::Inconclusive
        );
        // Obligation open and overdue at the end: fails at finalize.
        assert_eq!(
            single(mk(), &[(0, 0.0), (1, 2.0)], 6, false),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(3)
            }
        );
    }

    #[test]
    fn combinators_resolve_over_the_lattice() {
        let above = || E::never_above("m.op_y", 2.0);
        let below = || E::never_below("m.op_y", -2.0);
        let series: &[(u64, f64)] = &[(0, 0.0), (1, 3.0), (2, 0.0)];
        assert_eq!(
            single(E::all_of(vec![above(), below()]), series, 3, false),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(1)
            }
        );
        assert_eq!(
            single(E::any_of(vec![above(), below()]), series, 3, false),
            Verdict::Holds
        );
        assert_eq!(
            single(E::negate(above()), series, 3, false),
            Verdict::Holds,
            "negation of a failing threshold holds"
        );
        assert_eq!(
            single(E::negate(below()), series, 3, false),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(3)
            },
            "negation of a holding threshold fails at end of run"
        );
    }

    #[test]
    fn degraded_runs_keep_fails_and_force_inconclusive() {
        let series: &[(u64, f64)] = &[(0, 0.0), (1, 3.0), (2, 0.0)];
        assert_eq!(
            single(E::never_above("m.op_y", 2.0), series, 3, true),
            Verdict::Fails {
                first_violation_time: SimTime::from_us(1)
            },
            "an observed violation is real no matter how the run ended"
        );
        assert_eq!(
            single(E::never_below("m.op_y", -2.0), series, 3, true),
            Verdict::Inconclusive,
            "a truncated trace must never report a pass"
        );
        assert_eq!(
            single(
                E::settles("m.op_y", 0.0, 0.5, SimTime::from_us(100)),
                series,
                3,
                true
            ),
            Verdict::Inconclusive,
            "end-of-trace synthesis is unsound on truncated runs"
        );
    }

    #[test]
    fn unsubscribed_and_undefined_samples_are_ignored() {
        let interner = Interner::new();
        let mut bank = MonitorBank::compile(
            &[AssertionSpec::new("a", E::never_above("m.op_y", 2.0))],
            &interner,
        );
        let sym = interner.intern("m.op_y");
        // A sym interned after compilation indexes past the table.
        let foreign = interner.intern("other.op_z");
        bank.observe(SimTime::ZERO, foreign, &Sample::new(99.0));
        bank.observe(SimTime::ZERO, sym, &Sample::undefined());
        bank.observe(SimTime::from_us(1), sym, &Sample::new(1.0));
        assert_eq!(bank.samples_observed(), 3);
        assert_eq!(
            bank.finalize(SimTime::from_us(2), false)[0].verdict,
            Verdict::Holds
        );
    }

    #[test]
    fn verdicts_come_back_in_spec_order() {
        let interner = Interner::new();
        // Intern in reverse so spec order and sym order disagree.
        interner.intern("z.op");
        interner.intern("a.op");
        let mut bank = MonitorBank::compile(
            &[
                AssertionSpec::new("second_sym", E::never_above("a.op", 1.0)),
                AssertionSpec::new("first_sym", E::never_above("z.op", 1.0)),
            ],
            &interner,
        );
        bank.observe(SimTime::ZERO, interner.intern("a.op"), &Sample::new(0.0));
        let names: Vec<String> = bank
            .finalize(SimTime::from_us(1), false)
            .into_iter()
            .map(|v| v.name)
            .collect();
        assert_eq!(names, vec!["second_sym", "first_sym"]);
    }
}

//! The assertion AST: what users write. Signals are referred to by their
//! `"{module}.{port}"` name (the kernel's sample-tap naming); the
//! [`MonitorBank`](crate::MonitorBank) interns them at compile time.

use tdf_sim::SimTime;

/// Which direction of a [`AssertionExpr::Threshold`] crossing counts as a
/// violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdKind {
    /// The signal violates by rising **above** the level (the assertion is
    /// "never above").
    Above,
    /// The signal violates by falling **below** the level (the assertion
    /// is "never below").
    Below,
}

/// A recurrence count bound per window (the Sanyal et al. recurrence
/// operators: an event recurs at least / at most N times per window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountBound {
    /// Every full trailing window must contain at least this many events.
    AtLeast(u32),
    /// No window may contain more than this many events.
    AtMost(u32),
}

/// A pointwise predicate over one signal sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignalPred {
    /// True when the sample is strictly above the level.
    Above(f64),
    /// True when the sample is strictly below the level.
    Below(f64),
    /// True when the sample is within `center ± epsilon`.
    InBand {
        /// Band center.
        center: f64,
        /// Half-width of the band.
        epsilon: f64,
    },
}

impl SignalPred {
    /// Evaluates the predicate on one sample value.
    pub fn eval(&self, v: f64) -> bool {
        match *self {
            SignalPred::Above(level) => v > level,
            SignalPred::Below(level) => v < level,
            SignalPred::InBand { center, epsilon } => (v - center).abs() <= epsilon,
        }
    }
}

/// A dense-time assertion over the sample streams of a simulation run.
///
/// Undefined samples (open inputs, never-written ports) carry no value and
/// are skipped by every operator; they can therefore never satisfy a
/// predicate nor violate a threshold, only delay a verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum AssertionExpr {
    /// The signal never crosses `level` in the violating direction. The
    /// first violating sample latches `Fails{first_violation_time}`;
    /// further violations are only counted again after the signal re-arms
    /// by returning past `level ∓ hysteresis`.
    Threshold {
        /// Monitored signal (`"{module}.{port}"`).
        signal: String,
        /// Violating direction.
        kind: ThresholdKind,
        /// The level the signal must respect.
        level: f64,
        /// Re-arm band width (0.0 = re-arm as soon as the level is
        /// respected again). Only affects the violation *count*, never the
        /// first violation time.
        hysteresis: f64,
    },
    /// The signal enters `target ± epsilon` and stays there continuously
    /// for `window`. With a `deadline`, settling must complete (the full
    /// window elapsed in band) no later than the deadline; without one, it
    /// must complete by the end of the run.
    SettlingTime {
        /// Monitored signal.
        signal: String,
        /// Settling target.
        target: f64,
        /// Half-width of the settling band.
        epsilon: f64,
        /// How long the signal must remain in band.
        window: SimTime,
        /// Latest time the window may complete; `None` = end of run.
        deadline: Option<SimTime>,
    },
    /// Rising edges of `pred` recur per `window` according to `bound`
    /// (at-least bounds are checked on every full trailing window,
    /// at-most bounds on every edge).
    RecurrenceWindow {
        /// Monitored signal.
        signal: String,
        /// The event predicate whose rising edges are counted.
        pred: SignalPred,
        /// Window length.
        window: SimTime,
        /// Required recurrence count per window.
        bound: CountBound,
    },
    /// Bounded response: every sample satisfying `trigger` must be
    /// answered by a sample of `response_signal` satisfying `response`
    /// within `within`. Never triggered ⇒ `Vacuous`; an obligation still
    /// open when the run ends (but not yet overdue) ⇒ `Inconclusive`.
    Within {
        /// Signal whose samples can trigger the obligation.
        trigger_signal: String,
        /// Trigger predicate.
        trigger: SignalPred,
        /// Signal whose samples can discharge the obligation.
        response_signal: String,
        /// Response predicate.
        response: SignalPred,
        /// Response deadline, relative to the trigger.
        within: SimTime,
    },
    /// Conjunction: fails if any operand fails (earliest violation time
    /// wins), holds only when no operand is inconclusive.
    AllOf(Vec<AssertionExpr>),
    /// Disjunction: holds if any operand holds; vacuous operands are
    /// neutral.
    AnyOf(Vec<AssertionExpr>),
    /// Negation (vacuous and inconclusive operands stay as they are).
    Not(Box<AssertionExpr>),
}

impl AssertionExpr {
    /// "The signal never rises above `level`" (zero hysteresis).
    pub fn never_above(signal: impl Into<String>, level: f64) -> AssertionExpr {
        AssertionExpr::Threshold {
            signal: signal.into(),
            kind: ThresholdKind::Above,
            level,
            hysteresis: 0.0,
        }
    }

    /// "The signal never falls below `level`" (zero hysteresis).
    pub fn never_below(signal: impl Into<String>, level: f64) -> AssertionExpr {
        AssertionExpr::Threshold {
            signal: signal.into(),
            kind: ThresholdKind::Below,
            level,
            hysteresis: 0.0,
        }
    }

    /// Sets the hysteresis band of a [`AssertionExpr::Threshold`] (builder
    /// style); any other operator is returned unchanged.
    pub fn with_hysteresis(mut self, h: f64) -> AssertionExpr {
        if let AssertionExpr::Threshold { hysteresis, .. } = &mut self {
            *hysteresis = h;
        }
        self
    }

    /// "The signal settles into `target ± epsilon` for `window`, by the
    /// end of the run."
    pub fn settles(
        signal: impl Into<String>,
        target: f64,
        epsilon: f64,
        window: SimTime,
    ) -> AssertionExpr {
        AssertionExpr::SettlingTime {
            signal: signal.into(),
            target,
            epsilon,
            window,
            deadline: None,
        }
    }

    /// [`AssertionExpr::settles`] with a hard deadline for the window to
    /// complete.
    pub fn settles_by(
        signal: impl Into<String>,
        target: f64,
        epsilon: f64,
        window: SimTime,
        deadline: SimTime,
    ) -> AssertionExpr {
        AssertionExpr::SettlingTime {
            signal: signal.into(),
            target,
            epsilon,
            window,
            deadline: Some(deadline),
        }
    }

    /// "Rising edges of `pred` occur at least `n` times in every full
    /// trailing window."
    pub fn recurs_at_least(
        signal: impl Into<String>,
        pred: SignalPred,
        n: u32,
        window: SimTime,
    ) -> AssertionExpr {
        AssertionExpr::RecurrenceWindow {
            signal: signal.into(),
            pred,
            window,
            bound: CountBound::AtLeast(n),
        }
    }

    /// "Rising edges of `pred` occur at most `n` times in any window."
    pub fn recurs_at_most(
        signal: impl Into<String>,
        pred: SignalPred,
        n: u32,
        window: SimTime,
    ) -> AssertionExpr {
        AssertionExpr::RecurrenceWindow {
            signal: signal.into(),
            pred,
            window,
            bound: CountBound::AtMost(n),
        }
    }

    /// Bounded response: `trigger` on `trigger_signal` ⇒ `response` on
    /// `response_signal` within `within`.
    pub fn responds_within(
        trigger_signal: impl Into<String>,
        trigger: SignalPred,
        response_signal: impl Into<String>,
        response: SignalPred,
        within: SimTime,
    ) -> AssertionExpr {
        AssertionExpr::Within {
            trigger_signal: trigger_signal.into(),
            trigger,
            response_signal: response_signal.into(),
            response,
            within,
        }
    }

    /// Conjunction of `exprs`.
    pub fn all_of(exprs: Vec<AssertionExpr>) -> AssertionExpr {
        AssertionExpr::AllOf(exprs)
    }

    /// Disjunction of `exprs`.
    pub fn any_of(exprs: Vec<AssertionExpr>) -> AssertionExpr {
        AssertionExpr::AnyOf(exprs)
    }

    /// Negation of `expr`.
    pub fn negate(expr: AssertionExpr) -> AssertionExpr {
        AssertionExpr::Not(Box::new(expr))
    }
}

/// One named assertion: what a report row, a CSV line and a serve-protocol
/// verdict entry are keyed by.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionSpec {
    /// Report name of the assertion (unique within a spec list by
    /// convention; duplicates are evaluated independently).
    pub name: String,
    /// The monitored property.
    pub expr: AssertionExpr,
}

impl AssertionSpec {
    /// Names an assertion.
    pub fn new(name: impl Into<String>, expr: AssertionExpr) -> AssertionSpec {
        AssertionSpec {
            name: name.into(),
            expr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preds_evaluate_pointwise() {
        assert!(SignalPred::Above(1.0).eval(1.5));
        assert!(!SignalPred::Above(1.0).eval(1.0));
        assert!(SignalPred::Below(0.0).eval(-0.1));
        assert!(SignalPred::InBand {
            center: 5.0,
            epsilon: 0.5
        }
        .eval(5.5));
        assert!(!SignalPred::InBand {
            center: 5.0,
            epsilon: 0.5
        }
        .eval(5.6));
    }

    #[test]
    fn builders_construct_the_expected_variants() {
        let t = AssertionExpr::never_above("m.op_y", 2.0).with_hysteresis(0.1);
        assert!(matches!(
            t,
            AssertionExpr::Threshold {
                kind: ThresholdKind::Above,
                hysteresis,
                ..
            } if hysteresis == 0.1
        ));
        let s = AssertionExpr::settles_by(
            "m.op_y",
            1.0,
            0.05,
            SimTime::from_us(10),
            SimTime::from_us(50),
        );
        assert!(matches!(
            s,
            AssertionExpr::SettlingTime {
                deadline: Some(_),
                ..
            }
        ));
        let spec = AssertionSpec::new("A1", AssertionExpr::negate(t));
        assert_eq!(spec.name, "A1");
    }
}

//! The [`MonitorSink`] adapter: wraps any [`EventSink`] and tees the
//! kernel's per-sample tap into a shared [`MonitorBank`], so one
//! simulation pass produces both the def/use event stream (coverage) and
//! assertion verdicts with zero extra buffering.

use std::sync::{Arc, Mutex};

use tdf_sim::{CompactEvent, Event, EventSink, Interner, Sample, SimTime, Sym};

use crate::bank::MonitorBank;

/// Wraps an inner sink, forwarding def/use events untouched while feeding
/// every tapped sample to a [`MonitorBank`].
///
/// The bank is shared via `Arc<Mutex<_>>` so isolated run paths (which
/// move their sink into `catch_unwind`) can harvest verdicts afterwards;
/// a poisoned lock (the simulation panicked mid-sample) is recovered, not
/// propagated — the partial monitor state is still sound because those
/// runs are finalized as degraded.
pub struct MonitorSink<'a> {
    inner: &'a mut dyn EventSink,
    bank: Arc<Mutex<MonitorBank>>,
}

impl<'a> MonitorSink<'a> {
    /// Tees `bank` off the sample tap while `inner` keeps receiving the
    /// instrumentation event stream.
    pub fn new(inner: &'a mut dyn EventSink, bank: Arc<Mutex<MonitorBank>>) -> MonitorSink<'a> {
        MonitorSink { inner, bank }
    }
}

impl EventSink for MonitorSink<'_> {
    fn record(&mut self, event: Event) {
        self.inner.record(event);
    }

    fn record_compact(&mut self, event: CompactEvent, interner: &Interner) {
        self.inner.record_compact(event, interner);
    }

    fn wants_samples(&self) -> bool {
        true
    }

    fn record_sample(&mut self, time: SimTime, signal: Sym, sample: &Sample) {
        let mut bank = self.bank.lock().unwrap_or_else(|p| p.into_inner());
        bank.observe(time, signal, sample);
        if self.inner.wants_samples() {
            self.inner.record_sample(time, signal, sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AssertionExpr, AssertionSpec};

    #[test]
    fn sink_tees_samples_into_the_bank_and_forwards_events() {
        let interner = Interner::new();
        let bank = Arc::new(Mutex::new(MonitorBank::compile(
            &[AssertionSpec::new(
                "cap",
                AssertionExpr::never_above("m.op_y", 2.0),
            )],
            &interner,
        )));
        let sym = interner.intern("m.op_y");
        let mut inner = tdf_sim::NullSink;
        {
            let mut sink = MonitorSink::new(&mut inner, Arc::clone(&bank));
            assert!(sink.wants_samples());
            sink.record_sample(SimTime::ZERO, sym, &Sample::new(1.0));
            sink.record_sample(SimTime::from_us(1), sym, &Sample::new(3.0));
        }
        let mut bank = bank.lock().unwrap();
        assert_eq!(bank.samples_observed(), 2);
        let verdicts = bank.finalize(SimTime::from_us(2), false);
        assert!(verdicts[0].verdict.is_fail());
    }
}

//! Streaming AMS assertion monitors over TDF sample streams.
//!
//! The simulation kernel taps every produced output sample (see
//! `EventSink::record_sample` in `tdf-sim`); this crate turns a list of
//! declarative [`AssertionSpec`]s into a compiled [`MonitorBank`] of
//! `Sym`-indexed per-signal automata that consume that tap in the same
//! pass as def/use matching — coverage *and* property verdicts from one
//! simulation run, with O(1) monitor state per assertion and zero extra
//! buffering.
//!
//! Operators (dense-time, per Sanyal et al.'s AMS assertion catalogue):
//!
//! * [`AssertionExpr::Threshold`] — "never above / never below", with an
//!   optional hysteresis re-arm band;
//! * [`AssertionExpr::SettlingTime`] — the signal enters `target ± ε` and
//!   stays for a window, optionally by a deadline;
//! * [`AssertionExpr::RecurrenceWindow`] — an event recurs at least / at
//!   most N times per window;
//! * [`AssertionExpr::Within`] — bounded response: trigger ⇒ response
//!   within Δt;
//! * [`AssertionExpr::AllOf`] / [`AssertionExpr::AnyOf`] /
//!   [`AssertionExpr::Not`] — boolean combinators over verdicts.
//!
//! Each assertion resolves to a four-valued [`Verdict`]: `Holds`,
//! `Fails { first_violation_time }`, `Vacuous` (never triggered) or
//! `Inconclusive` (not enough trace). Degraded runs (budget trips,
//! panics) keep observed violations but never report a pass.
//!
//! ```
//! use dft_monitor::{AssertionExpr, AssertionSpec, MonitorBank, Verdict};
//! use tdf_sim::{Interner, Sample, SimTime};
//!
//! let interner = Interner::new();
//! let specs = [AssertionSpec::new(
//!     "overshoot",
//!     AssertionExpr::never_above("plant.op_y", 1.2),
//! )];
//! let mut bank = MonitorBank::compile(&specs, &interner);
//! let y = interner.intern("plant.op_y");
//! bank.observe(SimTime::from_us(1), y, &Sample::new(1.5));
//! let verdicts = bank.finalize(SimTime::from_us(2), false);
//! assert_eq!(
//!     verdicts[0].verdict,
//!     Verdict::Fails { first_violation_time: SimTime::from_us(1) }
//! );
//! ```

#![warn(missing_docs)]

mod bank;
mod sink;
mod spec;

pub use bank::{AssertionVerdict, MonitorBank, Verdict};
pub use sink::MonitorSink;
pub use spec::{AssertionExpr, AssertionSpec, CountBound, SignalPred, ThresholdKind};

//! Test input signals: the time-continuous stimulus shapes the paper's
//! testcases are built from (constant levels, ramps, steps, sines, PWM,
//! piecewise-linear profiles, seeded noise, and compositions thereof).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdf_sim::{FnSource, SimTime, Value};

/// A deterministic stimulus shape: a function of simulation time.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// A constant level, e.g. the paper's TC1 (0.1 V ≙ 10 °C).
    Constant(f64),
    /// A step from `before` to `after` at time `at`.
    Step {
        /// Level before the step.
        before: f64,
        /// Level after the step.
        after: f64,
        /// Step time.
        at: SimTime,
    },
    /// Linear ramp from `from` (at `start`) to `to` (at `end`), holding the
    /// endpoint levels outside the window.
    Ramp {
        /// Start level.
        from: f64,
        /// End level.
        to: f64,
        /// Ramp start time.
        start: SimTime,
        /// Ramp end time.
        end: SimTime,
    },
    /// A triangle sweep `from → to → from` over `[start, end]` — the
    /// paper's TC2 shape (0 V → 0.65 V → 0 V).
    Triangle {
        /// Base level.
        from: f64,
        /// Peak level (reached at the window midpoint).
        to: f64,
        /// Sweep start.
        start: SimTime,
        /// Sweep end.
        end: SimTime,
    },
    /// `offset + amplitude · sin(2π · freq_hz · t)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq_hz: f64,
    },
    /// Pulse-width modulation between `low` and `high`.
    Pwm {
        /// Low level.
        low: f64,
        /// High level.
        high: f64,
        /// Period of one PWM cycle.
        period: SimTime,
        /// Duty cycle in `[0, 1]`.
        duty: f64,
    },
    /// Piecewise-linear interpolation through `(time, value)` points
    /// (sorted by time; levels hold outside the range).
    Piecewise(Vec<(SimTime, f64)>),
    /// Uniform noise in `[lo, hi]`, deterministic per seed and timestep.
    Noise {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// RNG seed (same seed ⇒ same trace).
        seed: u64,
        /// Sample hold interval for the noise process.
        hold: SimTime,
    },
    /// Sum of two signals.
    Sum(Box<Signal>, Box<Signal>),
    /// A signal scaled by a constant.
    Scaled(Box<Signal>, f64),
}

impl Signal {
    /// A triangle sweep helper matching the paper's TC2 parameters.
    pub fn sweep(from: f64, to: f64, start: SimTime, end: SimTime) -> Signal {
        Signal::Triangle {
            from,
            to,
            start,
            end,
        }
    }

    /// The signal value at time `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self {
            Signal::Constant(v) => *v,
            Signal::Step { before, after, at } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            Signal::Ramp {
                from,
                to,
                start,
                end,
            } => {
                if t <= *start {
                    *from
                } else if t >= *end {
                    *to
                } else {
                    let span = (end.as_fs() - start.as_fs()) as f64;
                    let pos = (t.as_fs() - start.as_fs()) as f64;
                    from + (to - from) * pos / span
                }
            }
            Signal::Triangle {
                from,
                to,
                start,
                end,
            } => {
                if t <= *start || t >= *end {
                    *from
                } else {
                    let span = (end.as_fs() - start.as_fs()) as f64;
                    let pos = (t.as_fs() - start.as_fs()) as f64;
                    let phase = pos / span; // 0..1
                    let tri = if phase < 0.5 {
                        phase * 2.0
                    } else {
                        2.0 - phase * 2.0
                    };
                    from + (to - from) * tri
                }
            }
            Signal::Sine {
                offset,
                amplitude,
                freq_hz,
            } => {
                offset + amplitude * (2.0 * std::f64::consts::PI * freq_hz * t.as_secs_f64()).sin()
            }
            Signal::Pwm {
                low,
                high,
                period,
                duty,
            } => {
                let pos = t.as_fs() % period.as_fs().max(1);
                let threshold = (period.as_fs() as f64 * duty.clamp(0.0, 1.0)) as u64;
                if pos < threshold {
                    *high
                } else {
                    *low
                }
            }
            Signal::Piecewise(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t < t1 {
                        let span = (t1.as_fs() - t0.as_fs()).max(1) as f64;
                        let pos = (t.as_fs() - t0.as_fs()) as f64;
                        return v0 + (v1 - v0) * pos / span;
                    }
                }
                points.last().expect("non-empty").1
            }
            Signal::Noise { lo, hi, seed, hold } => {
                // Deterministic: the value depends only on the hold-slot
                // index and the seed, never on call order.
                let slot = t.as_fs() / hold.as_fs().max(1);
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(slot));
                rng.gen_range(*lo..=*hi)
            }
            Signal::Sum(a, b) => a.value_at(t) + b.value_at(t),
            Signal::Scaled(inner, k) => inner.value_at(t) * k,
        }
    }

    /// Wraps the signal into a TDF stimulus source module.
    pub fn into_source(
        self,
        name: impl Into<String>,
        timestep: SimTime,
    ) -> FnSource<impl FnMut(SimTime) -> Value> {
        FnSource::new(name, timestep, move |t| Value::Double(self.value_at(t)))
    }

    /// Samples the signal at `timestep` over `duration`.
    pub fn sample_vec(&self, timestep: SimTime, duration: SimTime) -> Vec<f64> {
        let n = duration.div_floor(timestep);
        (0..n).map(|k| self.value_at(timestep * k)).collect()
    }

    /// `self + other`.
    pub fn plus(self, other: Signal) -> Signal {
        Signal::Sum(Box::new(self), Box::new(other))
    }

    /// `self · k`.
    pub fn times(self, k: f64) -> Signal {
        Signal::Scaled(Box::new(self), k)
    }

    /// Structurally rewrites every *level* parameter through `f` — the
    /// amplitude/offset mutation hook used by coverage-guided test
    /// generation. Levels are the voltage-like parameters (constant
    /// values, step/ramp/triangle endpoints, sine offset and amplitude,
    /// PWM rails, piecewise values, noise bounds); shape parameters
    /// (times, frequency, duty, scale factors, seeds) are untouched, so
    /// the signal keeps its kind. `Noise` bounds are re-ordered after
    /// mapping so `lo <= hi` still holds.
    pub fn map_levels(&self, f: &mut dyn FnMut(f64) -> f64) -> Signal {
        match self {
            Signal::Constant(v) => Signal::Constant(f(*v)),
            Signal::Step { before, after, at } => Signal::Step {
                before: f(*before),
                after: f(*after),
                at: *at,
            },
            Signal::Ramp {
                from,
                to,
                start,
                end,
            } => Signal::Ramp {
                from: f(*from),
                to: f(*to),
                start: *start,
                end: *end,
            },
            Signal::Triangle {
                from,
                to,
                start,
                end,
            } => Signal::Triangle {
                from: f(*from),
                to: f(*to),
                start: *start,
                end: *end,
            },
            Signal::Sine {
                offset,
                amplitude,
                freq_hz,
            } => Signal::Sine {
                offset: f(*offset),
                amplitude: f(*amplitude),
                freq_hz: *freq_hz,
            },
            Signal::Pwm {
                low,
                high,
                period,
                duty,
            } => Signal::Pwm {
                low: f(*low),
                high: f(*high),
                period: *period,
                duty: *duty,
            },
            Signal::Piecewise(points) => {
                Signal::Piecewise(points.iter().map(|(t, v)| (*t, f(*v))).collect())
            }
            Signal::Noise { lo, hi, seed, hold } => {
                let (a, b) = (f(*lo), f(*hi));
                Signal::Noise {
                    lo: a.min(b),
                    hi: a.max(b),
                    seed: *seed,
                    hold: *hold,
                }
            }
            Signal::Sum(a, b) => Signal::Sum(Box::new(a.map_levels(f)), Box::new(b.map_levels(f))),
            Signal::Scaled(inner, k) => Signal::Scaled(Box::new(inner.map_levels(f)), *k),
        }
    }

    /// Structurally rewrites every *time* parameter through `f` — the
    /// step-time/window mutation hook used by coverage-guided test
    /// generation. Window pairs (ramp/triangle `start`/`end`) are
    /// re-ordered after mapping so `start <= end` still holds, and
    /// piecewise breakpoints are re-sorted by time; levels are untouched.
    pub fn map_times(&self, f: &mut dyn FnMut(SimTime) -> SimTime) -> Signal {
        match self {
            Signal::Constant(v) => Signal::Constant(*v),
            Signal::Step { before, after, at } => Signal::Step {
                before: *before,
                after: *after,
                at: f(*at),
            },
            Signal::Ramp {
                from,
                to,
                start,
                end,
            } => {
                let (a, b) = (f(*start), f(*end));
                Signal::Ramp {
                    from: *from,
                    to: *to,
                    start: a.min(b),
                    end: a.max(b),
                }
            }
            Signal::Triangle {
                from,
                to,
                start,
                end,
            } => {
                let (a, b) = (f(*start), f(*end));
                Signal::Triangle {
                    from: *from,
                    to: *to,
                    start: a.min(b),
                    end: a.max(b),
                }
            }
            Signal::Sine { .. } => self.clone(),
            Signal::Pwm {
                low,
                high,
                period,
                duty,
            } => Signal::Pwm {
                low: *low,
                high: *high,
                // A zero period would alias every sample to the high rail;
                // keep at least one femtosecond.
                period: f(*period).max(SimTime::from_fs(1)),
                duty: *duty,
            },
            Signal::Piecewise(points) => {
                let mut mapped: Vec<(SimTime, f64)> =
                    points.iter().map(|(t, v)| (f(*t), *v)).collect();
                mapped.sort_by_key(|(t, _)| *t);
                Signal::Piecewise(mapped)
            }
            Signal::Noise { lo, hi, seed, hold } => Signal::Noise {
                lo: *lo,
                hi: *hi,
                seed: *seed,
                hold: f(*hold).max(SimTime::from_fs(1)),
            },
            Signal::Sum(a, b) => Signal::Sum(Box::new(a.map_times(f)), Box::new(b.map_times(f))),
            Signal::Scaled(inner, k) => Signal::Scaled(Box::new(inner.map_times(f)), *k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: fn(u64) -> SimTime = SimTime::from_us;

    #[test]
    fn constant_holds() {
        let s = Signal::Constant(0.1);
        assert_eq!(s.value_at(SimTime::ZERO), 0.1);
        assert_eq!(s.value_at(US(1000)), 0.1);
    }

    #[test]
    fn step_switches_at_time() {
        let s = Signal::Step {
            before: 0.0,
            after: 1.0,
            at: US(10),
        };
        assert_eq!(s.value_at(US(9)), 0.0);
        assert_eq!(s.value_at(US(10)), 1.0);
    }

    #[test]
    fn ramp_interpolates_and_clamps() {
        let s = Signal::Ramp {
            from: 0.0,
            to: 1.0,
            start: US(10),
            end: US(20),
        };
        assert_eq!(s.value_at(US(0)), 0.0);
        assert!((s.value_at(US(15)) - 0.5).abs() < 1e-12);
        assert_eq!(s.value_at(US(25)), 1.0);
    }

    #[test]
    fn triangle_peaks_at_midpoint() {
        // The TC2 shape: 0 V -> 0.65 V -> 0 V.
        let s = Signal::sweep(0.0, 0.65, US(0), US(100));
        assert_eq!(s.value_at(US(0)), 0.0);
        assert!((s.value_at(US(50)) - 0.65).abs() < 1e-9);
        assert!((s.value_at(US(25)) - 0.325).abs() < 1e-9);
        assert_eq!(s.value_at(US(100)), 0.0);
    }

    #[test]
    fn sine_oscillates() {
        let s = Signal::Sine {
            offset: 1.0,
            amplitude: 0.5,
            freq_hz: 1000.0,
        };
        // Quarter period of 1 kHz = 250 us -> peak.
        assert!((s.value_at(US(250)) - 1.5).abs() < 1e-9);
        assert!((s.value_at(SimTime::ZERO) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pwm_duty_cycle() {
        let s = Signal::Pwm {
            low: 0.0,
            high: 5.0,
            period: US(10),
            duty: 0.3,
        };
        assert_eq!(s.value_at(US(0)), 5.0);
        assert_eq!(s.value_at(US(2)), 5.0);
        assert_eq!(s.value_at(US(3)), 0.0);
        assert_eq!(s.value_at(US(9)), 0.0);
        assert_eq!(s.value_at(US(10)), 5.0, "wraps around");
    }

    #[test]
    fn piecewise_interpolates() {
        let s = Signal::Piecewise(vec![(US(0), 0.0), (US(10), 1.0), (US(20), 0.5)]);
        assert_eq!(s.value_at(US(0)), 0.0);
        assert!((s.value_at(US(5)) - 0.5).abs() < 1e-12);
        assert!((s.value_at(US(15)) - 0.75).abs() < 1e-12);
        assert_eq!(s.value_at(US(30)), 0.5, "holds last value");
        assert_eq!(Signal::Piecewise(vec![]).value_at(US(1)), 0.0);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let s = Signal::Noise {
            lo: -0.1,
            hi: 0.1,
            seed: 42,
            hold: US(1),
        };
        let a: Vec<f64> = (0..50).map(|k| s.value_at(US(k))).collect();
        let b: Vec<f64> = (0..50).map(|k| s.value_at(US(k))).collect();
        assert_eq!(a, b, "same seed, same trace");
        assert!(a.iter().all(|v| (-0.1..=0.1).contains(v)));
        let s2 = Signal::Noise {
            lo: -0.1,
            hi: 0.1,
            seed: 43,
            hold: US(1),
        };
        let c: Vec<f64> = (0..50).map(|k| s2.value_at(US(k))).collect();
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn composition() {
        let s = Signal::Constant(1.0).plus(Signal::Constant(2.0)).times(2.0);
        assert_eq!(s.value_at(US(5)), 6.0);
    }

    #[test]
    fn sample_vec_length_and_values() {
        let s = Signal::Ramp {
            from: 0.0,
            to: 3.0,
            start: US(0),
            end: US(3),
        };
        let v = s.sample_vec(US(1), US(4));
        assert_eq!(v.len(), 4);
        assert!((v[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn map_levels_rewrites_levels_only() {
        let s = Signal::Step {
            before: 1.0,
            after: 2.0,
            at: US(10),
        }
        .plus(Signal::Sine {
            offset: 0.5,
            amplitude: 0.25,
            freq_hz: 50.0,
        });
        let doubled = s.map_levels(&mut |v| v * 2.0);
        // Every level doubled, shape parameters untouched.
        assert_eq!(doubled.value_at(US(0)), 2.0 + 1.0);
        assert_eq!(
            doubled,
            Signal::Step {
                before: 2.0,
                after: 4.0,
                at: US(10),
            }
            .plus(Signal::Sine {
                offset: 1.0,
                amplitude: 0.5,
                freq_hz: 50.0,
            })
        );
    }

    #[test]
    fn map_levels_keeps_noise_bounds_ordered() {
        let s = Signal::Noise {
            lo: -0.1,
            hi: 0.1,
            seed: 1,
            hold: US(1),
        };
        // Negation swaps the bounds; the hook must re-order them.
        let flipped = s.map_levels(&mut |v| -v);
        match flipped {
            Signal::Noise { lo, hi, .. } => {
                assert!(lo <= hi, "bounds re-ordered: {lo} {hi}");
            }
            other => panic!("kind preserved, got {other:?}"),
        }
    }

    #[test]
    fn map_times_rewrites_times_and_reorders_windows() {
        let s = Signal::Triangle {
            from: 0.0,
            to: 1.0,
            start: US(10),
            end: US(30),
        };
        // Reflect the window: start/end swap and must be re-ordered.
        let mapped = s.map_times(&mut |t| US(40) - t);
        assert_eq!(
            mapped,
            Signal::Triangle {
                from: 0.0,
                to: 1.0,
                start: US(10),
                end: US(30),
            }
        );
        let pw = Signal::Piecewise(vec![(US(0), 0.0), (US(10), 1.0)]);
        let rev = pw.map_times(&mut |t| US(10) - t);
        assert_eq!(
            rev,
            Signal::Piecewise(vec![(US(0), 1.0), (US(10), 0.0)]),
            "breakpoints re-sorted by mapped time"
        );
    }

    #[test]
    fn map_times_keeps_periods_positive() {
        let s = Signal::Pwm {
            low: 0.0,
            high: 1.0,
            period: US(10),
            duty: 0.5,
        };
        let squashed = s.map_times(&mut |_| SimTime::ZERO);
        match squashed {
            Signal::Pwm { period, .. } => assert!(!period.is_zero()),
            other => panic!("kind preserved, got {other:?}"),
        }
    }

    #[test]
    fn into_source_integrates_with_kernel() {
        use tdf_sim::{Cluster, NullSink, Probe, Simulator};
        let s = Signal::Step {
            before: 0.0,
            after: 2.0,
            at: US(2),
        };
        let mut c = Cluster::new("top");
        let src = c
            .add_module(Box::new(s.into_source("stim", US(1))))
            .unwrap();
        let (probe, buf) = Probe::new("probe");
        let p = c.add_module(Box::new(probe)).unwrap();
        c.connect(src, "op_out", p, "tdf_i").unwrap();
        let mut sim = Simulator::new(c).unwrap();
        sim.run(US(4), &mut NullSink).unwrap();
        assert_eq!(buf.values_f64(), vec![0.0, 0.0, 2.0, 2.0]);
    }
}

//! # stimuli — test input signals and testsuites for TDF verification
//!
//! The paper's testcases are *test input signals* ("TC1: a constant time
//! continuous signal of 0.1 V, mimicking a temperature of 10 °C; TC2: a
//! time continuous signal from 0 V to 0.65 V and back; …"). This crate
//! provides those shapes as composable, deterministic [`Signal`]s, the
//! [`Testcase`] bundling signals onto named stimulus channels, and the
//! [`Testsuite`] with the iteration structure of Table II (each refinement
//! iteration adds testcases).
//!
//! ```
//! use stimuli::{Signal, Testcase};
//! use tdf_sim::SimTime;
//!
//! // The paper's TC2: 0 V -> 0.65 V -> 0 V sweep on the temperature input.
//! let tc2 = Testcase::new("TC2", SimTime::from_ms(1)).with(
//!     "ts_in",
//!     Signal::sweep(0.0, 0.65, SimTime::ZERO, SimTime::from_ms(1)),
//! );
//! let peak = tc2.signal("ts_in").value_at(SimTime::from_us(500));
//! assert!((peak - 0.65).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod signal;
mod testcase;

pub use signal::Signal;
pub use testcase::{Testcase, Testsuite};

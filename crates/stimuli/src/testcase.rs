//! Testcases and testsuites: named bundles of stimulus channels, plus the
//! iteration structure of the paper's Table II (a testsuite growing over
//! refinement iterations).

use tdf_sim::SimTime;

use crate::signal::Signal;

/// One testcase: a set of named stimulus channels applied for `duration`.
#[derive(Debug, Clone, PartialEq)]
pub struct Testcase {
    /// Testcase name, e.g. `TC1`.
    pub name: String,
    /// Simulated duration.
    pub duration: SimTime,
    /// `(channel, signal)` pairs; channels are design-defined stimulus
    /// inputs (e.g. `"ts_in"` for the temperature-sensor input).
    pub channels: Vec<(String, Signal)>,
}

impl Testcase {
    /// Creates an empty testcase.
    pub fn new(name: impl Into<String>, duration: SimTime) -> Self {
        Testcase {
            name: name.into(),
            duration,
            channels: Vec::new(),
        }
    }

    /// Adds a stimulus channel (builder style).
    pub fn with(mut self, channel: impl Into<String>, signal: Signal) -> Self {
        self.channels.push((channel.into(), signal));
        self
    }

    /// The signal driving `channel`, or `Signal::Constant(0.0)` if the
    /// testcase does not drive it.
    ///
    /// The constant-zero fallback is a load-bearing contract: cluster
    /// builders call `signal()` for *every* stimulus channel of the
    /// design, so a testcase may drive any subset (the paper's TC3 drives
    /// only the humidity sensor) and every undriven input is held at a
    /// well-defined 0.0 instead of floating. Test generation relies on it
    /// too — mutating one channel of a partial testcase never changes
    /// what the untouched channels feed the design. Use
    /// [`Testcase::drives`] to distinguish "drives 0.0 explicitly" from
    /// "not driven".
    pub fn signal(&self, channel: &str) -> Signal {
        self.channels
            .iter()
            .find(|(c, _)| c == channel)
            .map(|(_, s)| s.clone())
            .unwrap_or(Signal::Constant(0.0))
    }

    /// Whether the testcase drives `channel` explicitly.
    pub fn drives(&self, channel: &str) -> bool {
        self.channels.iter().any(|(c, _)| c == channel)
    }

    /// Replaces the signal on `channel`, or appends the channel if the
    /// testcase does not drive it yet — the in-place mutation hook used
    /// by coverage-guided test generation (unlike [`Testcase::with`],
    /// which always appends and would shadow-duplicate the channel).
    pub fn set_signal(&mut self, channel: &str, signal: Signal) {
        match self.channels.iter_mut().find(|(c, _)| c == channel) {
            Some((_, s)) => *s = signal,
            None => self.channels.push((channel.to_owned(), signal)),
        }
    }
}

/// A growing testsuite with iteration boundaries, mirroring Table II where
/// each refinement iteration adds testcases to the previous set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Testsuite {
    /// Suite name (the AMS system under test).
    pub name: String,
    cases: Vec<Testcase>,
    /// Cumulative case counts at each iteration boundary; `boundaries[i]`
    /// is the suite size at iteration `i`.
    boundaries: Vec<usize>,
}

impl Testsuite {
    /// Creates an empty suite.
    pub fn new(name: impl Into<String>) -> Self {
        Testsuite {
            name: name.into(),
            cases: Vec::new(),
            boundaries: Vec::new(),
        }
    }

    /// Appends `cases` as the next iteration.
    pub fn add_iteration(&mut self, cases: Vec<Testcase>) {
        self.cases.extend(cases);
        self.boundaries.push(self.cases.len());
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.boundaries.len()
    }

    /// All cases of iterations `0..=iteration` (the cumulative suite the
    /// paper evaluates at each row of Table II).
    ///
    /// # Panics
    ///
    /// Panics if `iteration >= self.iterations()`.
    pub fn up_to(&self, iteration: usize) -> &[Testcase] {
        &self.cases[..self.boundaries[iteration]]
    }

    /// All cases.
    pub fn all(&self) -> &[Testcase] {
        &self.cases
    }

    /// Suite size at `iteration`.
    ///
    /// # Panics
    ///
    /// Panics if `iteration >= self.iterations()`.
    pub fn size_at(&self, iteration: usize) -> usize {
        self.boundaries[iteration]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc(name: &str) -> Testcase {
        Testcase::new(name, SimTime::from_us(100))
    }

    #[test]
    fn testcase_channels() {
        let t = tc("TC1")
            .with("ts_in", Signal::Constant(0.1))
            .with("hs_in", Signal::Constant(0.0));
        assert!(t.drives("ts_in"));
        assert!(!t.drives("other"));
        assert_eq!(t.signal("ts_in"), Signal::Constant(0.1));
        assert_eq!(t.signal("missing"), Signal::Constant(0.0));
    }

    #[test]
    fn suite_iterations_accumulate() {
        let mut s = Testsuite::new("window lifter");
        s.add_iteration(vec![tc("a"), tc("b")]);
        s.add_iteration(vec![tc("c")]);
        s.add_iteration(vec![tc("d"), tc("e")]);
        assert_eq!(s.iterations(), 3);
        assert_eq!(s.size_at(0), 2);
        assert_eq!(s.size_at(1), 3);
        assert_eq!(s.size_at(2), 5);
        assert_eq!(s.up_to(0).len(), 2);
        assert_eq!(s.up_to(2).len(), 5);
        assert_eq!(s.all().len(), 5);
        // Cumulative: iteration 1 contains iteration 0's cases.
        assert_eq!(s.up_to(1)[0].name, "a");
    }

    #[test]
    #[should_panic]
    fn out_of_range_iteration_panics() {
        let s = Testsuite::new("x");
        s.up_to(0);
    }

    #[test]
    fn undriven_channel_falls_back_to_constant_zero() {
        let t = tc("TC").with("driven", Signal::Constant(1.0));
        // The documented contract: undriven channels read as a constant
        // 0.0 signal at every time, and `drives` tells them apart from an
        // explicit zero.
        assert_eq!(t.signal("undriven"), Signal::Constant(0.0));
        assert_eq!(
            t.signal("undriven").value_at(SimTime::from_ms(5)),
            0.0,
            "fallback holds at all times"
        );
        assert!(!t.drives("undriven"));
        let explicit = tc("TC0").with("zeroed", Signal::Constant(0.0));
        assert!(explicit.drives("zeroed"));
        assert_eq!(explicit.signal("zeroed"), t.signal("undriven"));
    }

    #[test]
    fn set_signal_replaces_in_place_or_appends() {
        let mut t = tc("TC").with("a", Signal::Constant(1.0));
        t.set_signal("a", Signal::Constant(2.0));
        assert_eq!(t.channels.len(), 1, "replaced, not duplicated");
        assert_eq!(t.signal("a"), Signal::Constant(2.0));
        t.set_signal("b", Signal::Constant(3.0));
        assert_eq!(t.channels.len(), 2);
        assert_eq!(t.signal("b"), Signal::Constant(3.0));
    }

    #[test]
    fn empty_iterations_keep_boundaries_consistent() {
        let mut s = Testsuite::new("gen");
        // An iteration that accepted no candidates still records a
        // boundary — Table II rendering needs one row per iteration even
        // when the suite did not grow.
        s.add_iteration(vec![]);
        assert_eq!(s.iterations(), 1);
        assert_eq!(s.size_at(0), 0);
        assert!(s.up_to(0).is_empty());
        s.add_iteration(vec![tc("a")]);
        s.add_iteration(vec![]);
        assert_eq!(s.iterations(), 3);
        assert_eq!(s.size_at(0), 0);
        assert_eq!(s.size_at(1), 1);
        assert_eq!(s.size_at(2), 1, "empty iteration holds the count");
        assert_eq!(s.up_to(2).len(), 1);
        assert_eq!(s.all().len(), 1);
    }

    #[test]
    fn boundary_at_zero_and_cumulative_counts() {
        let mut s = Testsuite::new("gen");
        s.add_iteration(vec![]);
        s.add_iteration(vec![tc("a"), tc("b")]);
        s.add_iteration(vec![tc("c")]);
        // Cumulative counts: 0, 2, 3 — and `up_to` slices agree with
        // `size_at` at every boundary.
        let sizes: Vec<usize> = (0..s.iterations()).map(|i| s.size_at(i)).collect();
        assert_eq!(sizes, vec![0, 2, 3]);
        for i in 0..s.iterations() {
            assert_eq!(s.up_to(i).len(), s.size_at(i));
        }
        assert_eq!(
            s.up_to(2)[0].name,
            "a",
            "earlier iterations prefix later ones"
        );
    }
}

//! # obs — pipeline observability for the DFT toolchain
//!
//! A zero-dependency layer of **monotonic counters**, **histogram timers**
//! and **trace spans** behind one `static` registry of atomics. Everything
//! is a no-op unless the process opts in via environment knobs (mirroring
//! the `DFT_THREADS` convention):
//!
//! * `DFT_METRICS` — record counters and timer histograms; snapshot them
//!   with [`MetricsReport::capture`] and render via
//!   [`MetricsReport::to_text`] (a stage-timing table) or
//!   [`MetricsReport::to_json`].
//! * `DFT_TRACE` — additionally print every finished [`span`] to stderr
//!   (`[dft-trace] stage.schedule 12.3 µs`), indented by nesting depth.
//!
//! With neither knob set, every instrumentation call is one relaxed atomic
//! load and a branch — cheap enough to leave in release hot paths.
//!
//! Instrumentation sites use a `static` [`Counter`] handle (interned once,
//! then lock-free) for hot counters, [`span`] for scoped timings, and the
//! string-keyed [`counter_add`] / [`observe_duration`] for dynamically
//! named series such as per-testcase wall times.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of power-of-16 (ns) histogram buckets per timer.
pub const HISTOGRAM_BUCKETS: usize = 16;

// ---------------------------------------------------------------- gating

struct Flags {
    metrics: AtomicBool,
    trace: AtomicBool,
}

fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

fn flags() -> &'static Flags {
    static FLAGS: OnceLock<Flags> = OnceLock::new();
    FLAGS.get_or_init(|| Flags {
        metrics: AtomicBool::new(env_flag("DFT_METRICS")),
        trace: AtomicBool::new(env_flag("DFT_TRACE")),
    })
}

/// Whether metric recording is active (`DFT_METRICS`, or an explicit
/// [`set_metrics_enabled`] override; `DFT_TRACE` implies recording too,
/// since spans need somewhere to measure from).
pub fn metrics_enabled() -> bool {
    let f = flags();
    f.metrics.load(Ordering::Relaxed) || f.trace.load(Ordering::Relaxed)
}

/// Whether span tracing to stderr is active (`DFT_TRACE`).
pub fn trace_enabled() -> bool {
    flags().trace.load(Ordering::Relaxed)
}

/// Programmatic override of the `DFT_METRICS` knob (tests, embedders).
pub fn set_metrics_enabled(on: bool) {
    flags().metrics.store(on, Ordering::Relaxed);
}

/// Programmatic override of the `DFT_TRACE` knob (tests, embedders).
pub fn set_trace_enabled(on: bool) {
    flags().trace.store(on, Ordering::Relaxed);
}

// -------------------------------------------------------------- registry

struct TimerCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl TimerCell {
    fn new() -> TimerCell {
        TimerCell {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Bucket index for a duration: log16(ns), i.e. bucket `i` holds
/// `[16^i, 16^(i+1))` ns — 16 buckets span 1 ns to ~18 000 s.
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    (((63 - ns.leading_zeros()) / 4) as usize).min(HISTOGRAM_BUCKETS - 1)
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    timers: Mutex<BTreeMap<String, Arc<TimerCell>>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(Registry::default)
}

/// Recovers a poisoned registry guard: the maps are only ever mutated by
/// inserting interned entries (never left torn), so a panic elsewhere while
/// holding the lock cannot corrupt them — recording must keep working in
/// panic-isolating embedders instead of cascading the poison.
fn recover<'a, T>(
    r: std::sync::LockResult<std::sync::MutexGuard<'a, T>>,
) -> std::sync::MutexGuard<'a, T> {
    r.unwrap_or_else(|p| p.into_inner())
}

fn intern_counter(name: &str) -> Arc<AtomicU64> {
    let mut map = recover(registry().counters.lock());
    map.entry(name.to_owned()).or_default().clone()
}

fn intern_timer(name: &str) -> Arc<TimerCell> {
    let mut map = recover(registry().timers.lock());
    map.entry(name.to_owned())
        .or_insert_with(|| Arc::new(TimerCell::new()))
        .clone()
}

/// Zeroes every registered counter and timer (entries stay registered, so
/// `static` [`Counter`] handles remain valid). Intended for tests.
pub fn reset() {
    for c in recover(registry().counters.lock()).values() {
        c.store(0, Ordering::Relaxed);
    }
    for t in recover(registry().timers.lock()).values() {
        t.zero();
    }
}

// -------------------------------------------------------------- counters

/// A named monotonic counter with a site-local interned cell: after the
/// first [`Counter::add`], increments are a single lock-free `fetch_add`.
///
/// ```
/// static FIRINGS: obs::Counter = obs::Counter::new("schedule.firings");
/// obs::set_metrics_enabled(true);
/// FIRINGS.add(3);
/// assert!(obs::MetricsReport::capture().counter("schedule.firings") >= 3);
/// ```
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// Declares a counter handle (usually in a `static`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `delta`; no-op while metrics are disabled.
    pub fn add(&self, delta: u64) {
        if !metrics_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| intern_counter(self.name))
            .fetch_add(delta, Ordering::Relaxed);
    }
}

/// Adds `delta` to the counter named `name` (string-keyed; use for
/// dynamically named series, [`Counter`] for hot static sites).
pub fn counter_add(name: &str, delta: u64) {
    if !metrics_enabled() {
        return;
    }
    intern_counter(name).fetch_add(delta, Ordering::Relaxed);
}

// ---------------------------------------------------------------- timers

/// Records one observation of `d` under the timer named `name`.
pub fn observe_duration(name: &str, d: Duration) {
    if !metrics_enabled() {
        return;
    }
    intern_timer(name).observe(saturating_ns(d));
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    static TRACE_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A scoped timer started by [`span`]; records its elapsed time into the
/// histogram timer of the same name on drop, and prints a trace line when
/// `DFT_TRACE` is set.
pub struct SpanTimer {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a scoped timer. While metrics are disabled this costs one atomic
/// load and returns an inert guard.
pub fn span(name: &'static str) -> SpanTimer {
    if !metrics_enabled() {
        return SpanTimer { name, start: None };
    }
    if trace_enabled() {
        TRACE_DEPTH.with(|d| d.set(d.get() + 1));
    }
    SpanTimer {
        name,
        start: Some(Instant::now()),
    }
}

/// Runs `f` inside a [`span`] named `name`.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = saturating_ns(start.elapsed());
        intern_timer(self.name).observe(ns);
        if trace_enabled() {
            let depth = TRACE_DEPTH.with(|d| {
                let v = d.get();
                d.set(v.saturating_sub(1));
                v.saturating_sub(1)
            });
            eprintln!(
                "[dft-trace] {:indent$}{} {}",
                "",
                self.name,
                format_ns(ns),
                indent = depth * 2
            );
        }
    }
}

// ---------------------------------------------------------------- report

/// Immutable snapshot of one timer's statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub total_ns: u64,
    /// Smallest observation (0 when `count == 0`).
    pub min_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
    /// log16(ns) histogram: bucket `i` counts observations in
    /// `[16^i, 16^(i+1))` ns.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl TimerStat {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A snapshot of every counter and timer recorded so far.
///
/// The schema is stable: `counters` maps name → monotonic value;
/// `timers` maps name → `{count, total_ns, min_ns, max_ns, buckets[16]}`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Timer statistics by name.
    pub timers: BTreeMap<String, TimerStat>,
}

impl MetricsReport {
    /// Snapshots the global registry. Entries that never recorded anything
    /// (e.g. after [`reset`]) are omitted.
    pub fn capture() -> MetricsReport {
        let counters = recover(registry().counters.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .filter(|&(_, v)| v != 0)
            .collect();
        let timers = recover(registry().timers.lock())
            .iter()
            .filter_map(|(k, t)| {
                let count = t.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let min = t.min_ns.load(Ordering::Relaxed);
                Some((
                    k.clone(),
                    TimerStat {
                        count,
                        total_ns: t.total_ns.load(Ordering::Relaxed),
                        min_ns: if min == u64::MAX { 0 } else { min },
                        max_ns: t.max_ns.load(Ordering::Relaxed),
                        buckets: std::array::from_fn(|i| t.buckets[i].load(Ordering::Relaxed)),
                    },
                ))
            })
            .collect();
        MetricsReport { counters, timers }
    }

    /// Whether nothing was recorded (knobs off, or nothing ran).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty()
    }

    /// What happened **between** `earlier` and `self` (two snapshots of
    /// the same process-global registry, `earlier` taken first): counters
    /// and timer counts/totals/histograms subtract entry-wise, with
    /// all-zero entries dropped. This is how a multi-request embedder
    /// scopes the global registry to one request — snapshot before,
    /// snapshot after, report the delta — without cross-request
    /// contamination.
    ///
    /// `min_ns`/`max_ns` are not derivable from two cumulative snapshots;
    /// the delta keeps the later snapshot's values, so treat them as
    /// process-lifetime extremes, not per-window ones.
    pub fn delta(&self, earlier: &MetricsReport) -> MetricsReport {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .filter(|&(_, v)| v != 0)
            .collect();
        let timers = self
            .timers
            .iter()
            .filter_map(|(k, t)| {
                let base = earlier.timer(k);
                let count = t.count.saturating_sub(base.map_or(0, |b| b.count));
                if count == 0 {
                    return None;
                }
                Some((
                    k.clone(),
                    TimerStat {
                        count,
                        total_ns: t.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                        min_ns: t.min_ns,
                        max_ns: t.max_ns,
                        buckets: std::array::from_fn(|i| {
                            t.buckets[i].saturating_sub(base.map_or(0, |b| b.buckets[i]))
                        }),
                    },
                ))
            })
            .collect();
        MetricsReport { counters, timers }
    }

    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The statistics of timer `name`, if it recorded anything.
    pub fn timer(&self, name: &str) -> Option<&TimerStat> {
        self.timers.get(name)
    }

    /// Renders a human-readable stage-timing table plus counter list.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.timers.is_empty() {
            let width = self
                .timers
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0)
                .max(5);
            let _ = writeln!(
                out,
                "{:<width$} {:>8} {:>11} {:>11} {:>11} {:>11}",
                "timer", "calls", "total", "mean", "min", "max"
            );
            for (name, t) in &self.timers {
                let _ = writeln!(
                    out,
                    "{:<width$} {:>8} {:>11} {:>11} {:>11} {:>11}",
                    name,
                    t.count,
                    format_ns(t.total_ns),
                    format_ns(t.mean_ns()),
                    format_ns(t.min_ns),
                    format_ns(t.max_ns)
                );
            }
        }
        if !self.counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let width = self
                .counters
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0)
                .max(7);
            let _ = writeln!(out, "{:<width$} {:>12}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<width$} {v:>12}");
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded — set DFT_METRICS=1)\n");
        }
        out
    }

    /// Serialises the snapshot as a JSON object (hand-rolled; names only
    /// ever contain identifier-ish characters, but quotes are escaped
    /// defensively anyway).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), v);
        }
        out.push_str("},\"timers\":{");
        for (i, (k, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[",
                json_string(k),
                t.count,
                t.total_ns,
                t.min_ns,
                t.max_ns
            );
            for (j, b) in t.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a nanosecond count with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so the tests in this module share it;
    /// each locks this mutex, resets, and asserts only on its own names.
    fn with_clean_registry<R>(f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let was_metrics = metrics_enabled();
        let was_trace = trace_enabled();
        set_metrics_enabled(true);
        reset();
        let r = f();
        set_metrics_enabled(was_metrics);
        set_trace_enabled(was_trace);
        r
    }

    #[test]
    fn disabled_instrumentation_records_nothing() {
        with_clean_registry(|| {
            set_metrics_enabled(false);
            set_trace_enabled(false);
            counter_add("test.disabled", 5);
            observe_duration("test.disabled_timer", Duration::from_micros(3));
            let _span = span("test.disabled_span");
            drop(_span);
            let r = MetricsReport::capture();
            assert_eq!(r.counter("test.disabled"), 0);
            assert!(r.timer("test.disabled_timer").is_none());
            assert!(r.timer("test.disabled_span").is_none());
        });
    }

    #[test]
    fn counters_accumulate_and_reset_zeroes() {
        with_clean_registry(|| {
            static C: Counter = Counter::new("test.counter");
            C.add(2);
            C.add(3);
            counter_add("test.counter", 1);
            assert_eq!(MetricsReport::capture().counter("test.counter"), 6);
            reset();
            assert_eq!(MetricsReport::capture().counter("test.counter"), 0);
            C.add(4); // the static handle survives reset
            assert_eq!(MetricsReport::capture().counter("test.counter"), 4);
        });
    }

    #[test]
    fn timer_stats_track_min_max_total() {
        with_clean_registry(|| {
            observe_duration("test.t", Duration::from_nanos(100));
            observe_duration("test.t", Duration::from_nanos(300));
            let r = MetricsReport::capture();
            let t = r.timer("test.t").expect("recorded");
            assert_eq!(t.count, 2);
            assert_eq!(t.total_ns, 400);
            assert_eq!(t.min_ns, 100);
            assert_eq!(t.max_ns, 300);
            assert_eq!(t.mean_ns(), 200);
            assert_eq!(t.buckets.iter().sum::<u64>(), 2);
        });
    }

    #[test]
    fn span_records_under_its_name() {
        with_clean_registry(|| {
            {
                let _s = span("test.span");
                std::hint::black_box(0);
            }
            let r = MetricsReport::capture();
            assert_eq!(r.timer("test.span").expect("recorded").count, 1);
        });
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(15), 0);
        assert_eq!(bucket_of(16), 1);
        assert_eq!(bucket_of(255), 1);
        assert_eq!(bucket_of(256), 2);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn text_and_json_render() {
        with_clean_registry(|| {
            counter_add("test.render_counter", 7);
            observe_duration("test.render_timer", Duration::from_micros(5));
            let r = MetricsReport::capture();
            let text = r.to_text();
            assert!(text.contains("test.render_counter"));
            assert!(text.contains("test.render_timer"));
            assert!(text.contains('7'));
            let json = r.to_json();
            assert!(json.contains("\"test.render_counter\":7"));
            assert!(json.contains("\"count\":1"));
            assert!(json.contains("\"buckets\":["));
            assert!(json.starts_with('{') && json.ends_with('}'));
        });
    }

    #[test]
    fn empty_report_renders_hint() {
        let r = MetricsReport::default();
        assert!(r.is_empty());
        assert!(r.to_text().contains("DFT_METRICS"));
        assert_eq!(r.to_json(), "{\"counters\":{},\"timers\":{}}");
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("\n"), "\"\\u000a\"");
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(1_500), "1.5 µs");
        assert_eq!(format_ns(2_500_000), "2.5 ms");
        assert_eq!(format_ns(3_210_000_000), "3.21 s");
    }

    #[test]
    fn delta_isolates_one_window() {
        with_clean_registry(|| {
            counter_add("test.delta_c", 5);
            observe_duration("test.delta_t", Duration::from_micros(10));
            let before = MetricsReport::capture();
            counter_add("test.delta_c", 7);
            counter_add("test.delta_fresh", 1);
            observe_duration("test.delta_t", Duration::from_micros(30));
            let after = MetricsReport::capture();
            let d = after.delta(&before);
            assert_eq!(d.counter("test.delta_c"), 7);
            assert_eq!(d.counter("test.delta_fresh"), 1);
            let t = d.timer("test.delta_t").expect("timer advanced");
            assert_eq!(t.count, 1);
            assert_eq!(t.total_ns, 30_000);
            assert_eq!(t.buckets.iter().sum::<u64>(), 1);
            // An idle window deltas to empty.
            assert!(after.delta(&after).is_empty());
        });
    }

    #[test]
    fn delta_drops_untouched_entries() {
        with_clean_registry(|| {
            counter_add("test.deltad_idle", 3);
            observe_duration("test.deltad_idle_t", Duration::from_micros(1));
            let before = MetricsReport::capture();
            counter_add("test.deltad_hot", 2);
            let d = MetricsReport::capture().delta(&before);
            assert_eq!(d.counter("test.deltad_hot"), 2);
            assert_eq!(d.counter("test.deltad_idle"), 0);
            assert!(!d.counters.contains_key("test.deltad_idle"));
            assert!(d.timer("test.deltad_idle_t").is_none());
        });
    }

    #[test]
    fn time_runs_closure_and_returns_value() {
        with_clean_registry(|| {
            let v = time("test.time_fn", || 41 + 1);
            assert_eq!(v, 42);
            assert_eq!(
                MetricsReport::capture()
                    .timer("test.time_fn")
                    .expect("recorded")
                    .count,
                1
            );
        });
    }
}

//! Control-flow graph construction from a minic [`Function`].
//!
//! Each executable statement becomes one node (control statements contribute
//! a node for their condition; `for` headers contribute separate init/step
//! nodes). Two synthetic nodes, entry and exit, bracket the graph.

use std::fmt;
use std::sync::OnceLock;

use minic::{Function, Stmt, StmtId, StmtKind};

use crate::bitset::BitSet;
use crate::defuse::{stmt_def_use, StmtDefUse};

/// Index of a node within its [`Cfg`].
pub type NodeId = usize;

/// What a CFG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic function entry.
    Entry,
    /// Synthetic function exit.
    Exit,
    /// A real statement (or a `for` header part).
    Stmt,
}

/// One node of the control-flow graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index within the CFG.
    pub id: NodeId,
    /// Entry, exit or statement.
    pub kind: NodeKind,
    /// The originating statement, for [`NodeKind::Stmt`] nodes.
    pub stmt: Option<StmtId>,
    /// Source line (0 for entry/exit).
    pub line: u32,
    /// Defs and uses performed by this node.
    pub def_use: StmtDefUse,
    /// One-line rendering for debugging and reports.
    pub label: String,
}

/// A control-flow graph of one `processing()` function.
#[derive(Debug)]
pub struct Cfg {
    /// The TDF model (class) name the function belongs to.
    pub model: String,
    nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    entry: NodeId,
    exit: NodeId,
    /// Transitive closure (≥ 1 edge), one row per node; built lazily by
    /// [`Cfg::reaches`] and shared across threads.
    closure: OnceLock<Vec<BitSet>>,
}

impl Clone for Cfg {
    /// The closure cache is dropped on clone: `looped()` clones and then
    /// adds an edge, and a carried-over cache would go stale.
    fn clone(&self) -> Cfg {
        Cfg {
            model: self.model.clone(),
            nodes: self.nodes.clone(),
            succs: self.succs.clone(),
            preds: self.preds.clone(),
            entry: self.entry,
            exit: self.exit,
            closure: OnceLock::new(),
        }
    }
}

impl Cfg {
    /// Builds the CFG of `f`.
    ///
    /// ```
    /// let tu = minic::parse("void M::processing() { if (a) { x = 1; } y = 2; }").unwrap();
    /// let cfg = dataflow::Cfg::from_function(&tu.functions[0]);
    /// // entry, if, x=1, y=2, exit
    /// assert_eq!(cfg.len(), 5);
    /// ```
    pub fn from_function(f: &Function) -> Cfg {
        let mut b = Builder::new(f.model.clone());
        let entry = b.add_synthetic(NodeKind::Entry, "<entry>");
        let body_exits = b.lower_block(&f.body.stmts, vec![entry]);
        let exit = b.add_synthetic(NodeKind::Exit, "<exit>");
        for p in body_exits {
            b.edge(p, exit);
        }
        for r in std::mem::take(&mut b.returns) {
            b.edge(r, exit);
        }
        Cfg {
            model: b.model,
            nodes: b.nodes,
            succs: b.succs,
            preds: b.preds,
            entry,
            exit,
            closure: OnceLock::new(),
        }
    }

    /// The synthetic entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The synthetic exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of nodes (including entry/exit).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is trivial (never: there are always entry/exit).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All nodes in creation order (entry first, exit last).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Successor node ids of `id`.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id]
    }

    /// Predecessor node ids of `id`.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id]
    }

    /// The node representing statement `stmt`, if any.
    ///
    /// `for` headers map their init/step sub-statements to their own nodes.
    pub fn node_of_stmt(&self, stmt: StmtId) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.stmt == Some(stmt))
    }

    /// Ids of all statement nodes, in creation order.
    pub fn stmt_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Stmt)
            .map(|n| n.id)
    }

    /// The set of nodes reachable from `from` by following ≥ `min_steps`
    /// edges (use `min_steps = 1` to exclude `from` itself unless it sits on
    /// a cycle).
    pub fn reachable_from(&self, from: NodeId, min_steps: usize) -> BitSet {
        let mut seen = BitSet::new(self.len());
        let mut work: Vec<NodeId> = if min_steps == 0 {
            vec![from]
        } else {
            self.succs[from].clone()
        };
        while let Some(n) = work.pop() {
            if seen.insert(n) {
                work.extend(self.succs[n].iter().copied());
            }
        }
        seen
    }

    /// The cached transitive-closure row of `from`: every node reachable by
    /// following ≥ 1 edge (`from` itself included only when it lies on a
    /// cycle). Equivalent to `reachable_from(from, 1)` but computed once for
    /// the whole graph and then answered by lookup, which turns the
    /// O(pairs × defs × E) repeated BFS of du-path classification into
    /// O(pairs × defs) bit tests.
    pub fn reaches(&self, from: NodeId) -> &BitSet {
        if obs::metrics_enabled() {
            static HITS: obs::Counter = obs::Counter::new("cfg.reach_cache.hit");
            static MISSES: obs::Counter = obs::Counter::new("cfg.reach_cache.miss");
            if self.closure.get().is_some() {
                HITS.add(1);
            } else {
                MISSES.add(1);
            }
        }
        &self.closure()[from]
    }

    fn closure(&self) -> &[BitSet] {
        self.closure.get_or_init(|| {
            let n = self.len();
            let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
            // Iterate row[v] = ∪_{s ∈ succ(v)} ({s} ∪ row[s]) to fixpoint.
            // Postorder (successors before predecessors) settles acyclic
            // regions in one sweep; back edges need the extra rounds.
            let mut order = self.reverse_postorder();
            order.reverse();
            if order.len() < n {
                // reverse_postorder only walks nodes reachable from entry;
                // dead code (e.g. after an unconditional return) still gets
                // a row.
                let mut covered = BitSet::new(n);
                covered.extend(order.iter().copied());
                order.extend((0..n).filter(|&v| !covered.contains(v)));
            }
            loop {
                let mut changed = false;
                for &v in &order {
                    let mut acc = BitSet::new(n);
                    for &s in &self.succs[v] {
                        acc.insert(s);
                        acc.union_with(&rows[s]);
                    }
                    changed |= rows[v].union_with(&acc);
                }
                if !changed {
                    break;
                }
            }
            rows
        })
    }

    /// Reverse postorder over the graph starting at entry (a good iteration
    /// order for forward dataflow problems).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut visited = BitSet::new(self.len());
        let mut post = Vec::with_capacity(self.len());
        // Iterative DFS with an explicit stack of (node, next-successor-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        visited.insert(self.entry);
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succs[n].len() {
                let s = self.succs[n][*i];
                *i += 1;
                if visited.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                post.push(n);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// A copy of this CFG with an extra exit→entry edge, modelling the
    /// periodic re-activation of a TDF `processing()` function. Member
    /// variables persist across activations, so their def-use flows are
    /// computed on this looped graph.
    pub fn looped(&self) -> Cfg {
        let mut c = self.clone();
        if !c.succs[c.exit].contains(&c.entry) {
            c.succs[c.exit].push(c.entry);
            c.preds[c.entry].push(c.exit);
        }
        c
    }

    /// Renders the CFG in a `dot`-like textual form (for debugging).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&format!("n{}: {}\n", n.id, n.label));
            for s in &self.succs[n.id] {
                out.push_str(&format!("  -> n{s}\n"));
            }
        }
        out
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

struct LoopCtx {
    continue_target: NodeId,
    breaks: Vec<NodeId>,
}

struct Builder {
    model: String,
    nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    loops: Vec<LoopCtx>,
    returns: Vec<NodeId>,
}

impl Builder {
    fn new(model: String) -> Self {
        Builder {
            model,
            nodes: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            loops: Vec::new(),
            returns: Vec::new(),
        }
    }

    fn add_synthetic(&mut self, kind: NodeKind, label: &str) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            kind,
            stmt: None,
            line: 0,
            def_use: StmtDefUse::default(),
            label: label.to_owned(),
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn add_stmt(&mut self, stmt: &Stmt, label: String) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            kind: NodeKind::Stmt,
            stmt: Some(stmt.id),
            line: stmt.span.line(),
            def_use: stmt_def_use(stmt),
            label,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    fn connect_all(&mut self, preds: &[NodeId], to: NodeId) {
        for &p in preds {
            self.edge(p, to);
        }
    }

    /// Lowers `stmts` with incoming edges from `preds`; returns the dangling
    /// exits (nodes whose control continues after the block).
    fn lower_block(&mut self, stmts: &[Stmt], mut preds: Vec<NodeId>) -> Vec<NodeId> {
        for s in stmts {
            preds = self.lower_stmt(s, preds);
        }
        dedup(preds)
    }

    fn lower_stmt(&mut self, s: &Stmt, preds: Vec<NodeId>) -> Vec<NodeId> {
        match &s.kind {
            StmtKind::Decl { .. }
            | StmtKind::Assign { .. }
            | StmtKind::Write { .. }
            | StmtKind::Expr(_) => {
                let n = self.add_stmt(s, minic::pretty_stmt(s));
                self.connect_all(&preds, n);
                vec![n]
            }
            StmtKind::Return => {
                let n = self.add_stmt(s, "return;".into());
                self.connect_all(&preds, n);
                self.returns.push(n);
                Vec::new()
            }
            StmtKind::Break => {
                let n = self.add_stmt(s, "break;".into());
                self.connect_all(&preds, n);
                if let Some(l) = self.loops.last_mut() {
                    l.breaks.push(n);
                }
                Vec::new()
            }
            StmtKind::Continue => {
                let n = self.add_stmt(s, "continue;".into());
                self.connect_all(&preds, n);
                let target = self.loops.last().map(|l| l.continue_target);
                if let Some(t) = target {
                    self.edge(n, t);
                }
                Vec::new()
            }
            StmtKind::Block(b) => self.lower_block(&b.stmts, preds),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.add_stmt(s, format!("if ({})", minic::pretty_expr(cond)));
                self.connect_all(&preds, c);
                let mut exits = self.lower_block(&then_branch.stmts, vec![c]);
                match else_branch {
                    Some(e) => {
                        exits.extend(self.lower_block(&e.stmts, vec![c]));
                    }
                    None => exits.push(c),
                }
                dedup(exits)
            }
            StmtKind::While { cond, body } => {
                let c = self.add_stmt(s, format!("while ({})", minic::pretty_expr(cond)));
                self.connect_all(&preds, c);
                self.loops.push(LoopCtx {
                    continue_target: c,
                    breaks: Vec::new(),
                });
                let body_exits = self.lower_block(&body.stmts, vec![c]);
                self.connect_all(&body_exits, c);
                let ctx = self.loops.pop().expect("loop context pushed above");
                let mut exits = vec![c];
                exits.extend(ctx.breaks);
                dedup(exits)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut preds = preds;
                if let Some(i) = init {
                    preds = self.lower_stmt(i, preds);
                }
                let c = self.add_stmt(
                    s,
                    format!(
                        "for (; {};)",
                        cond.as_ref().map(minic::pretty_expr).unwrap_or_default()
                    ),
                );
                self.connect_all(&preds, c);
                // The step node (if any) is created before the body so that
                // `continue` can target it.
                let step_node = step.as_ref().map(|st| {
                    let n = self.add_stmt(st, minic::pretty_stmt(st));
                    self.edge(n, c);
                    n
                });
                self.loops.push(LoopCtx {
                    continue_target: step_node.unwrap_or(c),
                    breaks: Vec::new(),
                });
                let body_exits = self.lower_block(&body.stmts, vec![c]);
                let back_target = step_node.unwrap_or(c);
                self.connect_all(&body_exits, back_target);
                let ctx = self.loops.pop().expect("loop context pushed above");
                let mut exits = Vec::new();
                if cond.is_some() {
                    exits.push(c);
                }
                exits.extend(ctx.breaks);
                dedup(exits)
            }
        }
    }
}

fn dedup(mut v: Vec<NodeId>) -> Vec<NodeId> {
    let mut seen = Vec::new();
    v.retain(|x| {
        if seen.contains(x) {
            false
        } else {
            seen.push(*x);
            true
        }
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("void M::processing() {{ {body} }}");
        let tu = parse(&src).unwrap();
        Cfg::from_function(&tu.functions[0])
    }

    #[test]
    fn straight_line_chain() {
        let cfg = cfg_of("x = 1; y = x; z = y;");
        assert_eq!(cfg.len(), 5);
        // entry -> x -> y -> z -> exit
        let mut n = cfg.entry();
        for _ in 0..4 {
            assert_eq!(cfg.succs(n).len(), 1);
            n = cfg.succs(n)[0];
        }
        assert_eq!(n, cfg.exit());
    }

    #[test]
    fn if_without_else_joins() {
        let cfg = cfg_of("if (a) { x = 1; } y = 2;");
        // entry, if, x=1, y=2, exit
        assert_eq!(cfg.len(), 5);
        let if_node = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("if"))
            .unwrap()
            .id;
        assert_eq!(cfg.succs(if_node).len(), 2, "then-branch and fallthrough");
        let y_node = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("y"))
            .unwrap()
            .id;
        assert_eq!(cfg.preds(y_node).len(), 2, "join of both branches");
    }

    #[test]
    fn if_with_else_has_no_direct_fallthrough() {
        let cfg = cfg_of("if (a) { x = 1; } else { x = 2; } y = x;");
        let if_node = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("if"))
            .unwrap()
            .id;
        let y_node = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("y"))
            .unwrap()
            .id;
        assert!(
            !cfg.succs(if_node).contains(&y_node),
            "cond must not jump straight to join when else exists"
        );
        assert_eq!(cfg.preds(y_node).len(), 2);
    }

    #[test]
    fn while_loop_back_edge() {
        let cfg = cfg_of("while (i < 3) { i = i + 1; } done = 1;");
        let w = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("while"))
            .unwrap()
            .id;
        let body = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("i ="))
            .unwrap()
            .id;
        assert!(cfg.succs(body).contains(&w), "back edge body -> cond");
        assert_eq!(cfg.succs(w).len(), 2, "into body and past loop");
    }

    #[test]
    fn for_loop_structure() {
        let cfg = cfg_of("for (int i = 0; i < 3; i++) { s += i; } t = s;");
        let init = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("int i"))
            .unwrap()
            .id;
        let cond = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("for"))
            .unwrap()
            .id;
        let step = cfg
            .nodes()
            .iter()
            .find(|n| n.label.contains("i += 1"))
            .unwrap()
            .id;
        let body = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("s +="))
            .unwrap()
            .id;
        assert!(cfg.succs(init).contains(&cond));
        assert!(cfg.succs(cond).contains(&body));
        assert!(cfg.succs(body).contains(&step));
        assert!(cfg.succs(step).contains(&cond));
    }

    #[test]
    fn break_exits_loop_continue_reenters() {
        let cfg = cfg_of("while (a) { if (b) break; else continue; } z = 1;");
        let brk = cfg.nodes().iter().find(|n| n.label == "break;").unwrap().id;
        let cont = cfg
            .nodes()
            .iter()
            .find(|n| n.label == "continue;")
            .unwrap()
            .id;
        let w = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("while"))
            .unwrap()
            .id;
        let z = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("z"))
            .unwrap()
            .id;
        assert!(cfg.succs(cont).contains(&w));
        assert!(cfg.succs(brk).contains(&z));
    }

    #[test]
    fn return_goes_to_exit() {
        let cfg = cfg_of("if (a) return; x = 1;");
        let ret = cfg
            .nodes()
            .iter()
            .find(|n| n.label == "return;")
            .unwrap()
            .id;
        assert_eq!(cfg.succs(ret), &[cfg.exit()]);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let cfg = cfg_of("return; x = 1;");
        let x = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("x"))
            .unwrap()
            .id;
        assert!(cfg.preds(x).is_empty());
        assert!(!cfg.reachable_from(cfg.entry(), 0).contains(x));
    }

    #[test]
    fn reachable_from_excludes_self_unless_cyclic() {
        let cfg = cfg_of("x = 1; y = 2;");
        let x = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("x"))
            .unwrap()
            .id;
        let r = cfg.reachable_from(x, 1);
        assert!(!r.contains(x), "acyclic node does not reach itself");
        let cfg2 = cfg_of("while (a) { x = 1; }");
        let x2 = cfg2
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("x"))
            .unwrap()
            .id;
        assert!(
            cfg2.reachable_from(x2, 1).contains(x2),
            "loop node reaches itself"
        );
    }

    #[test]
    fn reaches_agrees_with_bfs_on_every_node() {
        let bodies = [
            "x = 1; y = 2;",
            "if (a) { x = 1; } y = 2;",
            "while (i < 3) { i = i + 1; } done = 1;",
            "for (int i = 0; i < 3; i++) { s += i; } t = s;",
            "while (a) { if (b) break; else continue; } z = 1;",
            "return; x = 1;", // dead code: rows beyond reverse postorder
        ];
        for body in bodies {
            let plain = cfg_of(body);
            let looped = plain.looped();
            for cfg in [&plain, &looped] {
                for v in 0..cfg.len() {
                    assert_eq!(
                        cfg.reaches(v),
                        &cfg.reachable_from(v, 1),
                        "closure row of n{v} in {body:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn clone_rebuilds_closure_after_edge_insertion() {
        // looped() clones (dropping the cache) before adding exit->entry;
        // a stale cache would claim exit reaches nothing.
        let cfg = cfg_of("x = 1;");
        assert!(cfg.reaches(cfg.exit()).is_empty());
        let looped = cfg.looped();
        assert!(looped.reaches(looped.exit()).contains(looped.entry()));
    }

    #[test]
    fn reverse_postorder_starts_at_entry_covers_reachable() {
        let cfg = cfg_of("if (a) { x = 1; } else { y = 2; } z = 3;");
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry());
        assert_eq!(rpo.len(), cfg.len());
        // every edge u->v with v not a back edge target appears in order
        let pos: Vec<usize> = {
            let mut p = vec![0; cfg.len()];
            for (i, &n) in rpo.iter().enumerate() {
                p[n] = i;
            }
            p
        };
        let z = cfg
            .nodes()
            .iter()
            .find(|n| n.label.starts_with("z"))
            .unwrap()
            .id;
        for &p in cfg.preds(z) {
            assert!(pos[p] < pos[z]);
        }
    }

    #[test]
    fn node_of_stmt_finds_for_header_parts() {
        let src = "void M::processing() { for (int i = 0; i < 3; i++) { s += i; } }";
        let tu = parse(src).unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]);
        for (_, s) in tu.all_stmts() {
            assert!(
                cfg.node_of_stmt(s.id).is_some(),
                "stmt {:?} has a node",
                s.kind
            );
        }
    }

    #[test]
    fn to_text_mentions_all_nodes() {
        let cfg = cfg_of("x = 1;");
        let text = cfg.to_text();
        assert!(text.contains("<entry>"));
        assert!(text.contains("<exit>"));
        assert!(text.contains("x = 1;"));
        assert_eq!(format!("{cfg}"), text);
    }

    #[test]
    fn empty_function_is_entry_to_exit() {
        let cfg = cfg_of("");
        assert_eq!(cfg.len(), 2);
        assert_eq!(cfg.succs(cfg.entry()), &[cfg.exit()]);
        assert!(!cfg.is_empty());
    }
}

#[cfg(test)]
mod looped_tests {
    use super::*;
    use crate::reaching::ReachingDefs;
    use minic::parse;

    #[test]
    fn looped_adds_exactly_one_back_edge() {
        let tu = parse("void M::processing() { x = 1; }").unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]);
        let looped = cfg.looped();
        assert!(looped.succs(looped.exit()).contains(&looped.entry()));
        assert_eq!(looped.len(), cfg.len());
        // Idempotent: looping twice adds nothing.
        let twice = looped.looped();
        assert_eq!(
            twice.succs(twice.exit()).len(),
            looped.succs(looped.exit()).len()
        );
    }

    #[test]
    fn looped_cfg_carries_defs_across_activations() {
        // A member-style flow: def at the end reaches a use at the start
        // only around the activation loop.
        let tu = parse(
            "void M::processing() {\n\
                 y = m;\n\
                 m = x;\n\
             }",
        )
        .unwrap();
        let plain = Cfg::from_function(&tu.functions[0]);
        let rd_plain = ReachingDefs::compute(&plain);
        assert!(
            !rd_plain.pairs().iter().any(|p| p.var == "m"),
            "no same-activation flow of m"
        );
        let looped = plain.looped();
        let rd_looped = ReachingDefs::compute(&looped);
        assert!(
            rd_looped.pairs().iter().any(|p| p.var == "m"),
            "wrapped flow m@3 -> m@2 found on the looped graph"
        );
    }
}

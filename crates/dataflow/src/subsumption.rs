//! Subsumption analysis over intra-model def-use pairs (Chaim et al.,
//! *A Data Flow Analysis Framework for Data Flow Subsumption*).
//!
//! Pair A **subsumes** pair B when every du-path exercising A also
//! exercises B: any execution that covers A is guaranteed to have covered
//! B, so B carries no extra information as a test requirement. The
//! matcher can then track only the *unsubsumed frontier* on its hot path
//! and reconstruct the subsumed bits afterwards.
//!
//! The check enumerates A's acyclic du-paths ([`enumerate_du_paths`],
//! which prunes dead subtrees through the [`Cfg::reaches`] closure cache)
//! and requires B to be exercised on every one of them — B's def node
//! strictly before B's use node, with no other definition of B's variable
//! in between — replaying the runtime matcher's last-definition pairing
//! on the static path. Soundness boundary, stated precisely:
//!
//! * On an acyclic per-activation CFG the enumeration is complete for
//!   *same-activation* windows, so the relation is exact for those.
//! * A def-use window can also span activations (the matcher pairs a use
//!   with the last def anywhere earlier in the event stream). A pair
//!   whose window can wrap the activation loop — its def reaches the
//!   activation exit *and* its use is upward-exposed from the entry — is
//!   therefore never allowed to subsume others ([`can_wrap_activation`]).
//! * Enumeration is budgeted: a pair whose path count hits `limit` might
//!   be truncated and conservatively subsumes nothing.
//!
//! Callers must still treat the relation as a *reduction heuristic*, not
//! a correctness oracle: fault-injected or truncated event logs can
//! exercise a subsuming pair while the log's record of the subsumed one
//! was dropped. Consumers that need exact raw coverage reconstruct it
//! dynamically (the `dft-core` matcher probes its seen-pair set for every
//! dropped association at finish time), which is exact on *any* log; the
//! static relation only chooses which rows leave the hot path.

use std::collections::HashMap;

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::dupath::enumerate_du_paths;
use crate::reaching::{DuPair, ReachingDefs};

/// Default per-pair budget for [`analyse_subsumption`]'s du-path
/// enumeration. A pair whose enumeration hits the budget may be
/// truncated, so it conservatively subsumes nothing.
pub const SUBSUMPTION_PATH_LIMIT: usize = 256;

/// The subsumption relation over one CFG's pair set, reduced to the
/// unsubsumed frontier. Indices are positions in the `pairs` slice handed
/// to [`analyse_subsumption`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsumptionGraph {
    /// `subsumes[i]` contains `j` iff every du-path exercising pair `i`
    /// also exercises pair `j`. Self-bits are set (trivially true).
    pub subsumes: Vec<BitSet>,
    /// Pairs kept for tracking: not strictly subsumed by any other pair,
    /// and the lowest-index representative of their mutual-subsumption
    /// class. Every index outside the frontier is subsumed by at least
    /// one frontier index (the relation is transitive).
    pub frontier: BitSet,
}

impl SubsumptionGraph {
    /// Indices outside the frontier (strictly subsumed, or non-canonical
    /// members of a mutual-subsumption class).
    pub fn dropped(&self) -> BitSet {
        let n = self.subsumes.len();
        let mut out = BitSet::new(n);
        for i in 0..n {
            if !self.frontier.contains(i) {
                out.insert(i);
            }
        }
        out
    }
}

/// Whether `pair`'s def-use window can wrap the activation loop: its def
/// reaches the CFG exit and its use is reachable backwards from the entry
/// without passing any definition of the variable. Such a pair has
/// runtime windows the per-activation path enumeration cannot see, so it
/// must not act as a subsumer.
pub fn can_wrap_activation(cfg: &Cfg, rd: &ReachingDefs, pair: &DuPair) -> bool {
    let escapes = rd
        .defs_reaching_exit(cfg, &pair.var)
        .iter()
        .any(|d| d.id == pair.def);
    if !escapes {
        return false;
    }
    // Backward search from the use, not expanding through any definition
    // of the variable: reaching the entry means some next-activation path
    // re-exposes the use to the previous activation's value.
    let def_nodes: Vec<_> = rd.defs_of(&pair.var).iter().map(|d| d.node).collect();
    let mut seen = vec![false; cfg.len()];
    let mut work: Vec<_> = cfg.preds(pair.use_node).to_vec();
    while let Some(n) = work.pop() {
        if seen[n] {
            continue;
        }
        seen[n] = true;
        if n == cfg.entry() {
            return true;
        }
        if def_nodes.contains(&n) {
            continue;
        }
        work.extend(cfg.preds(n).iter().copied());
    }
    false
}

/// Computes the subsumption relation over `pairs` (all from this `cfg` /
/// `rd`) and reduces it to the unsubsumed frontier. `limit` bounds the
/// du-path enumeration per pair (see [`SUBSUMPTION_PATH_LIMIT`]).
pub fn analyse_subsumption(
    cfg: &Cfg,
    rd: &ReachingDefs,
    pairs: &[DuPair],
    limit: usize,
) -> SubsumptionGraph {
    let n = pairs.len();

    // Per-node use index and per-pair def node, so each path is walked
    // once for all candidate subsumees together.
    let mut uses_at: Vec<Vec<usize>> = vec![Vec::new(); cfg.len()];
    for (j, p) in pairs.iter().enumerate() {
        uses_at[p.use_node].push(j);
    }
    let def_node_of: Vec<_> = pairs.iter().map(|p| rd.def(p.def).node).collect();

    let mut subsumes: Vec<BitSet> = Vec::with_capacity(n);
    for (i, pair) in pairs.iter().enumerate() {
        let only_self = |n: usize, i: usize| {
            let mut row = BitSet::new(n);
            row.insert(i);
            row
        };
        if can_wrap_activation(cfg, rd, pair) {
            // Windows invisible to the path enumeration: no claims.
            subsumes.push(only_self(n, i));
            continue;
        }
        let paths = enumerate_du_paths(cfg, rd, pair, limit);
        let du: Vec<_> = paths.iter().filter(|p| p.is_du_path).collect();
        if paths.len() >= limit || du.is_empty() {
            // Possibly truncated (or degenerate): claim nothing but self.
            subsumes.push(only_self(n, i));
            continue;
        }
        let mut acc = BitSet::new(n);
        for k in 0..n {
            acc.insert(k);
        }
        for path in du {
            acc.intersect_with(&exercised_on(
                cfg,
                pairs,
                &uses_at,
                &def_node_of,
                &path.nodes,
            ));
            if acc.len() <= 1 {
                break; // only the self-bit can survive
            }
        }
        acc.insert(i); // trivially on every own du-path
        subsumes.push(acc);
    }

    // Frontier: keep i unless some j strictly subsumes it, or it is a
    // non-canonical member of a mutual class (the lowest index is the
    // class representative). Transitivity guarantees every dropped index
    // stays subsumed by a surviving frontier index.
    let mut frontier = BitSet::new(n);
    for i in 0..n {
        let dropped = (0..n)
            .any(|j| j != i && subsumes[j].contains(i) && (!subsumes[i].contains(j) || j < i));
        if !dropped {
            frontier.insert(i);
        }
    }

    SubsumptionGraph { subsumes, frontier }
}

/// The set of pairs exercised on `path`, replaying the matcher's
/// last-definition pairing: walking the nodes in order, a pair fires at
/// its use node when the most recent definition of its variable on the
/// path is the pair's own def node (uses evaluate before the node's own
/// definitions, matching [`ReachingDefs::compute`]).
fn exercised_on(
    cfg: &Cfg,
    pairs: &[DuPair],
    uses_at: &[Vec<usize>],
    def_node_of: &[usize],
    path: &[usize],
) -> BitSet {
    let mut out = BitSet::new(pairs.len());
    let mut last_def: HashMap<&str, usize> = HashMap::new();
    for &node in path {
        for &j in &uses_at[node] {
            if last_def.get(pairs[j].var.as_str()) == Some(&def_node_of[j]) {
                out.insert(j);
            }
        }
        for d in &cfg.node(node).def_use.defs {
            last_def.insert(d.name.as_str(), node);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn analyse(body: &str) -> (Cfg, ReachingDefs) {
        let src = format!("void M::processing() {{ {body} }}");
        let tu = parse(&src).unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]);
        let rd = ReachingDefs::compute(&cfg);
        (cfg, rd)
    }

    fn graph(body: &str) -> (SubsumptionGraph, Vec<DuPair>) {
        let (cfg, rd) = analyse(body);
        let pairs: Vec<DuPair> = rd.pairs().to_vec();
        let g = analyse_subsumption(&cfg, &rd, &pairs, SUBSUMPTION_PATH_LIMIT);
        (g, pairs)
    }

    #[test]
    fn nested_window_is_subsumed() {
        // t = a; u = t; z = t; — the (t -> z) window runs through the
        // (t -> u) window, so exercising (t -> z) forces (t -> u).
        let (g, pairs) = graph("double t = a;\nu = t;\nz = t;");
        let tu = pairs.iter().position(|p| p.use_line == 2).unwrap();
        let tz = pairs.iter().position(|p| p.use_line == 3).unwrap();
        assert!(g.subsumes[tz].contains(tu), "z's window passes u's use");
        assert!(!g.subsumes[tu].contains(tz), "u's window ends before z");
        assert!(g.frontier.contains(tz));
        assert!(
            !g.frontier.contains(tu),
            "subsumed pair leaves the frontier"
        );
        assert!(g.dropped().contains(tu));
    }

    #[test]
    fn branch_pair_does_not_subsume_the_other_arm() {
        // Exercising (x=1 -> y=x) says nothing about (x=2 -> y=x).
        let (g, pairs) = graph("if (c) { x = 1; } else { x = 2; }\ny = x;");
        let xs: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.var == "x")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(xs.len(), 2);
        assert!(!g.subsumes[xs[0]].contains(xs[1]));
        assert!(!g.subsumes[xs[1]].contains(xs[0]));
        assert!(g.frontier.contains(xs[0]) && g.frontier.contains(xs[1]));
    }

    #[test]
    fn windows_outside_the_segment_are_not_claimed() {
        // t = a; if (c) { y = t; } z = t; — (t -> y)'s du-path ends at y
        // (z is outside the segment) and (t -> z) has a du-path skipping
        // the then-branch, so neither subsumes the other.
        let (g, pairs) = graph("double t = a;\nif (c) { y = t; }\nz = t;");
        let ty = pairs.iter().position(|p| p.use_line == 2).unwrap();
        let tz = pairs.iter().position(|p| p.use_line == 3).unwrap();
        assert!(!g.subsumes[ty].contains(tz), "du-path to y stops before z");
        assert!(!g.subsumes[tz].contains(ty), "the else path skips y");
        assert_eq!(g.frontier.len(), pairs.len());
    }

    #[test]
    fn mandatory_use_inside_a_guarded_window_is_subsumed() {
        // t = a; y = t; if (c) { z = t; } — every du-path of (t -> z)
        // passes y's use with t's def live, so (t -> z) subsumes (t -> y).
        let (g, pairs) = graph("double t = a;\ny = t;\nif (c) { z = t; }");
        let ty = pairs.iter().position(|p| p.use_line == 2).unwrap();
        let tz = pairs.iter().position(|p| p.use_line == 3).unwrap();
        assert!(g.subsumes[tz].contains(ty));
        assert!(!g.subsumes[ty].contains(tz));
        assert!(g.frontier.contains(tz));
        assert!(!g.frontier.contains(ty));
    }

    #[test]
    fn intervening_redefinition_blocks_subsumption() {
        // t = a; u = t; t = b; z = t; — the two t-windows are disjoint
        // segments: neither contains the other.
        let (g, pairs) = graph("double t = a;\nu = t;\nt = b;\nz = t;");
        let t1u = pairs
            .iter()
            .position(|p| p.var == "t" && p.use_line == 2)
            .unwrap();
        let t3z = pairs
            .iter()
            .position(|p| p.var == "t" && p.use_line == 4)
            .unwrap();
        assert!(!g.subsumes[t3z].contains(t1u), "line 2 precedes the window");
        assert!(!g.subsumes[t1u].contains(t3z), "u's window ends at line 2");
        assert!(g.frontier.contains(t1u) && g.frontier.contains(t3z));
    }

    #[test]
    fn every_dropped_pair_is_subsumed_by_a_frontier_pair() {
        for body in [
            "double t = a;\nu = t;\nz = t;",
            "double t = a;\ny = t;\nif (c) { z = t; }",
            "x = 1; if (c) { x = 2; } y = x;\nz = y;",
            "s = 0; while (c) { s = s + 1; } t = s;",
            "double t = a;\nu = t;\nt = b;\nz = t;",
        ] {
            let (g, pairs) = graph(body);
            for i in 0..pairs.len() {
                if g.frontier.contains(i) {
                    continue;
                }
                assert!(
                    (0..pairs.len()).any(|f| g.frontier.contains(f) && g.subsumes[f].contains(i)),
                    "dropped pair {i} uncovered in {body:?}"
                );
            }
        }
    }

    #[test]
    fn activation_wrapping_pairs_never_subsume() {
        // s's def reaches the exit and y's use is upward-exposed through
        // the else path, so the window can wrap to the next activation:
        // the pair is excluded as a subsumer.
        let (cfg, rd) = analyse("if (c) { s = 1; }\ny = s;\nz = s;");
        let pairs: Vec<DuPair> = rd.pairs().to_vec();
        let sy = pairs.iter().position(|p| p.use_line == 2).unwrap();
        let sz = pairs.iter().position(|p| p.use_line == 3).unwrap();
        assert!(can_wrap_activation(&cfg, &rd, &pairs[sy]));
        assert!(can_wrap_activation(&cfg, &rd, &pairs[sz]));
        let g = analyse_subsumption(&cfg, &rd, &pairs, SUBSUMPTION_PATH_LIMIT);
        // Within one activation (s -> z) would subsume (s -> y), but the
        // wrap guard forbids the claim.
        assert_eq!(g.subsumes[sz].len(), 1, "claims only itself");
        assert!(g.frontier.contains(sy) && g.frontier.contains(sz));
    }

    #[test]
    fn truncated_enumeration_subsumes_nothing() {
        let (cfg, rd) = analyse("double t = a;\nu = t;\nz = t;");
        let pairs: Vec<DuPair> = rd.pairs().to_vec();
        let g = analyse_subsumption(&cfg, &rd, &pairs, 1);
        for (i, row) in g.subsumes.iter().enumerate() {
            assert_eq!(row.len(), 1, "pair {i} claims only itself at limit 1");
        }
        assert_eq!(g.frontier.len(), pairs.len());
    }
}

//! A dense, fixed-capacity bit set used by the iterative dataflow solver.

use std::fmt;

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`, returning whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `i`, returning whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// `self |= other`; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// `self &= other`; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a &= b;
            changed |= *a != before;
        }
        changed
    }

    /// `self &= !other` (set difference in place).
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set with capacity `max + 1` from the items.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over set elements; see [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_intersect_report_change() {
        let mut a = BitSet::new(10);
        a.extend([1, 2, 3]);
        let mut b = BitSet::new(10);
        b.extend([3, 4]);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert!(!a.union_with(&b), "second union changes nothing");
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn subtract_removes() {
        let mut a = BitSet::new(8);
        a.extend([0, 1, 2, 3]);
        let mut b = BitSet::new(8);
        b.extend([1, 3]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn iter_across_word_boundaries() {
        let mut s = BitSet::new(200);
        for i in [0, 63, 64, 65, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 127, 128, 199]
        );
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [5usize, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert!(s.contains(9));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(5);
        assert!(s.is_empty());
        s.insert(4);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_beyond_capacity_panics() {
        BitSet::new(3).insert(3);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = BitSet::new(3);
        a.union_with(&BitSet::new(4));
    }

    #[test]
    fn zero_capacity_set_works() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }
}

//! # dataflow — control-flow graphs and data-flow analyses over minic ASTs
//!
//! This crate provides the *static analysis machinery* underneath the data
//! flow testing approach of the DATE 2019 paper: per-statement def/use
//! extraction, CFG construction, a generic GEN/KILL iterative solver,
//! reaching definitions with def-use chains, du-path facts (does every
//! static path between a def and a use avoid redefinition?), dominators and
//! liveness.
//!
//! The TDF-specific *classification* of associations (Strong/Firm/PFirm/
//! PWeak) lives in `dft-core`; this crate is deliberately unaware of ports,
//! clusters or bindings, so it can be reused for plain software DFT.
//!
//! ## Example
//!
//! ```
//! use dataflow::{Cfg, ReachingDefs, path_facts};
//!
//! let tu = minic::parse(
//!     "void TS::processing() {\n\
//!          out = 0;\n\
//!          if (hot) { out = t; }\n\
//!          op_y = out;\n\
//!      }",
//! )?;
//! let cfg = Cfg::from_function(&tu.functions[0]);
//! let rd = ReachingDefs::compute(&cfg);
//! // Two defs of `out` reach the use on line 4 — and the def on line 2 has
//! // a non-du-path (through the line-3 redefinition): the "Firm" shape.
//! let pairs: Vec<_> = rd.pairs().iter().filter(|p| p.var == "out").collect();
//! assert_eq!(pairs.len(), 2);
//! assert!(pairs
//!     .iter()
//!     .any(|p| path_facts(&cfg, &rd, p).has_non_du_path));
//! # Ok::<(), minic::MinicError>(())
//! ```

#![warn(missing_docs)]

mod bitset;
mod cfg;
mod defuse;
mod dominators;
mod dupath;
mod framework;
mod liveness;
mod reaching;
mod subsumption;

pub use bitset::BitSet;
pub use cfg::{Cfg, Node, NodeId, NodeKind};
pub use defuse::{stmt_def_use, StmtDefUse, VarAccess};
pub use dominators::Dominators;
pub use dupath::{enumerate_du_paths, path_facts, path_facts_uncached, PathFacts, StaticPath};
pub use framework::{solve, Direction, Meet, Solution, Transfer};
pub use liveness::Liveness;
pub use reaching::{DefId, DefSite, DuPair, ReachingDefs};
pub use subsumption::{
    analyse_subsumption, can_wrap_activation, SubsumptionGraph, SUBSUMPTION_PATH_LIMIT,
};

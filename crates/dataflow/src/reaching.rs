//! Reaching definitions and intra-procedural def-use chains.

use std::collections::HashMap;

use minic::StmtId;

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use crate::framework::{solve, Direction, Meet, Solution, Transfer};

/// Identifier of a definition site (dense per [`ReachingDefs`]).
pub type DefId = usize;

/// One definition site: statement `stmt` at `node` defines `var`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefSite {
    /// Dense id of this definition.
    pub id: DefId,
    /// The defined variable (local, member or port).
    pub var: String,
    /// CFG node performing the definition.
    pub node: NodeId,
    /// Originating statement.
    pub stmt: StmtId,
    /// Source line of the definition.
    pub line: u32,
}

/// An intra-model def-use pair: definition `def` reaches a use of the same
/// variable at `use_node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuPair {
    /// The definition site.
    pub def: DefId,
    /// CFG node using the variable.
    pub use_node: NodeId,
    /// Statement using the variable.
    pub use_stmt: StmtId,
    /// Source line of the use.
    pub use_line: u32,
    /// The variable name.
    pub var: String,
}

/// Result of the reaching-definitions analysis over one CFG.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    defs: Vec<DefSite>,
    solution: Solution,
    pairs: Vec<DuPair>,
}

struct Problem {
    gens: Vec<BitSet>,
    kills: Vec<BitSet>,
}

impl Transfer for Problem {
    fn num_facts(&self) -> usize {
        self.gens.first().map_or(0, |g| g.capacity())
    }
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn gen_set(&self, n: NodeId) -> &BitSet {
        &self.gens[n]
    }
    fn kill_set(&self, n: NodeId) -> &BitSet {
        &self.kills[n]
    }
}

impl ReachingDefs {
    /// Runs the analysis over `cfg` and derives all def-use chains.
    ///
    /// Within a node, uses are evaluated *before* the node's own definition
    /// (`x = x + 1` pairs the right-hand `x` with definitions flowing *into*
    /// the node, not with itself).
    ///
    /// ```
    /// let tu = minic::parse("void M::processing() { double t = a; b = t; }").unwrap();
    /// let cfg = dataflow::Cfg::from_function(&tu.functions[0]);
    /// let rd = dataflow::ReachingDefs::compute(&cfg);
    /// assert!(rd.pairs().iter().any(|p| p.var == "t"));
    /// ```
    pub fn compute(cfg: &Cfg) -> ReachingDefs {
        // 1. Collect definition sites.
        let mut defs: Vec<DefSite> = Vec::new();
        let mut defs_of_var: HashMap<String, Vec<DefId>> = HashMap::new();
        for n in cfg.nodes() {
            for d in &n.def_use.defs {
                let id = defs.len();
                defs.push(DefSite {
                    id,
                    var: d.name.clone(),
                    node: n.id,
                    stmt: d.stmt,
                    line: d.line,
                });
                defs_of_var.entry(d.name.clone()).or_default().push(id);
            }
        }
        let nfacts = defs.len();

        // 2. GEN/KILL per node.
        let mut gens = vec![BitSet::new(nfacts); cfg.len()];
        let mut kills = vec![BitSet::new(nfacts); cfg.len()];
        for d in &defs {
            gens[d.node].insert(d.id);
            for &other in &defs_of_var[&d.var] {
                if other != d.id {
                    kills[d.node].insert(other);
                }
            }
        }

        // 3. Solve.
        let solution = solve(cfg, &Problem { gens, kills });

        // 4. Match uses with reaching definitions.
        let mut pairs = Vec::new();
        for n in cfg.nodes() {
            for u in &n.def_use.uses {
                if let Some(cands) = defs_of_var.get(&u.name) {
                    for &d in cands {
                        if solution.in_sets[n.id].contains(d) {
                            pairs.push(DuPair {
                                def: d,
                                use_node: n.id,
                                use_stmt: u.stmt,
                                use_line: u.line,
                                var: u.name.clone(),
                            });
                        }
                    }
                }
            }
        }
        pairs.sort_by_key(|p| (p.def, p.use_node, p.use_line));
        pairs.dedup();

        ReachingDefs {
            defs,
            solution,
            pairs,
        }
    }

    /// All definition sites, indexed by [`DefId`].
    pub fn defs(&self) -> &[DefSite] {
        &self.defs
    }

    /// The definition site with id `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn def(&self, d: DefId) -> &DefSite {
        &self.defs[d]
    }

    /// All intra-model def-use pairs.
    pub fn pairs(&self) -> &[DuPair] {
        &self.pairs
    }

    /// Definitions reaching the start of node `n`.
    pub fn reaching_in(&self, n: NodeId) -> &BitSet {
        &self.solution.in_sets[n]
    }

    /// Definitions live just after node `n`.
    pub fn reaching_out(&self, n: NodeId) -> &BitSet {
        &self.solution.out_sets[n]
    }

    /// Definitions of `var` that reach the function exit, i.e. whose value
    /// can flow out of the TDF model through ports/members.
    pub fn defs_reaching_exit<'a>(&'a self, cfg: &Cfg, var: &str) -> Vec<&'a DefSite> {
        let exit_in = &self.solution.in_sets[cfg.exit()];
        self.defs
            .iter()
            .filter(|d| d.var == var && exit_in.contains(d.id))
            .collect()
    }

    /// All definition sites of `var`.
    pub fn defs_of<'a>(&'a self, var: &str) -> Vec<&'a DefSite> {
        self.defs.iter().filter(|d| d.var == var).collect()
    }

    /// Number of solver sweeps (exposed for the scalability benchmarks).
    pub fn iterations(&self) -> usize {
        self.solution.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn analyse(body: &str) -> (Cfg, ReachingDefs) {
        let src = format!("void M::processing() {{ {body} }}");
        let tu = parse(&src).unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]);
        let rd = ReachingDefs::compute(&cfg);
        (cfg, rd)
    }

    fn pair_lines(rd: &ReachingDefs) -> Vec<(String, u32, u32)> {
        rd.pairs()
            .iter()
            .map(|p| (p.var.clone(), rd.def(p.def).line, p.use_line))
            .collect()
    }

    #[test]
    fn straight_line_pairs() {
        let (_, rd) = analyse("double t = a;\nb = t;");
        // All on line 1 because the body is one logical line offset; use
        // variable names instead.
        let pairs = pair_lines(&rd);
        assert!(pairs.iter().any(|(v, _, _)| v == "t"));
        // `a` and `b` have no defs in scope -> only uses without pairs.
        assert!(!pairs.iter().any(|(v, _, _)| v == "a"));
    }

    #[test]
    fn redefinition_kills() {
        let (_, rd) = analyse("x = 1; x = 2; y = x;");
        let x_pairs: Vec<_> = rd.pairs().iter().filter(|p| p.var == "x").collect();
        assert_eq!(x_pairs.len(), 1, "only the second def reaches the use");
        assert_eq!(rd.def(x_pairs[0].def).line, 1); // same source line here
                                                    // Distinguish by definition order instead: the reaching def is the
                                                    // second definition site of x.
        let defs_x = rd.defs_of("x");
        assert_eq!(defs_x.len(), 2);
        assert_eq!(x_pairs[0].def, defs_x[1].id);
    }

    #[test]
    fn branch_merges_both_defs() {
        let (_, rd) = analyse("if (c) { x = 1; } else { x = 2; } y = x;");
        let x_pairs: Vec<_> = rd.pairs().iter().filter(|p| p.var == "x").collect();
        assert_eq!(x_pairs.len(), 2, "defs from both branches reach the join");
    }

    #[test]
    fn if_without_else_keeps_initial_def() {
        let (_, rd) = analyse("x = 0; if (c) { x = 1; } y = x;");
        let x_pairs: Vec<_> = rd.pairs().iter().filter(|p| p.var == "x").collect();
        assert_eq!(x_pairs.len(), 2, "fallthrough keeps x = 0 alive");
    }

    #[test]
    fn loop_carried_definition() {
        let (_, rd) = analyse("s = 0; while (c) { s = s + 1; } t = s;");
        // The use `s + 1` sees both the init and the loop-carried def.
        let uses_in_loop: Vec<_> = rd.pairs().iter().filter(|p| p.var == "s").collect();
        // s=0 -> s+1, s=s+1 -> s+1 (around the loop),
        // s=0 -> t=s, s=s+1 -> t=s, and the while cond uses nothing.
        assert_eq!(uses_in_loop.len(), 4);
    }

    #[test]
    fn compound_assign_does_not_pair_with_itself_in_straight_line() {
        let (_, rd) = analyse("x = 0; x += 1;");
        let defs_x = rd.defs_of("x");
        assert_eq!(defs_x.len(), 2);
        let pairs: Vec<_> = rd.pairs().iter().filter(|p| p.var == "x").collect();
        // The += use pairs only with x = 0, never with its own def.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].def, defs_x[0].id);
    }

    #[test]
    fn defs_reaching_exit_filters_killed() {
        let (cfg, rd) = analyse("op = 1; op = 2;");
        let escaping = rd.defs_reaching_exit(&cfg, "op");
        assert_eq!(escaping.len(), 1, "first def killed before exit");
        let (cfg2, rd2) = analyse("op = 1; if (c) { op = 2; }");
        assert_eq!(
            rd2.defs_reaching_exit(&cfg2, "op").len(),
            2,
            "conditional redefinition leaves both live"
        );
    }

    #[test]
    fn use_without_def_produces_no_pair() {
        let (_, rd) = analyse("y = undefined_var;");
        assert!(rd.pairs().iter().all(|p| p.var != "undefined_var"));
    }

    #[test]
    fn unreachable_defs_do_not_reach() {
        let (_, rd) = analyse("return; x = 1; y = x;");
        assert!(
            rd.pairs().iter().all(|p| p.var != "x"),
            "defs after return are unreachable and never flow"
        );
    }

    #[test]
    fn fig2_ts_pairs_match_paper_lines() {
        // The TS model of Fig. 2 with its original line numbers (the body
        // starts on line 3 == paper line 3).
        let src = "\
void TS::processing()
{
    double sig_in = ip_signal_in;
    double tmpr = sig_in*1000;
    double out_tmpr = 0;
    bool intr_ = false;
    if (!ip_hold){
        if (ip_clear) intr_ = 0;
        else if ((tmpr > 30) && (tmpr < 1500 )){
            out_tmpr = tmpr;
            intr_ = true;
        }
        op_intr.write(intr_);
        op_signal_out = out_tmpr;
    }
}";
        let tu = parse(src).unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]);
        let rd = ReachingDefs::compute(&cfg);
        let pairs = pair_lines(&rd);
        // Paper Table I pairs (within TS, adjusted to this snippet's lines):
        assert!(pairs.contains(&("sig_in".into(), 3, 4)));
        assert!(pairs.contains(&("tmpr".into(), 4, 9)));
        assert!(pairs.contains(&("tmpr".into(), 4, 10)));
        assert!(pairs.contains(&("intr_".into(), 6, 13)));
        assert!(pairs.contains(&("intr_".into(), 8, 13)));
        assert!(pairs.contains(&("intr_".into(), 11, 13)));
        assert!(pairs.contains(&("out_tmpr".into(), 5, 14)));
        assert!(pairs.contains(&("out_tmpr".into(), 10, 14)));
    }
}

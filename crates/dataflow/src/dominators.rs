//! Dominator tree computation (Cooper–Harvey–Kennedy).
//!
//! Used by the coverage core to reason about definitions that *must* execute
//! whenever the model fires (entry-dominating definitions) — these feed the
//! `all-defs` criterion diagnostics.

use crate::cfg::{Cfg, NodeId};

/// Immediate-dominator table for a [`Cfg`].
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: Vec<Option<NodeId>>,
    rpo_pos: Vec<usize>,
}

impl Dominators {
    /// Computes dominators of all nodes reachable from the entry.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let rpo = cfg.reverse_postorder();
        let mut rpo_pos = vec![usize::MAX; cfg.len()];
        for (i, &n) in rpo.iter().enumerate() {
            rpo_pos[n] = i;
        }

        let mut idom: Vec<Option<NodeId>> = vec![None; cfg.len()];
        idom[cfg.entry()] = Some(cfg.entry());

        let mut changed = true;
        while changed {
            changed = false;
            for &n in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<NodeId> = None;
                for &p in cfg.preds(n) {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[n] != Some(ni) {
                        idom[n] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        Dominators { idom, rpo_pos }
    }

    /// The immediate dominator of `n` (`None` for unreachable nodes; the
    /// entry is its own idom).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom[n]
    }

    /// Whether `a` dominates `b` (reflexive: every node dominates itself).
    ///
    /// Unreachable nodes dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if self.idom[b].is_none() || self.idom[a].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let parent = self.idom[cur].expect("reachable chain");
            if parent == cur {
                return false; // reached entry
            }
            cur = parent;
        }
    }

    /// Position of `n` in reverse postorder (`usize::MAX` if unreachable).
    pub fn rpo_position(&self, n: NodeId) -> usize {
        self.rpo_pos[n]
    }
}

fn intersect(idom: &[Option<NodeId>], rpo_pos: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while rpo_pos[a] > rpo_pos[b] {
            a = idom[a].expect("processed node");
        }
        while rpo_pos[b] > rpo_pos[a] {
            b = idom[b].expect("processed node");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("void M::processing() {{ {body} }}");
        let tu = parse(&src).unwrap();
        Cfg::from_function(&tu.functions[0])
    }

    fn node_by_label(cfg: &Cfg, prefix: &str) -> NodeId {
        cfg.nodes()
            .iter()
            .find(|n| n.label.starts_with(prefix))
            .unwrap_or_else(|| panic!("no node {prefix}"))
            .id
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let cfg = cfg_of("if (a) { x = 1; } else { y = 2; } z = 3;");
        let dom = Dominators::compute(&cfg);
        for n in 0..cfg.len() {
            assert!(dom.dominates(cfg.entry(), n));
        }
    }

    #[test]
    fn branch_nodes_do_not_dominate_join() {
        let cfg = cfg_of("if (a) { x = 1; } else { y = 2; } z = 3;");
        let dom = Dominators::compute(&cfg);
        let x = node_by_label(&cfg, "x");
        let z = node_by_label(&cfg, "z");
        let cond = node_by_label(&cfg, "if");
        assert!(!dom.dominates(x, z));
        assert!(dom.dominates(cond, z));
        assert_eq!(dom.idom(z), Some(cond));
    }

    #[test]
    fn loop_header_dominates_body() {
        let cfg = cfg_of("while (c) { b = 1; }");
        let dom = Dominators::compute(&cfg);
        let w = node_by_label(&cfg, "while");
        let b = node_by_label(&cfg, "b");
        assert!(dom.dominates(w, b));
        assert!(!dom.dominates(b, w));
    }

    #[test]
    fn dominance_is_reflexive() {
        let cfg = cfg_of("x = 1;");
        let dom = Dominators::compute(&cfg);
        let x = node_by_label(&cfg, "x");
        assert!(dom.dominates(x, x));
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let cfg = cfg_of("return; x = 1;");
        let dom = Dominators::compute(&cfg);
        let x = node_by_label(&cfg, "x");
        assert_eq!(dom.idom(x), None);
        assert!(!dom.dominates(cfg.entry(), x));
        assert!(!dom.dominates(x, cfg.exit()));
        assert_eq!(dom.rpo_position(x), usize::MAX);
    }

    #[test]
    fn straight_line_chain_of_idoms() {
        let cfg = cfg_of("a = 1; b = 2; c = 3;");
        let dom = Dominators::compute(&cfg);
        let a = node_by_label(&cfg, "a");
        let b = node_by_label(&cfg, "b");
        let c = node_by_label(&cfg, "c");
        assert_eq!(dom.idom(b), Some(a));
        assert_eq!(dom.idom(c), Some(b));
        assert!(dom.dominates(a, c));
    }
}

//! Per-statement definition/use extraction.
//!
//! A *definition* of variable `v` is a statement that writes `v`: a
//! declaration with initializer, an assignment target, or a `v.write(e)`
//! port write. A *use* is any read: operands of expressions, conditions of
//! `if`/`while`/`for`, compound-assignment targets, and `v.read()` receivers.
//!
//! Only the statement's *own* accesses are reported — nested statements of a
//! control-flow construct are separate CFG nodes and carry their own
//! summaries.

use minic::{Expr, SourceLoc, Stmt, StmtId, StmtKind};

/// A single access (definition or use) of a variable at a statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarAccess {
    /// Variable, member or port name.
    pub name: String,
    /// Statement performing the access.
    pub stmt: StmtId,
    /// Source line of the statement (the paper's association coordinate).
    pub line: u32,
    /// Exact location of the access if finer than the statement.
    pub loc: SourceLoc,
}

/// The defs and uses a single statement performs, uses listed before defs in
/// evaluation order (`x = x + 1` first *uses* then *defines* `x`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtDefUse {
    /// Variables defined (written) by the statement.
    pub defs: Vec<VarAccess>,
    /// Variables used (read) by the statement.
    pub uses: Vec<VarAccess>,
}

impl StmtDefUse {
    /// Whether the statement defines `name`.
    pub fn defines(&self, name: &str) -> bool {
        self.defs.iter().any(|d| d.name == name)
    }

    /// Whether the statement uses `name`.
    pub fn uses_var(&self, name: &str) -> bool {
        self.uses.iter().any(|u| u.name == name)
    }
}

/// Extracts the def/use summary of `stmt` (own accesses only; see module
/// docs).
///
/// ```
/// let s = minic::parse_stmt("tmpr = sig_in * 1000;").unwrap();
/// let du = dataflow::stmt_def_use(&s);
/// assert_eq!(du.defs[0].name, "tmpr");
/// assert_eq!(du.uses[0].name, "sig_in");
/// ```
pub fn stmt_def_use(stmt: &Stmt) -> StmtDefUse {
    let mut out = StmtDefUse::default();
    let line = stmt.span.line();
    let push_uses = |expr: &Expr, out: &mut StmtDefUse| {
        for name in expr.reads() {
            out.uses.push(VarAccess {
                name,
                stmt: stmt.id,
                line,
                loc: expr.span.start,
            });
        }
    };

    match &stmt.kind {
        StmtKind::Decl { name, init, .. } => {
            if let Some(e) = init {
                push_uses(e, &mut out);
                out.defs.push(VarAccess {
                    name: name.clone(),
                    stmt: stmt.id,
                    line,
                    loc: stmt.span.start,
                });
            }
            // A declaration without initializer neither defines nor uses.
        }
        StmtKind::Assign { target, op, value } => {
            if op.reads_target() {
                out.uses.push(VarAccess {
                    name: target.clone(),
                    stmt: stmt.id,
                    line,
                    loc: stmt.span.start,
                });
            }
            push_uses(value, &mut out);
            out.defs.push(VarAccess {
                name: target.clone(),
                stmt: stmt.id,
                line,
                loc: stmt.span.start,
            });
        }
        StmtKind::Write { port, value } => {
            push_uses(value, &mut out);
            out.defs.push(VarAccess {
                name: port.clone(),
                stmt: stmt.id,
                line,
                loc: stmt.span.start,
            });
        }
        StmtKind::If { cond, .. } => push_uses(cond, &mut out),
        StmtKind::While { cond, .. } => push_uses(cond, &mut out),
        // The `for` header's init/step are separate CFG nodes; only the
        // condition belongs to the `for` node itself.
        StmtKind::For { cond, .. } => {
            if let Some(c) = cond {
                push_uses(c, &mut out);
            }
        }
        StmtKind::Expr(e) => push_uses(e, &mut out),
        StmtKind::Return | StmtKind::Break | StmtKind::Continue | StmtKind::Block(_) => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse_stmt;

    fn names(v: &[VarAccess]) -> Vec<&str> {
        v.iter().map(|a| a.name.as_str()).collect()
    }

    #[test]
    fn decl_with_init_defines() {
        let s = parse_stmt("double tmpr = sig_in * 1000;").unwrap();
        let du = stmt_def_use(&s);
        assert_eq!(names(&du.defs), vec!["tmpr"]);
        assert_eq!(names(&du.uses), vec!["sig_in"]);
    }

    #[test]
    fn decl_without_init_has_no_def() {
        let s = parse_stmt("double x;").unwrap();
        let du = stmt_def_use(&s);
        assert!(du.defs.is_empty());
        assert!(du.uses.is_empty());
    }

    #[test]
    fn compound_assign_uses_then_defines_target() {
        let s = parse_stmt("acc += delta;").unwrap();
        let du = stmt_def_use(&s);
        assert_eq!(names(&du.uses), vec!["acc", "delta"]);
        assert_eq!(names(&du.defs), vec!["acc"]);
    }

    #[test]
    fn port_write_defines_port() {
        let s = parse_stmt("op_intr.write(intr_ && en);").unwrap();
        let du = stmt_def_use(&s);
        assert_eq!(names(&du.defs), vec!["op_intr"]);
        assert_eq!(names(&du.uses), vec!["intr_", "en"]);
    }

    #[test]
    fn if_condition_only_uses() {
        let s = parse_stmt("if ((tmpr > 30) && (tmpr < 1500)) { out = tmpr; }").unwrap();
        let du = stmt_def_use(&s);
        assert!(du.defs.is_empty());
        assert_eq!(names(&du.uses), vec!["tmpr", "tmpr"]);
    }

    #[test]
    fn for_node_uses_only_condition() {
        let s = parse_stmt("for (int i = 0; i < n; i++) { s = s + i; }").unwrap();
        let du = stmt_def_use(&s);
        assert!(du.defs.is_empty());
        assert_eq!(names(&du.uses), vec!["i", "n"]);
    }

    #[test]
    fn method_read_is_a_use() {
        let s = parse_stmt("x = ip_in.read();").unwrap();
        let du = stmt_def_use(&s);
        assert_eq!(names(&du.uses), vec!["ip_in"]);
        assert_eq!(names(&du.defs), vec!["x"]);
    }

    #[test]
    fn return_break_continue_are_silent() {
        for src in ["return;", "break;", "continue;"] {
            let s = parse_stmt(src).unwrap();
            let du = stmt_def_use(&s);
            assert!(du.defs.is_empty() && du.uses.is_empty(), "{src}");
        }
    }

    #[test]
    fn lines_recorded_on_accesses() {
        let s = parse_stmt("x = y;").unwrap();
        let du = stmt_def_use(&s);
        assert_eq!(du.defs[0].line, 1);
        assert_eq!(du.uses[0].line, 1);
    }

    #[test]
    fn defines_and_uses_helpers() {
        let s = parse_stmt("x = y;").unwrap();
        let du = stmt_def_use(&s);
        assert!(du.defines("x"));
        assert!(!du.defines("y"));
        assert!(du.uses_var("y"));
        assert!(!du.uses_var("x"));
    }
}

//! du-path reasoning: deciding whether *all* static paths between a
//! definition and a use are du-paths (no intervening redefinition), whether
//! *some* non-du-path exists, and bounded explicit path enumeration.
//!
//! These two facts drive the paper's intra-model classification:
//!
//! * **Strong (local)** — every static path def→use is a du-path.
//! * **Firm** — a du-path exists (the pair is real) but at least one static
//!   path def→use passes another definition of the variable.

use crate::cfg::{Cfg, NodeId};
use crate::reaching::{DuPair, ReachingDefs};

/// Path-shape facts about one def-use pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathFacts {
    /// At least one du-path exists (always true for pairs produced by
    /// reaching definitions).
    pub has_du_path: bool,
    /// At least one static path from def to use passes an intervening
    /// redefinition of the variable.
    pub has_non_du_path: bool,
}

impl PathFacts {
    /// Whether every static path between def and use is a du-path.
    pub fn all_paths_du(&self) -> bool {
        self.has_du_path && !self.has_non_du_path
    }
}

/// Computes [`PathFacts`] for `pair` without enumerating paths.
///
/// A non-du-path exists iff some *other* definition `k` of the same variable
/// lies strictly between the def and the use: `def →⁺ k` and `k →⁺ use`
/// (both with at least one edge, so a definition at the use node itself only
/// intervenes when the node sits on a cycle).
pub fn path_facts(cfg: &Cfg, rd: &ReachingDefs, pair: &DuPair) -> PathFacts {
    let def_site = rd.def(pair.def);
    let from_def = cfg.reaches(def_site.node);
    let mut has_non_du = false;
    for other in rd.defs_of(&pair.var) {
        if other.id == pair.def {
            continue;
        }
        if !from_def.contains(other.node) {
            continue;
        }
        if cfg.reaches(other.node).contains(pair.use_node) {
            has_non_du = true;
            break;
        }
    }
    PathFacts {
        has_du_path: true,
        has_non_du_path: has_non_du,
    }
}

/// Reference implementation of [`path_facts`] that re-runs a BFS per query
/// instead of consulting the cached transitive closure. Kept for the
/// cached-vs-uncached benchmarks and the property tests asserting the two
/// agree; production callers should use [`path_facts`].
pub fn path_facts_uncached(cfg: &Cfg, rd: &ReachingDefs, pair: &DuPair) -> PathFacts {
    let def_site = rd.def(pair.def);
    let from_def = cfg.reachable_from(def_site.node, 1);
    let mut has_non_du = false;
    for other in rd.defs_of(&pair.var) {
        if other.id == pair.def {
            continue;
        }
        if !from_def.contains(other.node) {
            continue;
        }
        if cfg.reachable_from(other.node, 1).contains(pair.use_node) {
            has_non_du = true;
            break;
        }
    }
    PathFacts {
        has_du_path: true,
        has_non_du_path: has_non_du,
    }
}

/// One explicit static path between a definition and a use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPath {
    /// Node sequence from the def node to the use node, inclusive.
    pub nodes: Vec<NodeId>,
    /// Whether the path is a du-path (no intervening redefinition).
    pub is_du_path: bool,
}

/// Enumerates up to `limit` acyclic static paths from the def of `pair` to
/// its use, marking each as du-path or not. Interior nodes are visited at
/// most once per path (the acyclic skeleton of the CFG), which matches the
/// usual finite-path interpretation of data-flow testing over loops.
///
/// Returns fewer than `limit` paths when the graph has fewer; an empty
/// result means def and use are disconnected (cannot happen for pairs from
/// [`ReachingDefs`]).
pub fn enumerate_du_paths(
    cfg: &Cfg,
    rd: &ReachingDefs,
    pair: &DuPair,
    limit: usize,
) -> Vec<StaticPath> {
    let def_site = rd.def(pair.def);
    let redefs: Vec<NodeId> = rd
        .defs_of(&pair.var)
        .iter()
        .filter(|d| d.id != pair.def)
        .map(|d| d.node)
        .collect();

    let mut out = Vec::new();
    let mut path = vec![def_site.node];
    let mut on_path = vec![false; cfg.len()];
    on_path[def_site.node] = true;
    dfs(
        cfg,
        def_site.node,
        pair.use_node,
        &redefs,
        limit,
        &mut path,
        &mut on_path,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    cfg: &Cfg,
    current: NodeId,
    target: NodeId,
    redefs: &[NodeId],
    limit: usize,
    path: &mut Vec<NodeId>,
    on_path: &mut [bool],
    out: &mut Vec<StaticPath>,
) {
    if out.len() >= limit {
        return;
    }
    for &s in cfg.succs(current) {
        if out.len() >= limit {
            return;
        }
        // The target check must come before the `on_path` check: when the
        // pair's def and use share a node on a cycle, the target is on the
        // path from the start, and checking `on_path` first would silently
        // drop every such loop-carried pair.
        if s == target {
            let mut nodes = path.clone();
            nodes.push(s);
            // Interior nodes are those strictly between def and use.
            let is_du = nodes[1..nodes.len() - 1]
                .iter()
                .all(|n| !redefs.contains(n));
            out.push(StaticPath {
                nodes,
                is_du_path: is_du,
            });
            continue;
        }
        if on_path[s] {
            continue;
        }
        // Prune subtrees that cannot reach the use at all (the cached
        // closure makes this a bit test); they contribute no paths, so the
        // enumeration order of the paths that *are* found is unchanged.
        if !cfg.reaches(s).contains(target) {
            continue;
        }
        on_path[s] = true;
        path.push(s);
        dfs(cfg, s, target, redefs, limit, path, on_path, out);
        path.pop();
        on_path[s] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::reaching::ReachingDefs;
    use minic::parse;

    fn analyse(body: &str) -> (Cfg, ReachingDefs) {
        let src = format!("void M::processing() {{ {body} }}");
        let tu = parse(&src).unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]);
        let rd = ReachingDefs::compute(&cfg);
        (cfg, rd)
    }

    fn pair_of<'a>(rd: &'a ReachingDefs, var: &str, def_idx: usize) -> &'a DuPair {
        let def_id = rd.defs_of(var)[def_idx].id;
        rd.pairs()
            .iter()
            .find(|p| p.var == var && p.def == def_id)
            .expect("pair exists")
    }

    #[test]
    fn straight_line_is_all_du() {
        let (cfg, rd) = analyse("t = a; b = t;");
        let p = pair_of(&rd, "t", 0);
        let facts = path_facts(&cfg, &rd, p);
        assert!(facts.all_paths_du());
    }

    #[test]
    fn conditional_redefinition_creates_non_du_path() {
        // out_tmpr = 0; if (c) out_tmpr = tmpr; use(out_tmpr)
        // The pair (out_tmpr@1 -> use) has a du-path (else branch) and a
        // non-du-path (through the redefinition) — the paper's Firm shape.
        let (cfg, rd) = analyse("o = 0; if (c) { o = t; } u = o;");
        let p = pair_of(&rd, "o", 0);
        let facts = path_facts(&cfg, &rd, p);
        assert!(facts.has_du_path);
        assert!(facts.has_non_du_path);
        assert!(!facts.all_paths_du());
        // The redefinition's own pair is all-du.
        let p2 = pair_of(&rd, "o", 1);
        assert!(path_facts(&cfg, &rd, p2).all_paths_du());
    }

    #[test]
    fn redefinition_on_other_branch_does_not_intervene() {
        // Defs in the two if arms never lie on the same path.
        let (cfg, rd) = analyse("if (c) { x = 1; } else { x = 2; } y = x;");
        for i in 0..2 {
            let p = pair_of(&rd, "x", i);
            assert!(
                path_facts(&cfg, &rd, p).all_paths_du(),
                "branch defs are mutually exclusive"
            );
        }
    }

    #[test]
    fn loop_redefinition_intervenes_via_cycle() {
        // s = 0; while (c) { s = s + 1; } t = s;
        // Path s=0 -> while -> t is du; path s=0 -> while -> s=s+1 -> while -> t
        // passes the redefinition: non-du-path exists.
        let (cfg, rd) = analyse("s = 0; while (c) { s = s + 1; } t = s;");
        let defs = rd.defs_of("s");
        let init = defs[0].id;
        let p = rd
            .pairs()
            .iter()
            .find(|p| {
                p.def == init && p.var == "s" && {
                    // the use at t = s (not the use inside the loop)
                    cfg.node(p.use_node).label.starts_with("t")
                }
            })
            .unwrap();
        let facts = path_facts(&cfg, &rd, p);
        assert!(facts.has_non_du_path);
    }

    #[test]
    fn self_pair_in_loop() {
        // The loop-carried pair s=s+1 -> s=s+1 (around the back edge).
        let (cfg, rd) = analyse("s = 0; while (c) { s = s + 1; } t = s;");
        let loop_def = rd.defs_of("s")[1].id;
        let self_pair = rd
            .pairs()
            .iter()
            .find(|p| p.def == loop_def && p.use_node == rd.def(loop_def).node)
            .expect("loop-carried pair exists");
        let facts = path_facts(&cfg, &rd, self_pair);
        assert!(facts.has_du_path);
    }

    #[test]
    fn enumerate_paths_finds_both_branches() {
        let (cfg, rd) = analyse("o = 0; if (c) { o = t; } u = o;");
        let p = pair_of(&rd, "o", 0);
        let paths = enumerate_du_paths(&cfg, &rd, p, 16);
        assert_eq!(paths.len(), 2);
        let du: Vec<bool> = paths.iter().map(|p| p.is_du_path).collect();
        assert!(du.contains(&true) && du.contains(&false));
        for sp in &paths {
            assert_eq!(sp.nodes.first().copied(), Some(rd.def(p.def).node));
            assert_eq!(sp.nodes.last().copied(), Some(p.use_node));
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        // A diamond ladder explodes combinatorially; the limit caps it.
        let body = "x = 0;\
            if (a) { t = 1; } \
            if (b) { t = 2; } \
            if (c) { t = 3; } \
            if (d) { t = 4; } \
            y = x;";
        let (cfg, rd) = analyse(body);
        let p = pair_of(&rd, "x", 0);
        let paths = enumerate_du_paths(&cfg, &rd, p, 5);
        assert_eq!(paths.len(), 5);
    }

    #[test]
    fn self_pair_on_cycle_is_enumerated() {
        // Regression: the loop-carried pair s=s+1 -> s=s+1 starts its DFS
        // with the def/use node already on the path; enumeration must still
        // emit the cycle path (def -> cond -> def) rather than dropping it.
        let (cfg, rd) = analyse("s = 0; while (c) { s = s + 1; } t = s;");
        let loop_def = rd.defs_of("s")[1].id;
        let self_pair = rd
            .pairs()
            .iter()
            .find(|p| p.def == loop_def && p.use_node == rd.def(loop_def).node)
            .expect("loop-carried pair exists");
        let paths = enumerate_du_paths(&cfg, &rd, self_pair, 16);
        assert!(!paths.is_empty(), "cycle self-pair must be enumerated");
        for sp in &paths {
            assert_eq!(sp.nodes.first(), sp.nodes.last(), "path is a cycle");
            assert!(sp.nodes.len() >= 2, "at least one edge");
            assert!(sp.is_du_path, "no other def of s on the loop");
        }
        // And the closed-form facts agree with the enumeration.
        let facts = path_facts(&cfg, &rd, self_pair);
        assert!(facts.has_du_path);
        assert!(!facts.has_non_du_path);
    }

    #[test]
    fn self_pair_around_activation_loop_is_enumerated() {
        // The same shape on a looped CFG: a member-style def at the end of
        // the body feeding its own use in the next activation.
        let src = "void M::processing() { y = m; m = x; }";
        let tu = parse(src).unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]).looped();
        let rd = ReachingDefs::compute(&cfg);
        let pair = rd
            .pairs()
            .iter()
            .find(|p| p.var == "m")
            .expect("wrapped flow of m exists on the looped graph");
        let paths = enumerate_du_paths(&cfg, &rd, pair, 16);
        assert!(!paths.is_empty());
        let facts = path_facts(&cfg, &rd, pair);
        assert_eq!(facts.has_non_du_path, paths.iter().any(|p| !p.is_du_path));
    }

    #[test]
    fn cached_and_uncached_facts_agree() {
        let bodies = [
            "x = 1; y = x;",
            "x = 1; if (c) { x = 2; } y = x;",
            "s = 0; while (c) { s = s + 1; } t = s;",
            "for (int i = 0; i < 3; i++) { s = s + i; } t = s;",
            "x = 1; while (a) { if (b) { x = 2; } y = x; } z = x;",
        ];
        for body in bodies {
            let (plain, _) = analyse(body);
            let looped = plain.looped();
            for cfg in [&plain, &looped] {
                let rd = ReachingDefs::compute(cfg);
                for pair in rd.pairs() {
                    assert_eq!(
                        path_facts(cfg, &rd, pair),
                        path_facts_uncached(cfg, &rd, pair),
                        "{body}"
                    );
                }
            }
        }
    }

    #[test]
    fn facts_agree_with_enumeration_on_small_graphs() {
        let bodies = [
            "x = 1; y = x;",
            "x = 1; if (c) { x = 2; } y = x;",
            "x = 1; if (c) { x = 2; } else { x = 3; } y = x;",
            "x = 1; while (c) { x = x + 1; } y = x;",
        ];
        for body in bodies {
            let (cfg, rd) = analyse(body);
            for pair in rd.pairs().iter().filter(|p| p.var == "x") {
                let facts = path_facts(&cfg, &rd, pair);
                let paths = enumerate_du_paths(&cfg, &rd, pair, 1000);
                let enum_has_non_du = paths.iter().any(|p| !p.is_du_path);
                // `facts` may see non-du-paths that acyclic enumeration
                // misses (cycles), but never the other way around.
                if enum_has_non_du {
                    assert!(facts.has_non_du_path, "{body}");
                }
                assert!(paths.iter().any(|p| p.is_du_path), "{body}");
            }
        }
    }
}

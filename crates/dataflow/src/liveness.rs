//! Live-variable analysis (backward may) and dead-definition detection.
//!
//! A definition whose variable is not live-out at its node can never feed a
//! use — on circuit level the paper maps such "dead code associations" to
//! component isolation (open circuits, wrong transistor configuration). The
//! coverage core surfaces dead *local* definitions as lint warnings; port
//! and member definitions escape the model and are excluded by the caller.

use std::collections::HashMap;

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use crate::framework::{solve, Direction, Meet, Transfer};

/// Result of live-variable analysis over one CFG.
#[derive(Debug, Clone)]
pub struct Liveness {
    vars: Vec<String>,
    var_index: HashMap<String, usize>,
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

struct Problem {
    gens: Vec<BitSet>,
    kills: Vec<BitSet>,
    nvars: usize,
}

impl Transfer for Problem {
    fn num_facts(&self) -> usize {
        self.nvars
    }
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn gen_set(&self, n: NodeId) -> &BitSet {
        &self.gens[n]
    }
    fn kill_set(&self, n: NodeId) -> &BitSet {
        &self.kills[n]
    }
}

impl Liveness {
    /// Runs live-variable analysis over `cfg`.
    ///
    /// Variables listed in `escaping` (typically output ports and members,
    /// whose values outlive one activation) are treated as live at the
    /// function exit.
    pub fn compute(cfg: &Cfg, escaping: &[String]) -> Liveness {
        let mut vars: Vec<String> = Vec::new();
        let mut var_index: HashMap<String, usize> = HashMap::new();
        let index_of = |name: &str, vars: &mut Vec<String>, idx: &mut HashMap<String, usize>| {
            if let Some(&i) = idx.get(name) {
                i
            } else {
                let i = vars.len();
                vars.push(name.to_owned());
                idx.insert(name.to_owned(), i);
                i
            }
        };
        for n in cfg.nodes() {
            for a in n.def_use.defs.iter().chain(&n.def_use.uses) {
                index_of(&a.name, &mut vars, &mut var_index);
            }
        }
        for e in escaping {
            index_of(e, &mut vars, &mut var_index);
        }
        let nvars = vars.len();

        let mut gens = vec![BitSet::new(nvars); cfg.len()];
        let mut kills = vec![BitSet::new(nvars); cfg.len()];
        for n in cfg.nodes() {
            // GEN = upward-exposed uses; KILL = defs. In minic uses happen
            // before defs within a statement, so a use of the defined
            // variable stays in GEN.
            for u in &n.def_use.uses {
                gens[n.id].insert(var_index[&u.name]);
            }
            for d in &n.def_use.defs {
                kills[n.id].insert(var_index[&d.name]);
            }
        }

        let mut problem = Problem { gens, kills, nvars };
        // Escaping variables are live at exit: model as GEN at the exit node.
        for e in escaping {
            let i = var_index[e];
            problem.gens[cfg.exit()].insert(i);
        }
        let sol = solve(cfg, &problem);
        Liveness {
            vars,
            var_index,
            live_in: sol.in_sets,
            live_out: sol.out_sets,
        }
    }

    /// Variables live before node `n`.
    pub fn live_in(&self, n: NodeId) -> Vec<&str> {
        self.live_in[n]
            .iter()
            .map(|i| self.vars[i].as_str())
            .collect()
    }

    /// Variables live after node `n`.
    pub fn live_out(&self, n: NodeId) -> Vec<&str> {
        self.live_out[n]
            .iter()
            .map(|i| self.vars[i].as_str())
            .collect()
    }

    /// Whether `var` is live after node `n`.
    pub fn is_live_out(&self, n: NodeId, var: &str) -> bool {
        self.var_index
            .get(var)
            .is_some_and(|&i| self.live_out[n].contains(i))
    }

    /// Definitions whose value is never used afterwards: `(node, var)` pairs
    /// where the node defines `var` but `var` is not live-out.
    pub fn dead_defs(&self, cfg: &Cfg) -> Vec<(NodeId, String)> {
        let mut out = Vec::new();
        for n in cfg.nodes() {
            for d in &n.def_use.defs {
                if !self.is_live_out(n.id, &d.name) {
                    out.push((n.id, d.name.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn analyse(body: &str, escaping: &[&str]) -> (Cfg, Liveness) {
        let src = format!("void M::processing() {{ {body} }}");
        let tu = parse(&src).unwrap();
        let cfg = Cfg::from_function(&tu.functions[0]);
        let esc: Vec<String> = escaping.iter().map(|s| s.to_string()).collect();
        let lv = Liveness::compute(&cfg, &esc);
        (cfg, lv)
    }

    fn node_by_label(cfg: &Cfg, prefix: &str) -> NodeId {
        cfg.nodes()
            .iter()
            .find(|n| n.label.starts_with(prefix))
            .unwrap_or_else(|| panic!("no node {prefix}"))
            .id
    }

    #[test]
    fn used_variable_is_live() {
        let (cfg, lv) = analyse("x = 1; y = x;", &[]);
        let x = node_by_label(&cfg, "x");
        assert!(lv.is_live_out(x, "x"));
        assert!(lv.live_in(node_by_label(&cfg, "y")).contains(&"x"));
    }

    #[test]
    fn overwritten_def_is_dead() {
        let (cfg, lv) = analyse("x = 1; x = 2; y = x;", &[]);
        let dead = lv.dead_defs(&cfg);
        // The first x = 1 is dead; the second is used; y is dead (nothing
        // reads it and it does not escape).
        assert!(dead.iter().any(|(_, v)| v == "x"));
        assert!(dead.iter().any(|(_, v)| v == "y"));
        assert_eq!(dead.len(), 2);
    }

    #[test]
    fn escaping_ports_are_live_at_exit() {
        let (cfg, lv) = analyse("op_out = 5;", &["op_out"]);
        assert!(lv.dead_defs(&cfg).is_empty());
        let n = node_by_label(&cfg, "op_out");
        assert!(lv.is_live_out(n, "op_out"));
    }

    #[test]
    fn compound_assign_keeps_var_live_through_itself() {
        let (cfg, lv) = analyse("x = 1; x += 2; y = x;", &[]);
        let first = node_by_label(&cfg, "x = 1");
        assert!(
            lv.is_live_out(first, "x"),
            "x += 2 reads x, keeping the first def alive"
        );
        assert!(lv.dead_defs(&cfg).iter().all(|(_, v)| v != "x"));
    }

    #[test]
    fn loop_keeps_loop_carried_values_live() {
        let (cfg, lv) = analyse("s = 0; while (c) { s = s + 1; } t = s;", &["t"]);
        assert!(lv.dead_defs(&cfg).is_empty());
        let w = node_by_label(&cfg, "while");
        assert!(lv.live_in(w).contains(&"s"));
    }

    #[test]
    fn branch_local_liveness() {
        let (cfg, lv) = analyse("x = 1; if (c) { y = x; } z = 2;", &["z"]);
        let x = node_by_label(&cfg, "x");
        assert!(lv.is_live_out(x, "x"));
        // y is defined but never used anywhere.
        assert!(lv.dead_defs(&cfg).iter().any(|(_, v)| v == "y"));
    }

    #[test]
    fn unknown_variable_is_not_live() {
        let (cfg, lv) = analyse("x = 1;", &[]);
        assert!(!lv.is_live_out(cfg.entry(), "nothere"));
        assert!(lv.live_out(cfg.exit()).is_empty());
    }
}

//! Event-log matching: the interned-symbol match automaton versus the
//! legacy string matcher, on identical logs captured from synthetic chain
//! simulations. Throughput is events matched per second; the end-to-end
//! effect on candidate evaluation is covered by `benches/testgen.rs`.
//!
//! Both matchers run in lenient mode (the batch-pipeline default) so the
//! comparison includes the validation prelude, not just association
//! pairing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::synth::synthetic_chain;
use dft_core::{analyse, analyse_events_with_mode, Design, MatchAutomaton, MatchMode};
use std::hint::black_box;
use std::sync::Arc;
use tdf_sim::{CompactEvent, CompactRecordingSink, Event, Interner, SimTime, Simulator};

/// One captured log in both representations, over the same interner.
struct Capture {
    design: Design,
    legacy: Vec<Event>,
    compact: Vec<CompactEvent>,
    interner: Arc<Interner>,
}

fn capture(length: usize) -> Capture {
    let spec = synthetic_chain(length, true);
    let design = spec.build_design().unwrap();
    let mut cluster = spec.build_cluster().unwrap();
    let interner = Arc::clone(design.interner());
    cluster.set_interner(Arc::clone(&interner));
    let mut sim = Simulator::new(cluster).unwrap();
    let mut sink = CompactRecordingSink::new(Arc::clone(&interner));
    sim.run(SimTime::from_us(200), &mut sink).unwrap();
    let compact = sink.events;
    let legacy: Vec<Event> = compact.iter().map(|e| e.to_event(&interner)).collect();
    Capture {
        design,
        legacy,
        compact,
        interner,
    }
}

fn bench_matching(c: &mut Criterion) {
    for length in [2usize, 6] {
        let cap = capture(length);
        let statics = analyse(&cap.design);
        let automaton = MatchAutomaton::new(&cap.design, &statics);
        assert!(Arc::ptr_eq(automaton.interner(), &cap.interner));
        // Same results on the same log, or the comparison is meaningless.
        let fast = automaton.analyse(&cap.compact, MatchMode::Lenient);
        let slow = analyse_events_with_mode(&cap.design, &cap.legacy, MatchMode::Lenient);
        assert_eq!(fast.exercised, slow.exercised);
        assert_eq!(fast.warnings, slow.warnings);

        let mut group = c.benchmark_group(format!("matching/chain{length}"));
        group.throughput(Throughput::Elements(cap.compact.len() as u64));
        group.bench_function("legacy", |b| {
            b.iter(|| {
                black_box(analyse_events_with_mode(
                    &cap.design,
                    black_box(&cap.legacy),
                    MatchMode::Lenient,
                ))
            })
        });
        group.bench_function("interned", |b| {
            b.iter(|| {
                black_box(
                    automaton.analyse_with_coverage(black_box(&cap.compact), MatchMode::Lenient),
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);

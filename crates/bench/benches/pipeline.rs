//! Benchmarks the full three-stage pipeline (E1/E6): static analysis +
//! instrumented simulation of TC1..TC3 + dynamic matching + coverage
//! evaluation on the sensor system — i.e. the cost of regenerating Table I.

use ams_models::sensor::{
    build_sensor_cluster, sensor_design, sensor_testcases, BUGGY_ADC_FULL_SCALE,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use dft_core::synth::synthetic_chain;
use dft_core::DftSession;
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    group.bench_function("sensor_table1_full", |b| {
        b.iter(|| {
            let design = sensor_design(BUGGY_ADC_FULL_SCALE).unwrap();
            let mut session = DftSession::new(design).unwrap();
            for tc in sensor_testcases() {
                let (cluster, _) = build_sensor_cluster(&tc, BUGGY_ADC_FULL_SCALE).unwrap();
                session
                    .run_testcase(&tc.name, cluster, tc.duration)
                    .unwrap();
            }
            black_box(session.coverage().total_percent())
        })
    });

    group.bench_function("sensor_single_testcase", |b| {
        let design = sensor_design(BUGGY_ADC_FULL_SCALE).unwrap();
        let tc = &sensor_testcases()[0];
        b.iter(|| {
            let mut session = DftSession::new(design.clone()).unwrap();
            let (cluster, _) = build_sensor_cluster(tc, BUGGY_ADC_FULL_SCALE).unwrap();
            session
                .run_testcase(&tc.name, cluster, tc.duration)
                .unwrap();
            black_box(session.coverage().exercised_count())
        })
    });

    group.finish();
}

fn bench_dynamic_matching(c: &mut Criterion) {
    use tdf_sim::{RecordingSink, Simulator};
    let mut group = c.benchmark_group("dynamic_matching");

    // Record one event log, then benchmark matching alone (stage 2's
    // log-analysis half, separated from simulation).
    let design = sensor_design(BUGGY_ADC_FULL_SCALE).unwrap();
    let tc = &sensor_testcases()[1];
    let (cluster, _) = build_sensor_cluster(tc, BUGGY_ADC_FULL_SCALE).unwrap();
    let mut sim = Simulator::new(cluster).unwrap();
    let mut sink = RecordingSink::new();
    sim.run(tc.duration, &mut sink).unwrap();
    let events = sink.events;

    group.bench_function("match_tc2_event_log", |b| {
        b.iter(|| black_box(dft_core::analyse_events(&design, black_box(&events))))
    });
    group.finish();
}

/// Thread scaling of the per-testcase dynamic log matching: one synthetic
/// chain simulated once, its event log replayed as a batch of testcases
/// through `analyse_events_batch` at 1..N workers.
fn bench_matching_thread_scaling(c: &mut Criterion) {
    use tdf_sim::{RecordingSink, SimTime, Simulator};
    let mut group = c.benchmark_group("matching_thread_scaling");
    group.sample_size(10);

    let spec = synthetic_chain(12, false);
    let design = spec.build_design().unwrap();
    let cluster = spec.build_cluster().unwrap();
    let mut sim = Simulator::new(cluster).unwrap();
    let mut sink = RecordingSink::new();
    sim.run(SimTime::from_ms(2), &mut sink).unwrap();
    let logs: Vec<_> = (0..8).map(|_| sink.events.clone()).collect();

    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(dft_core::analyse_events_batch(
                        black_box(&design),
                        &logs,
                        threads,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_dynamic_matching,
    bench_matching_thread_scaling
);

fn main() {
    benches();
    // Record the reachability-cache hit rate accumulated over the run
    // (needs DFT_METRICS=1; a fresh Cfg misses once, then every further
    // reaches() query hits the shared transitive closure).
    let report = dft_core::MetricsReport::capture();
    let (hits, misses) = (
        report.counter("cfg.reach_cache.hit"),
        report.counter("cfg.reach_cache.miss"),
    );
    if hits + misses > 0 {
        println!(
            "reach-cache: {hits} hits / {misses} misses ({:.1}% hit rate)",
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
}

//! Cold whole-design static analysis versus incremental one-model-edit
//! re-analysis, on the three case studies. The "edit" is the smallest
//! realistic change each design supports — a new ADC full-scale (sensor:
//! one interface member), a motor gain tweak (window lifter) and a PWM
//! scale tweak (buck-boost) — and is *varied per iteration* so the
//! process-wide model cache never absorbs it: every measured incremental
//! pass really recomputes the edited model and splices the rest from the
//! previous build. Byte-identity of the spliced analysis is asserted
//! before timing.
//!
//! Two measurements per case study:
//!
//! * `*_static` — [`SessionArtifacts::reanalyse`], the static stage alone
//!   (what the memoization actually accelerates); design construction is
//!   excluded via `iter_batched` setup.
//! * `*_full_build` — the end-to-end [`SessionArtifacts`] build including
//!   the match automaton, the figure a `dft-serve` client sees.

use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ams_models::{buck_boost, sensor, window_lifter};
use dft_core::{Design, SessionArtifacts, SessionConfig};
use stimuli::Testcase;
use tdf_sim::SimTime;

fn base_sensor() -> Design {
    sensor::sensor_design(sensor::FIXED_ADC_FULL_SCALE).unwrap()
}

/// Edit `i`: a fresh ADC full-scale — a one-model interface edit.
fn edited_sensor(i: usize) -> Design {
    sensor::sensor_design(sensor::FIXED_ADC_FULL_SCALE + 1.0 + i as f64).unwrap()
}

fn base_lifter() -> Design {
    window_lifter::lifter_design().unwrap()
}

/// Edit `i`: a fresh motor smoothing gain — a one-model source edit
/// (line-count preserving, so every other model's spans are untouched).
fn edited_lifter(i: usize) -> Design {
    let src = window_lifter::WINDOW_LIFTER_SRC.replacen(
        "(target - m_speed) * 0.3",
        &format!("(target - m_speed) * 0.3{:04}", i % 10_000),
        1,
    );
    let dummy = Testcase::new("elab", SimTime::from_ms(1));
    let (cluster, _) = window_lifter::build_lifter_cluster(&dummy).unwrap();
    let tu = minic::parse(&src).unwrap();
    Design::new(tu, window_lifter::lifter_model_defs(), cluster.netlist()).unwrap()
}

fn base_bb() -> Design {
    buck_boost::bb_design().unwrap()
}

/// Edit `i`: a fresh PWM carrier scale — a one-model source edit in `pwm`.
fn edited_bb(i: usize) -> Design {
    let src = buck_boost::BUCK_BOOST_SRC.replacen(
        "ip_duty * 8",
        &format!("ip_duty * 8.{:04}", i % 10_000),
        1,
    );
    let dummy = Testcase::new("elab", SimTime::from_ms(1));
    let (cluster, _) = buck_boost::build_bb_cluster(&dummy).unwrap();
    let tu = minic::parse(&src).unwrap();
    Design::new(tu, buck_boost::bb_model_defs(), cluster.netlist()).unwrap()
}

struct Case {
    name: &'static str,
    base: fn() -> Design,
    edited: fn(usize) -> Design,
}

const CASES: &[Case] = &[
    Case {
        name: "sensor",
        base: base_sensor,
        edited: edited_sensor,
    },
    Case {
        name: "window_lifter",
        base: base_lifter,
        edited: edited_lifter,
    },
    Case {
        name: "buck_boost",
        base: base_bb,
        edited: edited_bb,
    },
];

fn bench_incremental(c: &mut Criterion) {
    // One worker on both sides: the single-worker baseline the other
    // benches use, so the comparison is work saved, not threads spent
    // (outputs are byte-identical at every thread count either way).
    let cold_config = SessionConfig::from_env()
        .with_threads(1)
        .with_incremental(false);
    let incr_config = cold_config.with_incremental(true);
    for case in CASES {
        // `prev` is built with incremental on — a pure-cold build skips
        // fingerprinting and carries no keys to splice from.
        let prev = SessionArtifacts::build_with((case.base)(), &incr_config);

        // Exactness gate before any timing: the splice must reproduce the
        // cold analysis byte for byte, recomputing at most the one edited
        // model.
        let check = 1_000_000;
        let cold = SessionArtifacts::build_with((case.edited)(check), &cold_config);
        let incr = SessionArtifacts::build_incremental((case.edited)(check), &prev, &incr_config);
        assert_eq!(
            cold.static_analysis(),
            incr.static_analysis(),
            "{}: incremental != cold",
            case.name
        );
        assert!(
            incr.models_rebuilt() <= 1,
            "{}: one-model edit rebuilt {} models",
            case.name,
            incr.models_rebuilt()
        );

        let mut group = c.benchmark_group(format!("incremental/{}", case.name));
        // The ~5x cold/incremental ratio is the headline number; extra
        // samples keep the median stable on a loaded machine.
        group.sample_size(20);
        let edits = AtomicUsize::new(0);
        // Routines hand the design back alongside the result so its drop
        // is excluded from the timing like the output's.
        group.bench_function("cold_static", |b| {
            b.iter_batched(
                || (case.edited)(edits.fetch_add(1, Ordering::Relaxed)),
                |design| {
                    let analysis = black_box(prev.reanalyse(&design, &cold_config));
                    (design, analysis)
                },
                BatchSize::PerIteration,
            )
        });
        group.bench_function("incremental_static_one_model_edit", |b| {
            b.iter_batched(
                || (case.edited)(edits.fetch_add(1, Ordering::Relaxed)),
                |design| {
                    let analysis = black_box(prev.reanalyse(&design, &incr_config));
                    (design, analysis)
                },
                BatchSize::PerIteration,
            )
        });
        group.bench_function("cold_full_build", |b| {
            b.iter_batched(
                || (case.edited)(edits.fetch_add(1, Ordering::Relaxed)),
                |design| black_box(SessionArtifacts::build_with(design, &cold_config)),
                BatchSize::PerIteration,
            )
        });
        group.bench_function("incremental_full_build_one_model_edit", |b| {
            b.iter_batched(
                || (case.edited)(edits.fetch_add(1, Ordering::Relaxed)),
                |design| {
                    black_box(SessionArtifacts::build_incremental(
                        design,
                        &prev,
                        &incr_config,
                    ))
                },
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);

//! Ablation A2: static-analysis scalability. The paper claims "at the
//! heart of the proposed work is a scalable static analysis"; this sweep
//! measures analysis time and association count against synthetic TDF
//! clusters of growing size (chains of 4..256 models, with and without
//! redefining elements).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dft_core::synth::synthetic_chain;
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_static");
    group.sample_size(10);

    for &n in &[4usize, 16, 64, 256] {
        let spec = synthetic_chain(n, false);
        let design = spec.build_design().unwrap();
        group.bench_with_input(BenchmarkId::new("plain_chain", n), &design, |b, d| {
            b.iter(|| black_box(dft_core::analyse(d).len()))
        });
    }

    for &n in &[4usize, 16, 64] {
        let spec = synthetic_chain(n, true);
        let design = spec.build_design().unwrap();
        group.bench_with_input(BenchmarkId::new("chain_with_gains", n), &design, |b, d| {
            b.iter(|| black_box(dft_core::analyse(d).len()))
        });
    }
    group.finish();

    // Shape evidence: association count grows linearly with chain length.
    for &n in &[4usize, 16, 64, 256] {
        let design = synthetic_chain(n, false).build_design().unwrap();
        eprintln!(
            "[scalability] chain of {n} models -> {} associations",
            dft_core::analyse(&design).len()
        );
    }
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);

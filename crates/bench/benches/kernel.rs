//! TDF kernel micro-benchmarks: raw simulation throughput (activations and
//! samples per second) and elaboration/scheduling cost — the substrate
//! numbers underlying every end-to-end figure.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tdf_sim::{Cluster, DefSite, FnSource, Gain, NullSink, Probe, SimTime, Simulator, Value};

fn chain_cluster(stages: usize) -> Cluster {
    let mut c = Cluster::new("bench_top");
    let src = c
        .add_module(Box::new(FnSource::new("src", SimTime::from_us(1), |t| {
            Value::Double((t.as_fs() % 1000) as f64)
        })))
        .unwrap();
    let mut prev = (src, "op_out".to_owned());
    for i in 0..stages {
        let g = c
            .add_module(Box::new(Gain::new(
                format!("g{i}"),
                1.001,
                DefSite::new("bench_top", i as u32),
            )))
            .unwrap();
        c.connect(prev.0, &prev.1, g, "tdf_i").unwrap();
        prev = (g, "tdf_o".to_owned());
    }
    let (probe, _) = Probe::new("probe");
    let p = c.add_module(Box::new(probe)).unwrap();
    c.connect(prev.0, &prev.1, p, "tdf_i").unwrap();
    c
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_throughput");
    for stages in [4usize, 16, 64] {
        let periods = 1_000u64;
        group.throughput(Throughput::Elements(periods * (stages as u64 + 2)));
        group.bench_function(format!("chain_{stages}_modules"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(chain_cluster(stages)).unwrap();
                sim.run_periods(periods, &mut NullSink).unwrap();
                black_box(sim.stats().samples_transferred)
            })
        });
    }
    group.finish();
}

fn bench_elaboration(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_elaboration");
    for stages in [16usize, 128] {
        group.bench_function(format!("elaborate_{stages}_modules"), |b| {
            b.iter(|| black_box(Simulator::new(chain_cluster(stages)).unwrap()))
        });
    }
    group.finish();
}

fn bench_dynamic_tdf(c: &mut Criterion) {
    use tdf_sim::{ModuleSpec, PortSpec, ProcessingCtx, Sample, TdfModule};

    /// Requests a new timestep every period, forcing a reschedule.
    struct Restless {
        n: u64,
    }
    impl TdfModule for Restless {
        fn name(&self) -> &str {
            "restless"
        }
        fn spec(&self) -> ModuleSpec {
            ModuleSpec::new()
                .output(PortSpec::new("op_y"))
                .with_timestep(SimTime::from_us(10))
        }
        fn processing(&mut self, ctx: &mut ProcessingCtx<'_>) {
            ctx.write(0, Sample::new(1.0));
            self.n += 1;
            // Alternate between two timesteps to keep rescheduling.
            let ts = if self.n.is_multiple_of(2) { 10 } else { 11 };
            ctx.request_timestep(SimTime::from_us(ts));
        }
    }

    c.bench_function("dynamic_tdf_reschedule_per_period", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new("top");
            let a = cluster.add_module(Box::new(Restless { n: 0 })).unwrap();
            let (probe, _) = Probe::new("p");
            let p = cluster.add_module(Box::new(probe)).unwrap();
            cluster.connect(a, "op_y", p, "tdf_i").unwrap();
            let mut sim = Simulator::new(cluster).unwrap();
            sim.run_periods(100, &mut NullSink).unwrap();
            black_box(sim.stats().reschedules)
        })
    });
}

criterion_group!(
    benches,
    bench_throughput,
    bench_elaboration,
    bench_dynamic_tdf
);
criterion_main!(benches);

//! Coverage-guided generation throughput: candidates evaluated per
//! second on synthetic chain designs, at 1 and 4 matcher threads. The
//! interesting ratio is chain length versus throughput (the per-candidate
//! cost is simulation plus batch log matching; generation bookkeeping
//! should stay negligible) and the 1→4 thread speed-up of the matching
//! half.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::synth::synthetic_chain;
use std::hint::black_box;
use stimuli::Testcase;
use tdf_sim::{RunLimits, SimTime};
use testgen::{ChannelSpec, GenConfig, Generator};

fn run_generation(length: usize, threads: usize, iterations: usize, candidates: usize) -> usize {
    let spec = synthetic_chain(length, true);
    let design = spec.build_design().unwrap();
    let build = move |tc: &Testcase| {
        spec.build_cluster_with(Box::new(
            tc.signal("in").into_source("stim", SimTime::from_us(1)),
        ))
    };
    let cfg = GenConfig {
        seed: 0xBEEF,
        max_iterations: iterations,
        candidates_per_iteration: candidates,
        stagnation_limit: iterations, // never stop early: fixed work per run
        limits: RunLimits::none().with_max_activations(1_000_000),
        threads,
        target_exercised: None,
        ..GenConfig::default()
    };
    let out = Generator::new(
        design,
        vec![ChannelSpec::new("in", -2.0, 8.0)],
        SimTime::from_us(50),
        build,
        cfg,
    )
    .unwrap()
    .run();
    out.coverage.exercised_count()
}

fn bench_testgen(c: &mut Criterion) {
    const ITERS: usize = 2;
    const CANDS: usize = 8;
    let mut group = c.benchmark_group("testgen_candidates");
    group.sample_size(10);
    // Every run evaluates exactly ITERS * CANDS candidates (stagnation is
    // disabled and the synthetic design is never fully covered).
    group.throughput(Throughput::Elements((ITERS * CANDS) as u64));

    for length in [2usize, 6] {
        for threads in [1usize, 4] {
            group.bench_function(format!("chain{length}/threads{threads}"), |b| {
                b.iter(|| black_box(run_generation(black_box(length), threads, ITERS, CANDS)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_testgen);
criterion_main!(benches);

//! Subsumption-reduced hot-path tracking versus full tracking, on compact
//! event logs captured from the three case studies (sensor, window
//! lifter, buck-boost). Both automata produce byte-identical raw results
//! (asserted before timing); the reduced one tracks only the unsubsumed
//! frontier per event and reconstructs the dropped bits at finish time.
//! Throughput is events matched per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::{analyse, Design, MatchAutomaton, MatchMode, Tracking};
use std::hint::black_box;
use std::sync::Arc;
use tdf_sim::{CompactEvent, CompactRecordingSink, Simulator};

use ams_models::{buck_boost, sensor, window_lifter};
use stimuli::Testcase;

/// One case study: design + the concatenated compact logs of its initial
/// testsuite iteration, over the design's interner.
struct Capture {
    name: &'static str,
    design: Design,
    compact: Vec<CompactEvent>,
}

fn capture<F>(name: &'static str, design: Design, tcs: &[Testcase], build: F) -> Capture
where
    F: Fn(&Testcase) -> tdf_sim::Cluster,
{
    let interner = Arc::clone(design.interner());
    let mut compact = Vec::new();
    for tc in tcs {
        let mut cluster = build(tc);
        cluster.set_interner(Arc::clone(&interner));
        let mut sim = Simulator::new(cluster).unwrap();
        let mut sink = CompactRecordingSink::new(Arc::clone(&interner));
        sim.run(tc.duration, &mut sink).unwrap();
        compact.extend(sink.events);
    }
    assert!(!compact.is_empty(), "{name}: no events captured");
    Capture {
        name,
        design,
        compact,
    }
}

fn captures() -> Vec<Capture> {
    vec![
        capture(
            "sensor",
            sensor::sensor_design(sensor::BUGGY_ADC_FULL_SCALE).unwrap(),
            &sensor::sensor_testcases(),
            |tc| {
                sensor::build_sensor_cluster(tc, sensor::BUGGY_ADC_FULL_SCALE)
                    .unwrap()
                    .0
            },
        ),
        capture(
            "window_lifter",
            window_lifter::lifter_design().unwrap(),
            window_lifter::lifter_suite().up_to(0),
            |tc| window_lifter::build_lifter_cluster(tc).unwrap().0,
        ),
        capture(
            "buck_boost",
            buck_boost::bb_design().unwrap(),
            buck_boost::bb_suite().up_to(0),
            |tc| buck_boost::build_bb_cluster(tc).unwrap().0,
        ),
    ]
}

fn bench_subsumption(c: &mut Criterion) {
    for cap in captures() {
        let statics = analyse(&cap.design);
        let full = MatchAutomaton::with_tracking(&cap.design, &statics, Tracking::Full);
        let reduced = MatchAutomaton::with_tracking(&cap.design, &statics, Tracking::Reduced);
        let n = statics.associations.len();
        let dropped = statics.subsumption.dropped_count();
        eprintln!(
            "{}: {} associations, frontier {} ({} dropped), {} events",
            cap.name,
            n,
            n - dropped,
            dropped,
            cap.compact.len()
        );
        assert!(dropped > 0, "{}: reduction must be non-trivial", cap.name);
        // Identical raw results on the same log, or the timing is moot.
        let (rf, bf) = full.analyse_with_coverage(&cap.compact, MatchMode::Lenient);
        let (rr, br) = reduced.analyse_with_coverage(&cap.compact, MatchMode::Lenient);
        assert_eq!(rf.exercised, rr.exercised);
        assert_eq!(bf, br);

        let mut group = c.benchmark_group(format!("subsumption/{}", cap.name));
        group.throughput(Throughput::Elements(cap.compact.len() as u64));
        group.bench_function("full", |b| {
            b.iter(|| {
                black_box(full.analyse_with_coverage(black_box(&cap.compact), MatchMode::Lenient))
            })
        });
        group.bench_function("reduced", |b| {
            b.iter(|| {
                black_box(
                    reduced.analyse_with_coverage(black_box(&cap.compact), MatchMode::Lenient),
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_subsumption);
criterion_main!(benches);

//! Streaming assertion-monitor overhead (E12): the PID loop end to end
//! through `DftSession::run_testcase` with 0, 1 and 8 monitored
//! assertions, plus the raw `MonitorBank::observe` hot path in samples
//! per second.
//!
//! With zero assertions the kernel's sample tap is off
//! (`wants_samples() == false`), so the 0-assertion row is the pre-PR
//! pipeline — the 1- and 8-assertion rows price the tap plus the
//! per-sample automata.

use ams_models::pid::{build_pid_cluster, pid_assertions, pid_design, PidTuning, PID_TARGET};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::{AssertionExpr, AssertionSpec, DftSession, MonitorBank};
use std::hint::black_box;
use stimuli::{Signal, Testcase};
use tdf_sim::{Interner, Sample, SimTime, Value};

/// 0, 1 or 8 properties over the loop's two streams.
fn assertion_set(n: usize) -> Vec<AssertionSpec> {
    let mut specs = pid_assertions();
    for i in 0..8 {
        let level = 30.0 + i as f64;
        specs.push(AssertionSpec::new(
            format!("aux_{i}"),
            AssertionExpr::never_above("plant.op_y", level),
        ));
    }
    specs.truncate(n);
    specs
}

fn bench_session_overhead(c: &mut Criterion) {
    let tc = Testcase::new("bench", SimTime::from_ms(100))
        .with(ams_models::pid::REF, Signal::Constant(PID_TARGET));
    let mut group = c.benchmark_group("monitor/pid_session");
    for n in [0usize, 1, 8] {
        let mut session = DftSession::new(pid_design().unwrap())
            .unwrap()
            .with_assertions(assertion_set(n));
        group.bench_function(format!("assertions_{n}"), |b| {
            b.iter(|| {
                session.clear_runs();
                let (cluster, _) = build_pid_cluster(&tc, PidTuning::nominal()).unwrap();
                black_box(
                    session
                        .run_testcase(&tc.name, cluster, tc.duration)
                        .unwrap(),
                );
            })
        });
    }
    group.finish();
}

fn bench_bank_throughput(c: &mut Criterion) {
    const SAMPLES: u64 = 100_000;
    let interner = Interner::default();
    let sym = interner.intern("plant.op_y");
    let mut group = c.benchmark_group("monitor/bank_observe");
    group.throughput(Throughput::Elements(SAMPLES));
    for n in [1usize, 8] {
        let mut bank = MonitorBank::compile(&assertion_set(n), &interner);
        group.bench_function(format!("assertions_{n}"), |b| {
            b.iter(|| {
                for k in 0..SAMPLES {
                    let v = (k % 23) as f64;
                    bank.observe(
                        SimTime::from_fs(k * 100_000_000),
                        sym,
                        &Sample::new(Value::Double(v)),
                    );
                }
                black_box(bank.samples_observed())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_overhead, bench_bank_throughput);
criterion_main!(benches);

//! Streamed vs buffered end-to-end testcase pipeline latency on the
//! buck-boost converter (E9): under [`MatchStrategy::Streamed`] the
//! session matches def/use events as the kernel emits them through a
//! `MatchingSink`, so one `run_testcase` call *is* `stage.simulate +
//! stage.match` with no materialized log; under
//! [`MatchStrategy::Buffered`] it records the full compact log into a
//! pooled `Vec` first and matches afterwards.
//!
//! The `long_horizon` group runs the same testcase at 10x duration — the
//! regime the streaming pipeline exists for, where the buffered log grows
//! linearly with simulated time while the streamed path stays at
//! O(automaton state).

use ams_models::buck_boost::{bb_design, bb_suite, build_bb_cluster};
use criterion::{criterion_group, criterion_main, Criterion};
use dft_core::{render_table1, DftSession, MatchStrategy};
use std::hint::black_box;
use stimuli::Testcase;

/// A session per strategy, plus the testcase both replay.
fn session(strategy: MatchStrategy) -> DftSession {
    let mut s = DftSession::new(bb_design().unwrap()).unwrap();
    s.set_match_strategy(strategy);
    s
}

fn run_once(session: &mut DftSession, tc: &Testcase) {
    session.clear_runs();
    let (cluster, _) = build_bb_cluster(tc).unwrap();
    black_box(
        session
            .run_testcase(&tc.name, cluster, tc.duration)
            .unwrap(),
    );
}

fn bench_streaming(c: &mut Criterion) {
    let suite = bb_suite();
    let tc = suite.up_to(0)[0].clone();
    let mut long = tc.clone();
    long.duration = tc.duration * 10;

    // The comparison is only meaningful if both strategies report
    // identically on this workload.
    let mut streamed = session(MatchStrategy::Streamed);
    let mut buffered = session(MatchStrategy::Buffered);
    run_once(&mut streamed, &tc);
    run_once(&mut buffered, &tc);
    assert_eq!(
        render_table1(&streamed.coverage()),
        render_table1(&buffered.coverage()),
        "strategies disagree on buck-boost"
    );

    let mut group = c.benchmark_group("streaming/buck_boost");
    group.bench_function("streamed", |b| b.iter(|| run_once(&mut streamed, &tc)));
    group.bench_function("buffered", |b| b.iter(|| run_once(&mut buffered, &tc)));
    group.finish();

    let mut group = c.benchmark_group("streaming/buck_boost_long_horizon_10x");
    group.sample_size(10);
    group.bench_function("streamed", |b| b.iter(|| run_once(&mut streamed, &long)));
    group.bench_function("buffered", |b| b.iter(|| run_once(&mut buffered, &long)));
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);

//! Benchmarks the static stage (stage 1 of Fig. 3) on the three case-study
//! designs: association extraction + Strong/Firm/PFirm/PWeak
//! classification. The paper claims "a scalable static analysis"; this
//! bench quantifies it on real VPs (see `scalability.rs` for the sweep).

use ams_models::{buck_boost, sensor, window_lifter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::{path_facts, path_facts_uncached, Cfg, ReachingDefs};
use dft_core::synth::synthetic_chain;
use std::hint::black_box;

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_analysis");

    let sensor_design = sensor::sensor_design(sensor::BUGGY_ADC_FULL_SCALE).unwrap();
    group.bench_function("sensor_system", |b| {
        b.iter(|| black_box(dft_core::analyse(black_box(&sensor_design))))
    });

    let lifter_design = window_lifter::lifter_design().unwrap();
    group.bench_function("window_lifter", |b| {
        b.iter(|| black_box(dft_core::analyse(black_box(&lifter_design))))
    });

    let bb_design = buck_boost::bb_design().unwrap();
    group.bench_function("buck_boost", |b| {
        b.iter(|| black_box(dft_core::analyse(black_box(&bb_design))))
    });

    group.finish();
}

/// Cached transitive closure vs. per-query BFS for the du-path facts of
/// every reaching pair of a synthetic chain — the O(pairs × defs × E)
/// hot spot the cache removes.
fn bench_reachability_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability_cache");
    for &n in &[8usize, 32] {
        let spec = synthetic_chain(n, true);
        let tu = minic::parse(&spec.source).unwrap();
        let flows: Vec<(Cfg, ReachingDefs)> = tu
            .functions
            .iter()
            .map(|f| {
                let cfg = Cfg::from_function(f).looped();
                let rd = ReachingDefs::compute(&cfg);
                (cfg, rd)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("cached", n), &flows, |b, flows| {
            b.iter(|| {
                let mut non_du = 0usize;
                for (cfg, rd) in flows {
                    for pair in rd.pairs() {
                        non_du += usize::from(path_facts(cfg, rd, pair).has_non_du_path);
                    }
                }
                black_box(non_du)
            })
        });
        group.bench_with_input(BenchmarkId::new("uncached", n), &flows, |b, flows| {
            b.iter(|| {
                let mut non_du = 0usize;
                for (cfg, rd) in flows {
                    for pair in rd.pairs() {
                        non_du += usize::from(path_facts_uncached(cfg, rd, pair).has_non_du_path);
                    }
                }
                black_box(non_du)
            })
        });
    }
    group.finish();
}

/// Whole-stage thread scaling on a synthetic chain (the `DFT_THREADS`
/// knob, pinned explicitly here).
fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_thread_scaling");
    let design = synthetic_chain(32, true).build_design().unwrap();
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(dft_core::analyse_with_threads(black_box(&design), threads)))
            },
        );
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.bench_function("parse_sensor_src", |b| {
        b.iter(|| minic::parse(black_box(sensor::SENSOR_SRC)).unwrap())
    });
    group.bench_function("parse_lifter_src", |b| {
        b.iter(|| minic::parse(black_box(window_lifter::WINDOW_LIFTER_SRC)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_static,
    bench_reachability_cache,
    bench_thread_scaling,
    bench_parse
);
criterion_main!(benches);

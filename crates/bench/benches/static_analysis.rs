//! Benchmarks the static stage (stage 1 of Fig. 3) on the three case-study
//! designs: association extraction + Strong/Firm/PFirm/PWeak
//! classification. The paper claims "a scalable static analysis"; this
//! bench quantifies it on real VPs (see `scalability.rs` for the sweep).

use ams_models::{buck_boost, sensor, window_lifter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_analysis");

    let sensor_design = sensor::sensor_design(sensor::BUGGY_ADC_FULL_SCALE).unwrap();
    group.bench_function("sensor_system", |b| {
        b.iter(|| black_box(dft_core::analyse(black_box(&sensor_design))))
    });

    let lifter_design = window_lifter::lifter_design().unwrap();
    group.bench_function("window_lifter", |b| {
        b.iter(|| black_box(dft_core::analyse(black_box(&lifter_design))))
    });

    let bb_design = buck_boost::bb_design().unwrap();
    group.bench_function("buck_boost", |b| {
        b.iter(|| black_box(dft_core::analyse(black_box(&bb_design))))
    });

    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.bench_function("parse_sensor_src", |b| {
        b.iter(|| minic::parse(black_box(sensor::SENSOR_SRC)).unwrap())
    });
    group.bench_function("parse_lifter_src", |b| {
        b.iter(|| minic::parse(black_box(window_lifter::WINDOW_LIFTER_SRC)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_static, bench_parse);
criterion_main!(benches);

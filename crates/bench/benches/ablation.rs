//! Ablation A1: TDF-aware classification versus the classical
//! (TDF-unaware) all-du baseline. Measures both the analysis cost and —
//! via the reported association counts — what the classical criterion
//! misses (every cross-model pair).

use ams_models::{buck_boost, sensor, window_lifter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_classification");

    let designs = [
        (
            "sensor",
            sensor::sensor_design(sensor::BUGGY_ADC_FULL_SCALE).unwrap(),
        ),
        ("window_lifter", window_lifter::lifter_design().unwrap()),
        ("buck_boost", buck_boost::bb_design().unwrap()),
    ];

    for (name, design) in &designs {
        group.bench_function(format!("tdf_aware/{name}"), |b| {
            b.iter(|| black_box(dft_core::analyse(black_box(design)).len()))
        });
        group.bench_function(format!("classical/{name}"), |b| {
            b.iter(|| black_box(dft_core::classical_pairs(black_box(design)).len()))
        });
    }
    group.finish();

    // Print the blind-spot summary once (shape evidence for EXPERIMENTS.md).
    for (name, design) in &designs {
        let tdf = dft_core::analyse(design);
        let classical = dft_core::classical_pairs(design);
        let cross = tdf
            .associations
            .iter()
            .filter(|a| !a.assoc.is_intra_model())
            .count();
        eprintln!(
            "[ablation] {name}: TDF-aware {} pairs ({} cross-model), classical {} pairs",
            tdf.len(),
            cross,
            classical.len()
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

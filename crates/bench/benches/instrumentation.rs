//! Ablation A3: instrumentation overhead. The paper argues its
//! `parallel_print()` insertion is "less intrusive"; here we measure the
//! cost of def/use event emission by simulating the sensor system with the
//! recording sink versus the null sink (uninstrumented baseline).

use ams_models::sensor::{build_sensor_cluster, sensor_testcases, BUGGY_ADC_FULL_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdf_sim::{NullSink, RecordingSink, Simulator};

fn bench_instrumentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("instrumentation");
    group.sample_size(30);
    let tc = &sensor_testcases()[1]; // TC2: the busiest testcase

    group.bench_function("uninstrumented_null_sink", |b| {
        b.iter(|| {
            let (cluster, _) = build_sensor_cluster(tc, BUGGY_ADC_FULL_SCALE).unwrap();
            let mut sim = Simulator::new(cluster).unwrap();
            sim.run(tc.duration, &mut NullSink).unwrap();
            black_box(sim.stats().activations)
        })
    });

    group.bench_function("instrumented_recording_sink", |b| {
        b.iter(|| {
            let (cluster, _) = build_sensor_cluster(tc, BUGGY_ADC_FULL_SCALE).unwrap();
            let mut sim = Simulator::new(cluster).unwrap();
            let mut sink = RecordingSink::new();
            sim.run(tc.duration, &mut sink).unwrap();
            black_box(sink.events.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_instrumentation);
criterion_main!(benches);

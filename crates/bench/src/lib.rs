//! # dft-bench — experiment harness
//!
//! Shared helpers behind the `table1`/`table2` binaries and the Criterion
//! benches: replaying a [`Testsuite`] iteration by iteration against a
//! [`DftSession`] and collecting the per-iteration Table-II rows.

#![warn(missing_docs)]

use dft_core::{Design, DftError, DftSession, Table2Row};
use stimuli::{Testcase, Testsuite};
use tdf_sim::Cluster;

/// Replays `suite` against `design` iteration by iteration, building one
/// [`Table2Row`] per iteration. `build` constructs a fresh cluster for a
/// testcase (stimulus sources differ per testcase).
///
/// # Errors
///
/// Propagates analysis, elaboration and simulation errors.
pub fn run_suite_iterations<F>(
    design: Design,
    suite: &Testsuite,
    mut build: F,
) -> Result<(DftSession, Vec<Table2Row>), DftError>
where
    F: FnMut(&Testcase) -> Result<Cluster, DftError>,
{
    let mut session = DftSession::new(design)?;
    let mut rows = Vec::new();
    let mut done = 0;
    for it in 0..suite.iterations() {
        for tc in &suite.up_to(it)[done..] {
            let cluster = build(tc)?;
            session.run_testcase(&tc.name, cluster, tc.duration)?;
        }
        done = suite.size_at(it);
        let cov = session.coverage();
        rows.push(Table2Row::from_coverage(
            &suite.name,
            it,
            suite.size_at(it),
            &cov,
        ));
    }
    Ok((session, rows))
}

/// Runs the whole window-lifter study (E2) and returns its rows.
///
/// # Errors
///
/// Propagates analysis, elaboration and simulation errors.
pub fn window_lifter_rows() -> Result<Vec<Table2Row>, DftError> {
    use ams_models::window_lifter::{build_lifter_cluster, lifter_design, lifter_suite};
    let suite = lifter_suite();
    let (_, rows) = run_suite_iterations(lifter_design()?, &suite, |tc| {
        build_lifter_cluster(tc).map(|(c, _)| c)
    })?;
    Ok(rows)
}

/// Runs the whole buck-boost study (E3) and returns its rows.
///
/// # Errors
///
/// Propagates analysis, elaboration and simulation errors.
pub fn buck_boost_rows() -> Result<Vec<Table2Row>, DftError> {
    use ams_models::buck_boost::{bb_design, bb_suite, build_bb_cluster};
    let suite = bb_suite();
    let (_, rows) = run_suite_iterations(bb_design()?, &suite, |tc| {
        build_bb_cluster(tc).map(|(c, _)| c)
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buck_boost_rows_have_paper_shape() {
        let rows = buck_boost_rows().unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].tests, 10);
        assert_eq!(rows[3].tests, 24);
        // Coverage grows monotonically.
        assert!(rows
            .windows(2)
            .all(|w| w[0].dynamic_count <= w[1].dynamic_count));
        // PFirm/PWeak at 100% from iteration 0 (paper Table II).
        assert_eq!(rows[0].pfirm_pct, Some(100.0));
        assert_eq!(rows[0].pweak_pct, Some(100.0));
    }
}

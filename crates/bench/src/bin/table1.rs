//! Regenerates **Table I** of the paper: the SystemC-AMS TDF specific data
//! flow associations of the Fig. 2 sensor system, with one column per
//! testcase (TC1, TC2, TC3).
//!
//! Run with: `cargo run -p dft-bench --bin table1`

use ams_models::sensor::{
    build_sensor_cluster, sensor_design, sensor_testcases, BUGGY_ADC_FULL_SCALE,
};
use dft_core::{render_summary, render_table1, Classification, DftSession, MetricsReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = sensor_design(BUGGY_ADC_FULL_SCALE)?;
    let mut session = DftSession::new(design)?;

    for tc in sensor_testcases() {
        let (cluster, _) = build_sensor_cluster(&tc, BUGGY_ADC_FULL_SCALE)?;
        session.run_testcase(&tc.name, cluster, tc.duration)?;
    }

    let cov = session.coverage();
    println!("TABLE I");
    println!("SystemC-AMS TDF models specific data flow associations — reference Fig. 2\n");
    println!("{}", render_table1(&cov));
    println!("TC: Testcase (test input signal)   (x) = exercised   (-) = not exercised\n");
    println!("{}", render_summary(&cov));

    for class in Classification::ALL {
        let (c, t) = cov.class_ratio(class);
        println!("{class}: {c}/{t} exercised");
    }

    let report = MetricsReport::capture();
    if !report.is_empty() {
        println!(
            "\npipeline stage timings (DFT_METRICS):\n\n{}",
            report.to_text()
        );
    }
    Ok(())
}

//! Regenerates **Table II** of the paper: the case-study summary over four
//! testsuite-refinement iterations for the car window lifter and the
//! buck-boost converter.
//!
//! Run with: `cargo run --release -p dft-bench --bin table2`

use dft_bench::{buck_boost_rows, window_lifter_rows};
use dft_core::{render_table2, MetricsReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TABLE II");
    println!("Case study: car window lifter system and buck-boost converter\n");

    let mut rows = window_lifter_rows()?;
    rows.extend(buck_boost_rows()?);
    println!("{}", render_table2(&rows));
    println!("T: Total   S: Strong   F: Firm   PF: PFirm   PW: PWeak");

    let report = MetricsReport::capture();
    if !report.is_empty() {
        println!(
            "\npipeline stage timings (DFT_METRICS):\n\n{}",
            report.to_text()
        );
    }
    Ok(())
}

//! # ams-models — the case-study AMS virtual prototypes
//!
//! Rust reconstructions of the three designs the DATE 2019 paper evaluates:
//!
//! * [`sensor`] — the Fig. 1/Fig. 2 IoT **sensor system** (TS, HS, delay,
//!   mux, gain, saturating 9-bit ADC, control), authored with the paper's
//!   exact line numbers so Table I regenerates verbatim;
//! * [`window_lifter`] — the **car window lifter** ECU + window environment
//!   (button decoder, motor, mechanics, current filter, ADC, over-current
//!   detector, microcontroller) with its 17→26-testcase suite;
//! * [`buck_boost`] — the **buck-boost converter** (power stage, mode
//!   controller, PWM generator, sense filter) with its 10→24-testcase
//!   suite;
//! * [`pid`] — a PID-regulated first-order plant with hand-written
//!   runtime assertions (settling time, overshoot, control effort) for
//!   the streaming monitor, plus a detuned fault-injection variant.
//!
//! Each module exposes `*_design()` (for static analysis), a
//! `build_*_cluster(testcase)` factory (for simulation), and the paper's
//! testsuites.

#![warn(missing_docs)]

pub mod buck_boost;
pub mod pid;
pub mod sensor;
pub mod window_lifter;

//! A PID-regulated first-order plant — the runtime-verification showcase
//! design. Unlike the three paper case studies, this loop ships with
//! *hand-written assertions* ([`pid_assertions`]): a settling-time
//! property, an overshoot bound and a control-effort bound, all evaluated
//! by the streaming monitor in the same simulation pass as coverage.
//!
//! The controller's gains are cluster parameters ([`PidTuning`]), so a
//! mis-tuned build is the natural fault-injection vector: the nominal
//! tuning satisfies every assertion, while [`PidTuning::detuned`] (an
//! aggressive integrator) drives the plant past the overshoot bound and
//! the monitor pins the first violation instant.

use stimuli::{Signal, Testcase};
use tdf_interp::{Interface, InterpModule, TdfModelDef};
use tdf_sim::{Cluster, PortSpec, Probe, SimTime, TraceBuffer};

use dft_core::{AssertionExpr, AssertionSpec, Design, Result};

/// The loop's behavioural models: a PI-D controller and a first-order lag
/// plant closed through a one-sample feedback delay.
pub const PID_SRC: &str = "\
void pid::processing()
{
    double r = ip_ref;
    double y = ip_y;
    double err = r - y;
    m_i = m_i + err * m_ki;
    if (m_i > m_ilim) m_i = m_ilim;
    if (m_i < 0.0 - m_ilim) m_i = 0.0 - m_ilim;
    double d = (err - m_prev) * m_kd;
    m_prev = err;
    double u = err * m_kp + m_i + d;
    if (u > m_umax) u = m_umax;
    if (u < 0) u = 0;
    op_u = u;
}

void plant::processing()
{
    double u = ip_u;
    m_y = m_y + (u - m_y) * 0.08;
    op_y = m_y;
}
";

/// Module activation period of the loop.
pub const PID_TIMESTEP: SimTime = SimTime::from_us(100);

/// Stimulus channel: the reference (setpoint) the loop tracks.
pub const REF: &str = "ref";

/// The reference level the shipped testcases step to.
pub const PID_TARGET: f64 = 10.0;

/// Controller gains — the cluster parameters the fault-injection demo
/// perturbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidTuning {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per activation).
    pub ki: f64,
    /// Derivative gain (per activation).
    pub kd: f64,
    /// Anti-windup clamp on the integral term.
    pub ilim: f64,
}

impl PidTuning {
    /// The nominal tuning: settles on target with no overshoot beyond
    /// the assertion bound.
    #[must_use]
    pub fn nominal() -> Self {
        PidTuning {
            kp: 0.6,
            ki: 0.08,
            kd: 0.2,
            ilim: 12.0,
        }
    }

    /// The faulty tuning: an aggressive integrator whose anti-windup
    /// clamp is effectively disabled, so the wound-up integral carries
    /// the plant ~40% past the target — the monitor's prey.
    #[must_use]
    pub fn detuned() -> Self {
        PidTuning {
            kp: 0.6,
            ki: 0.6,
            kd: 0.0,
            ilim: 100.0,
        }
    }
}

/// The model interfaces of the loop under one tuning.
pub fn pid_model_defs(tuning: PidTuning) -> Vec<TdfModelDef> {
    vec![
        TdfModelDef::new(
            "pid",
            Interface::new()
                .input("ip_ref")
                .input_spec(PortSpec::new("ip_y").with_delay(1))
                .output("op_u")
                .member("m_i", 0.0)
                .member("m_prev", 0.0)
                .member("m_kp", tuning.kp)
                .member("m_ki", tuning.ki)
                .member("m_kd", tuning.kd)
                .member("m_ilim", tuning.ilim)
                .member("m_umax", 24.0),
        ),
        TdfModelDef::new(
            "plant",
            Interface::new()
                .input("ip_u")
                .output("op_y")
                .member("m_y", 0.0),
        ),
    ]
}

/// Observable outputs of a built loop cluster.
#[derive(Debug, Clone)]
pub struct PidProbes {
    /// Plant output (the regulated quantity).
    pub y: TraceBuffer,
    /// Controller output (control effort).
    pub u: TraceBuffer,
}

/// Builds the closed loop for one testcase (channel [`REF`]) under the
/// given tuning.
///
/// # Errors
///
/// Propagates parse/bind errors (none expected for the fixed source).
pub fn build_pid_cluster(tc: &Testcase, tuning: PidTuning) -> Result<(Cluster, PidProbes)> {
    let tu = minic::parse(PID_SRC)?;
    let mut cluster = Cluster::new("pid_loop");
    let src = cluster.add_module(Box::new(
        tc.signal(REF).into_source("ref_src", PID_TIMESTEP),
    ))?;
    let defs = pid_model_defs(tuning);
    let pid = cluster.add_module(Box::new(InterpModule::new(
        &tu,
        "pid",
        defs[0].interface.clone(),
    )?))?;
    let plant = cluster.add_module(Box::new(InterpModule::new(
        &tu,
        "plant",
        defs[1].interface.clone(),
    )?))?;
    cluster.connect(src, "op_out", pid, "ip_ref")?;
    cluster.connect(pid, "op_u", plant, "ip_u")?;
    cluster.connect(plant, "op_y", pid, "ip_y")?;

    let (p_y, y) = Probe::new("y_probe");
    let (p_u, u) = Probe::new("u_probe");
    let py = cluster.add_module(Box::new(p_y))?;
    let pu = cluster.add_module(Box::new(p_u))?;
    cluster.connect(plant, "op_y", py, "tdf_i")?;
    cluster.connect(pid, "op_u", pu, "tdf_i")?;
    Ok((cluster, PidProbes { y, u }))
}

/// The analysable [`Design`] of the loop (nominal member values — the
/// def-use structure does not depend on the tuning).
///
/// # Errors
///
/// Propagates parse errors (none expected for the fixed source).
pub fn pid_design() -> Result<Design> {
    let dummy = Testcase::new("elab", SimTime::from_ms(1));
    let (cluster, _) = build_pid_cluster(&dummy, PidTuning::nominal())?;
    Design::new(
        minic::parse(PID_SRC)?,
        pid_model_defs(PidTuning::nominal()),
        cluster.netlist(),
    )
}

/// The loop's testcases: an immediate step to [`PID_TARGET`] and the
/// same step delayed by 20 ms (both must meet the [`pid_assertions`]
/// settling deadline).
pub fn pid_testcases() -> Vec<Testcase> {
    let dur = SimTime::from_ms(100);
    vec![
        Testcase::new("step", dur).with(REF, Signal::Constant(PID_TARGET)),
        Testcase::new("step_late", dur).with(
            REF,
            Signal::Step {
                before: 0.0,
                after: PID_TARGET,
                at: SimTime::from_ms(20),
            },
        ),
    ]
}

/// The hand-written runtime properties of the step response, phrased
/// against the kernel's `module.port` sample streams:
///
/// * `settles` — `plant.op_y` stays within ±5% of the target for a
///   contiguous 10 ms window, achieved no later than 60 ms;
/// * `no_overshoot` — `plant.op_y` never exceeds the target by more
///   than 15%;
/// * `effort_bounded` — `pid.op_u` stays below the actuator ceiling.
pub fn pid_assertions() -> Vec<AssertionSpec> {
    vec![
        AssertionSpec::new(
            "settles",
            AssertionExpr::settles_by(
                "plant.op_y",
                PID_TARGET,
                PID_TARGET * 0.05,
                SimTime::from_ms(10),
                SimTime::from_ms(60),
            ),
        ),
        AssertionSpec::new(
            "no_overshoot",
            AssertionExpr::never_above("plant.op_y", PID_TARGET * 1.15),
        ),
        AssertionSpec::new(
            "effort_bounded",
            AssertionExpr::never_above("pid.op_u", 24.5),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::{analyse, DftSession, TestcaseSpec, Verdict};
    use tdf_sim::{NullSink, Simulator};

    fn step(name: &str) -> Testcase {
        Testcase::new(name, SimTime::from_ms(100)).with(REF, Signal::Constant(PID_TARGET))
    }

    #[test]
    fn design_analyses_with_associations() {
        let design = pid_design().unwrap();
        let sa = analyse(&design);
        assert!(sa.len() > 10, "got {}", sa.len());
    }

    #[test]
    fn nominal_tuning_settles_without_overshoot() {
        let t = step("nom");
        let (cluster, probes) = build_pid_cluster(&t, PidTuning::nominal()).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        let vals = probes.y.values_f64();
        let tail = &vals[vals.len() - 100..];
        let avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (avg - PID_TARGET).abs() < 0.3,
            "settles near {PID_TARGET}, got {avg:.2}"
        );
        assert!(probes.y.max_f64().unwrap() <= PID_TARGET * 1.15);
    }

    #[test]
    fn detuned_integrator_overshoots() {
        let t = step("det");
        let (cluster, probes) = build_pid_cluster(&t, PidTuning::detuned()).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        assert!(
            probes.y.max_f64().unwrap() > PID_TARGET * 1.15,
            "got {:.2}",
            probes.y.max_f64().unwrap()
        );
    }

    #[test]
    fn nominal_run_holds_every_assertion() {
        let mut session = DftSession::new(pid_design().unwrap())
            .unwrap()
            .with_assertions(pid_assertions());
        let t = step("nom");
        let (cluster, _) = build_pid_cluster(&t, PidTuning::nominal()).unwrap();
        session.run_testcase(&t.name, cluster, t.duration).unwrap();
        let verdicts = &session.runs()[0].verdicts;
        assert_eq!(verdicts.len(), 3);
        for v in verdicts {
            assert_eq!(v.verdict, Verdict::Holds, "{} must hold", v.name);
        }
    }

    #[test]
    fn fault_injected_tuning_fails_overshoot_at_a_pinned_instant() {
        let mut session = DftSession::new(pid_design().unwrap())
            .unwrap()
            .with_assertions(pid_assertions());
        let t = step("det");
        let (cluster, _) = build_pid_cluster(&t, PidTuning::detuned()).unwrap();
        session.run_testcase(&t.name, cluster, t.duration).unwrap();
        let verdicts = &session.runs()[0].verdicts;
        let overshoot = verdicts.iter().find(|v| v.name == "no_overshoot").unwrap();
        // The detuned loop first crosses 11.5 V on a fixed activation —
        // the monitor must report exactly that sample's timestamp.
        let expected = first_crossing_above(PID_TARGET * 1.15);
        assert_eq!(
            overshoot.verdict,
            Verdict::Fails {
                first_violation_time: expected
            },
            "first violation pinned to the crossing sample"
        );
        // Soundness: a failed property is never also reported as holding.
        assert!(verdicts
            .iter()
            .all(|v| v.verdict != Verdict::Holds || (v.name != "no_overshoot")));
    }

    /// Oracle for the pinned-violation test: replays the detuned loop
    /// through a probe and finds the first sample above `level`.
    fn first_crossing_above(level: f64) -> SimTime {
        let t = step("oracle");
        let (cluster, probes) = build_pid_cluster(&t, PidTuning::detuned()).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        probes
            .y
            .samples()
            .into_iter()
            .find(|(_, v)| v.as_f64() > level)
            .map(|(time, _)| time)
            .expect("detuned loop crosses the bound")
    }

    #[test]
    fn batch_and_single_runs_agree_on_pid_verdicts() {
        let t = step("batch");
        let build = || build_pid_cluster(&t, PidTuning::detuned()).unwrap().0;
        let mut single = DftSession::new(pid_design().unwrap())
            .unwrap()
            .with_assertions(pid_assertions());
        single.run_testcase(&t.name, build(), t.duration).unwrap();
        let mut batch = DftSession::new(pid_design().unwrap())
            .unwrap()
            .with_assertions(pid_assertions());
        let _ = batch.run_testcases(vec![TestcaseSpec::new(&t.name, build(), t.duration)]);
        assert_eq!(single.runs()[0].verdicts, batch.runs()[0].verdicts);
    }
}

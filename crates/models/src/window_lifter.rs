//! The car window lifter system of §VI-A: an ECU (button decoder,
//! microcontroller, soft-start driver, motor-current filter, current ADC,
//! over-current detector, diagnostic unit, status-LED controller) plus the
//! window environment (motor, mechanics). During a run
//! an obstacle can be inserted and removed at different times and window
//! positions; the detector must trip and the MCU must halt the motor.
//!
//! The cluster topology deliberately reproduces the paper's coverage
//! profile: every model-to-model link is either direct (Strong) or passes
//! the full filter→ADC chain (PWeak) — **no PFirm pairs exist**, matching
//! "There were no PFirm def-use pairs identified" in Table II.

use stimuli::{Signal, Testcase, Testsuite};
use tdf_interp::{Interface, InterpModule, TdfModelDef};
use tdf_sim::{Adc, Cluster, DefSite, LowPass, PortSpec, Probe, SimTime, TraceBuffer};

use dft_core::{Design, Result};

/// The ECU + window environment behavioural models.
pub const WINDOW_LIFTER_SRC: &str = "\
void updown::processing()
{
    bool up = ip_btn_up;
    bool down = ip_btn_down;
    int cmd = 0;
    if (up && !down) cmd = 1;
    else if (down && !up) cmd = -1;
    if (cmd == m_last) m_stable = m_stable + 1;
    else m_stable = 0;
    m_last = cmd;
    int out = 0;
    if (m_stable >= 2) out = cmd;
    op_cmd = out;
}

void mcu::processing()
{
    int cmd = ip_cmd;
    bool oc = ip_overcurrent;
    double pos = ip_position;
    bool at_end = ip_at_end;
    if (m_state == 3) {
        m_halt = m_halt - 1;
        if (m_halt <= 0) m_state = 0;
    } else if (oc) {
        m_state = 3;
        m_halt = 5;
    } else if (cmd == 1 && pos < 100) {
        m_state = 1;
    } else if (cmd == -1 && pos > 0) {
        m_state = 2;
    } else {
        m_state = 0;
    }
    if (at_end && m_state == 1 && pos >= 100) m_state = 0;
    if (at_end && m_state == 2 && pos <= 0) m_state = 0;
    double drive = 0;
    bool armed = false;
    if (m_state == 1) {
        drive = 12;
        armed = true;
    }
    if (m_state == 2) {
        drive = -12;
        armed = true;
    }
    op_drive = drive;
    op_armed.write(armed);
    op_status = m_state;
}

void motor::processing()
{
    double v = ip_drive;
    double load = ip_load;
    double target = v * 10;
    m_speed = m_speed + (target - m_speed) * 0.3;
    double stall = load * 20;
    double speed = m_speed;
    if (speed > 0) {
        speed = speed - stall;
        if (speed < 0) speed = 0;
    }
    if (speed < -120) speed = -120;
    if (speed > 120) speed = 120;
    double current = 0;
    if (v > 0.5 || v < -0.5) current = abs(v) * 0.2 + load * 1.5;
    op_current = current;
    op_speed = speed;
}

void window::processing()
{
    double sp = ip_speed;
    m_pos = m_pos + sp * 0.02;
    if (m_pos > 100) m_pos = 100;
    if (m_pos < 0) m_pos = 0;
    bool at_end = false;
    if (m_pos >= 100) at_end = true;
    if (m_pos <= 0) at_end = true;
    op_at_end.write(at_end);
    op_position = m_pos;
}

void detector::processing()
{
    bool armed = ip_armed;
    bool over = false;
    if (armed) {
        double code = ip_current_code;
        if (code > m_high) m_trip = m_trip + 3;
        else if (code > m_low) m_trip = m_trip + 1;
        else m_trip = 0;
    } else {
        m_trip = 0;
    }
    if (m_trip >= 3) {
        over = true;
        double peak = ip_current_code;
        if (peak > m_peak) m_peak = peak;
    }
    op_overcurrent.write(over);
}

void softstart::processing()
{
    double target = ip_target;
    double diff = target - m_out;
    double step = 3;
    if (diff > step) m_out = m_out + step;
    else if (diff < -step) m_out = m_out - step;
    else m_out = target;
    if (m_out > 12) m_out = 12;
    if (m_out < -12) m_out = -12;
    op_drive = m_out;
}

void diag::processing()
{
    bool oc = ip_overcurrent;
    double pos = ip_position;
    if (oc && !m_prev_oc) {
        m_events = m_events + 1;
        double code = ip_current_code;
        if (code > m_peak) m_peak = code;
        m_last_pos = pos;
    }
    m_prev_oc = oc;
    bool fault = false;
    if (m_events >= 3) fault = true;
    if (m_latched) fault = true;
    if (fault) m_latched = 1;
    op_fault.write(fault);
    op_events = m_events;
}

void ledctl::processing()
{
    int st = ip_status;
    bool fault = ip_fault;
    m_blink = m_blink + 1;
    if (m_blink >= 10) m_blink = 0;
    bool green = false;
    bool red = false;
    if (st == 1 || st == 2) green = true;
    if (st == 3) {
        if (m_blink < 5) red = true;
    }
    if (fault) red = true;
    op_led_green.write(green);
    op_led_red.write(red);
}
";

/// Netlist line of the current-filter output binding (`ecu_top:203`).
pub const FILTER_SITE_LINE: u32 = 203;
/// Netlist line of the current-ADC output binding (`ecu_top:206`).
pub const ADC_SITE_LINE: u32 = 206;

/// Module activation period of the window-lifter cluster.
pub const LIFTER_TIMESTEP: SimTime = SimTime::from_ms(1);

/// Stimulus channel: the "up" button.
pub const BTN_UP: &str = "btn_up";
/// Stimulus channel: the "down" button.
pub const BTN_DOWN: &str = "btn_down";
/// Stimulus channel: obstacle load on the motor (0 = free).
pub const LOAD: &str = "load";

/// The model interfaces of the window lifter.
pub fn lifter_model_defs() -> Vec<TdfModelDef> {
    vec![
        TdfModelDef::new(
            "updown",
            Interface::new()
                .input("ip_btn_up")
                .input("ip_btn_down")
                .output("op_cmd")
                .member("m_last", 0i64)
                .member("m_stable", 0i64),
        ),
        TdfModelDef::new(
            "mcu",
            Interface::new()
                .input("ip_cmd")
                .input_spec(PortSpec::new("ip_overcurrent").with_delay(1))
                .input_spec(PortSpec::new("ip_position").with_delay(1))
                .input_spec(PortSpec::new("ip_at_end").with_delay(1))
                .output("op_drive")
                .output("op_armed")
                .output("op_status")
                .member("m_state", 0i64)
                .member("m_halt", 0i64),
        ),
        TdfModelDef::new(
            "motor",
            Interface::new()
                .input("ip_drive")
                .input("ip_load")
                .output("op_current")
                .output("op_speed")
                .member("m_speed", 0.0),
        ),
        TdfModelDef::new(
            "window",
            Interface::new()
                .input("ip_speed")
                .output("op_at_end")
                .output("op_position")
                .member("m_pos", 0.0),
        ),
        TdfModelDef::new(
            "softstart",
            Interface::new()
                .input("ip_target")
                .output("op_drive")
                .member("m_out", 0.0),
        ),
        TdfModelDef::new(
            "diag",
            Interface::new()
                .input("ip_overcurrent")
                .input("ip_position")
                .input("ip_current_code")
                .output("op_fault")
                .output("op_events")
                .member("m_prev_oc", false)
                .member("m_events", 0i64)
                .member("m_peak", 0.0)
                .member("m_last_pos", 0.0)
                .member("m_latched", 0i64),
        ),
        TdfModelDef::new(
            "ledctl",
            Interface::new()
                .input("ip_status")
                .input("ip_fault")
                .output("op_led_green")
                .output("op_led_red")
                .member("m_blink", 0i64),
        ),
        TdfModelDef::new(
            "detector",
            Interface::new()
                .input("ip_armed")
                .input("ip_current_code")
                .output("op_overcurrent")
                .member("m_trip", 0i64)
                .member("m_peak", 0i64)
                .member("m_high", 160i64)
                .member("m_low", 90i64),
        ),
    ]
}

/// Observable outputs of a built window-lifter cluster.
#[derive(Debug, Clone)]
pub struct LifterProbes {
    /// Window position (0 = bottom, 100 = top).
    pub position: TraceBuffer,
    /// Motor drive voltage from the MCU.
    pub drive: TraceBuffer,
    /// Over-current detector output.
    pub overcurrent: TraceBuffer,
    /// Status LED ("moving").
    pub led_green: TraceBuffer,
    /// Fault/halt LED.
    pub led_red: TraceBuffer,
    /// Diagnostic event counter.
    pub events: TraceBuffer,
}

/// Builds the window-lifter cluster for one testcase (channels [`BTN_UP`],
/// [`BTN_DOWN`], [`LOAD`]).
///
/// # Errors
///
/// Propagates parse/bind errors (none expected for the fixed source).
pub fn build_lifter_cluster(tc: &Testcase) -> Result<(Cluster, LifterProbes)> {
    let tu = minic::parse(WINDOW_LIFTER_SRC)?;
    let mut cluster = Cluster::new("ecu_top");

    let up_src = cluster.add_module(Box::new(
        tc.signal(BTN_UP).into_source("btn_up_src", LIFTER_TIMESTEP),
    ))?;
    let down_src = cluster.add_module(Box::new(
        tc.signal(BTN_DOWN)
            .into_source("btn_down_src", LIFTER_TIMESTEP),
    ))?;
    let load_src = cluster.add_module(Box::new(
        tc.signal(LOAD).into_source("load_src", LIFTER_TIMESTEP),
    ))?;

    let mut ids = std::collections::HashMap::new();
    for def in lifter_model_defs() {
        let m = InterpModule::new(&tu, &def.model, def.interface.clone())?;
        ids.insert(def.model.clone(), cluster.add_module(Box::new(m))?);
    }
    let (updown, mcu, motor, window, detector) = (
        ids["updown"],
        ids["mcu"],
        ids["motor"],
        ids["window"],
        ids["detector"],
    );
    let (softstart, diag, ledctl) = (ids["softstart"], ids["diag"], ids["ledctl"]);

    let filt = cluster.add_module(Box::new(LowPass::new(
        "i_current_filter",
        0.6,
        DefSite::new("ecu_top", FILTER_SITE_LINE),
    )))?;
    let adc = cluster.add_module(Box::new(Adc::new(
        "i_current_adc",
        8,
        10.0,
        DefSite::new("ecu_top", ADC_SITE_LINE),
    )))?;

    cluster.connect(up_src, "op_out", updown, "ip_btn_up")?;
    cluster.connect(down_src, "op_out", updown, "ip_btn_down")?;
    cluster.connect(updown, "op_cmd", mcu, "ip_cmd")?;
    cluster.connect(mcu, "op_drive", softstart, "ip_target")?;
    cluster.connect(softstart, "op_drive", motor, "ip_drive")?;
    cluster.connect(load_src, "op_out", motor, "ip_load")?;
    cluster.connect(motor, "op_current", filt, "tdf_i")?;
    cluster.connect(filt, "tdf_o", adc, "adc_i")?;
    cluster.connect(adc, "adc_o", detector, "ip_current_code")?;
    cluster.connect(mcu, "op_armed", detector, "ip_armed")?;
    cluster.connect(detector, "op_overcurrent", mcu, "ip_overcurrent")?;
    cluster.connect(motor, "op_speed", window, "ip_speed")?;
    cluster.connect(window, "op_position", mcu, "ip_position")?;
    cluster.connect(window, "op_at_end", mcu, "ip_at_end")?;
    cluster.connect(detector, "op_overcurrent", diag, "ip_overcurrent")?;
    cluster.connect(window, "op_position", diag, "ip_position")?;
    cluster.connect(adc, "adc_o", diag, "ip_current_code")?;
    cluster.connect(mcu, "op_status", ledctl, "ip_status")?;
    cluster.connect(diag, "op_fault", ledctl, "ip_fault")?;

    let (p_pos, position) = Probe::new("pos_probe");
    let (p_drv, drive) = Probe::new("drive_probe");
    let (p_oc, overcurrent) = Probe::new("oc_probe");
    let (p_grn, led_green) = Probe::new("green_probe");
    let (p_red, led_red) = Probe::new("red_probe");
    let (p_ev, events) = Probe::new("events_probe");
    let pp = cluster.add_module(Box::new(p_pos))?;
    let pd = cluster.add_module(Box::new(p_drv))?;
    let po = cluster.add_module(Box::new(p_oc))?;
    let pg = cluster.add_module(Box::new(p_grn))?;
    let pr = cluster.add_module(Box::new(p_red))?;
    let pe = cluster.add_module(Box::new(p_ev))?;
    cluster.connect(window, "op_position", pp, "tdf_i")?;
    cluster.connect(mcu, "op_drive", pd, "tdf_i")?;
    cluster.connect(detector, "op_overcurrent", po, "tdf_i")?;
    cluster.connect(ledctl, "op_led_green", pg, "tdf_i")?;
    cluster.connect(ledctl, "op_led_red", pr, "tdf_i")?;
    cluster.connect(diag, "op_events", pe, "tdf_i")?;

    Ok((
        cluster,
        LifterProbes {
            position,
            drive,
            overcurrent,
            led_green,
            led_red,
            events,
        },
    ))
}

/// The analysable [`Design`] of the window lifter.
///
/// # Errors
///
/// Propagates parse errors (none expected for the fixed source).
pub fn lifter_design() -> Result<Design> {
    let dummy = Testcase::new("elab", SimTime::from_ms(1));
    let (cluster, _) = build_lifter_cluster(&dummy)?;
    let tu = minic::parse(WINDOW_LIFTER_SRC)?;
    Design::new(tu, lifter_model_defs(), cluster.netlist())
}

fn press(channel: &str, from_ms: u64, to_ms: u64) -> (String, Signal) {
    (
        channel.to_owned(),
        Signal::Piecewise(vec![
            (SimTime::ZERO, 0.0),
            (SimTime::from_ms(from_ms), 0.0),
            (SimTime::from_ms(from_ms) + SimTime::from_us(1), 1.0),
            (SimTime::from_ms(to_ms), 1.0),
            (SimTime::from_ms(to_ms) + SimTime::from_us(1), 0.0),
        ]),
    )
}

fn tc(name: &str, dur_ms: u64, channels: Vec<(String, Signal)>) -> Testcase {
    let mut t = Testcase::new(name, SimTime::from_ms(dur_ms));
    for (c, s) in channels {
        t = t.with(c, s);
    }
    t
}

/// The window-lifter testsuite with the paper's iteration sizes:
/// 17 initial testcases, then +3 / +3 / +3 (17 → 20 → 23 → 26, Table II).
///
/// Iteration 0 exercises normal up/down movement; later iterations add the
/// obstacle scenarios (over-current trip and MCU halt), soft-obstacle and
/// down-side cases, and end-stop travel — the branches the initial suite
/// misses.
pub fn lifter_suite() -> Testsuite {
    let mut suite = Testsuite::new("Car Window Lifter");

    // Iteration 0: 17 movement cases, no obstacle.
    let mut iter0 = Vec::new();
    for (i, (start, stop)) in [
        (2u64, 10u64),
        (2, 20),
        (2, 30),
        (5, 15),
        (5, 40),
        (10, 25),
        (1, 8),
        (3, 50),
    ]
    .iter()
    .enumerate()
    {
        iter0.push(tc(
            &format!("up_{i}"),
            80,
            vec![press(BTN_UP, *start, *stop)],
        ));
    }
    for (i, (start, stop)) in [(2u64, 12u64), (4, 25), (6, 35), (1, 6)].iter().enumerate() {
        iter0.push(tc(
            &format!("down_{i}"),
            80,
            vec![press(BTN_DOWN, *start, *stop)],
        ));
    }
    iter0.push(tc("idle", 30, vec![]));
    iter0.push(tc(
        "both_buttons",
        40,
        vec![press(BTN_UP, 2, 30), press(BTN_DOWN, 2, 30)],
    ));
    iter0.push(tc(
        "flicker",
        40,
        vec![(
            BTN_UP.to_owned(),
            Signal::Pwm {
                low: 0.0,
                high: 1.0,
                period: SimTime::from_ms(2),
                duty: 0.5,
            },
        )],
    ));
    iter0.push(tc("blip", 30, vec![press(BTN_UP, 2, 3)]));
    iter0.push(tc(
        "load_noise_idle",
        30,
        vec![(
            LOAD.to_owned(),
            Signal::Noise {
                lo: 0.0,
                hi: 0.2,
                seed: 7,
                hold: SimTime::from_ms(1),
            },
        )],
    ));
    assert_eq!(iter0.len(), 17);
    suite.add_iteration(iter0);

    // Iteration 1: obstacle while closing, at different times/positions.
    suite.add_iteration(vec![
        tc(
            "obstacle_early",
            100,
            vec![
                press(BTN_UP, 2, 90),
                (
                    LOAD.to_owned(),
                    Signal::Step {
                        before: 0.0,
                        after: 4.0,
                        at: SimTime::from_ms(15),
                    },
                ),
            ],
        ),
        tc(
            "obstacle_late",
            120,
            vec![
                press(BTN_UP, 2, 110),
                (
                    LOAD.to_owned(),
                    Signal::Step {
                        before: 0.0,
                        after: 4.0,
                        at: SimTime::from_ms(60),
                    },
                ),
            ],
        ),
        tc(
            "obstacle_removed",
            160,
            vec![
                press(BTN_UP, 2, 150),
                (
                    LOAD.to_owned(),
                    Signal::Piecewise(vec![
                        (SimTime::ZERO, 0.0),
                        (SimTime::from_ms(20), 0.0),
                        (SimTime::from_ms(21), 4.0),
                        (SimTime::from_ms(50), 4.0),
                        (SimTime::from_ms(51), 0.0),
                    ]),
                ),
            ],
        ),
    ]);

    // Iteration 2: soft obstacle (low-threshold band) and down-side cases.
    suite.add_iteration(vec![
        tc(
            "soft_obstacle",
            120,
            vec![
                press(BTN_UP, 2, 110),
                (
                    LOAD.to_owned(),
                    Signal::Step {
                        before: 0.0,
                        after: 0.8,
                        at: SimTime::from_ms(30),
                    },
                ),
            ],
        ),
        tc(
            "obstacle_down",
            160,
            vec![
                press(BTN_UP, 2, 60),
                press(BTN_DOWN, 80, 150),
                (
                    LOAD.to_owned(),
                    Signal::Step {
                        before: 0.0,
                        after: 4.0,
                        at: SimTime::from_ms(100),
                    },
                ),
            ],
        ),
        tc(
            "halt_resume",
            220,
            vec![
                press(BTN_UP, 2, 210),
                (
                    LOAD.to_owned(),
                    Signal::Piecewise(vec![
                        (SimTime::ZERO, 0.0),
                        (SimTime::from_ms(30), 0.0),
                        (SimTime::from_ms(31), 4.0),
                        (SimTime::from_ms(45), 4.0),
                        (SimTime::from_ms(46), 0.0),
                    ]),
                ),
            ],
        ),
    ]);

    // Iteration 3: end stops, long travels and the fault latch.
    suite.add_iteration(vec![
        tc(
            "repeated_obstacles",
            400,
            vec![
                press(BTN_UP, 2, 390),
                (
                    LOAD.to_owned(),
                    Signal::Pwm {
                        low: 0.0,
                        high: 4.0,
                        period: SimTime::from_ms(60),
                        duty: 0.3,
                    },
                ),
            ],
        ),
        tc(
            "full_up_then_down",
            500,
            vec![press(BTN_UP, 2, 240), press(BTN_DOWN, 260, 490)],
        ),
        tc("bottom_stop", 120, vec![press(BTN_DOWN, 2, 110)]),
    ]);

    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::{analyse, Classification, DftSession};
    use tdf_sim::{NullSink, Simulator};

    #[test]
    fn design_builds_and_has_no_pfirm_pairs() {
        let design = lifter_design().unwrap();
        let sa = analyse(&design);
        assert!(sa.len() > 100, "a real VP has many pairs, got {}", sa.len());
        assert!(
            sa.of_class(Classification::PFirm).is_empty(),
            "Table II: no PFirm pairs in the window lifter"
        );
        assert!(!sa.of_class(Classification::PWeak).is_empty());
        assert!(!sa.of_class(Classification::Strong).is_empty());
        assert!(!sa.of_class(Classification::Firm).is_empty());
    }

    #[test]
    fn window_moves_up_on_button_press() {
        let t = tc("up", 80, vec![press(BTN_UP, 2, 70)]);
        let (cluster, probes) = build_lifter_cluster(&t).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        assert!(
            probes.position.max_f64().unwrap() > 20.0,
            "window moved: {:?}",
            probes.position.max_f64()
        );
        assert!(probes.drive.max_f64().unwrap() >= 12.0);
    }

    #[test]
    fn obstacle_trips_overcurrent_and_halts() {
        let t = tc(
            "obstacle",
            100,
            vec![
                press(BTN_UP, 2, 90),
                (
                    LOAD.to_owned(),
                    Signal::Step {
                        before: 0.0,
                        after: 4.0,
                        at: SimTime::from_ms(15),
                    },
                ),
            ],
        );
        let (cluster, probes) = build_lifter_cluster(&t).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        assert!(
            probes.overcurrent.max_f64().unwrap() > 0.0,
            "detector tripped"
        );
        // The MCU must cut the drive after the trip.
        let drive = probes.drive.values_f64();
        let tripped_at = probes
            .overcurrent
            .samples()
            .iter()
            .position(|(_, v)| v.as_f64() > 0.0)
            .unwrap();
        assert!(
            drive[tripped_at + 2..tripped_at + 5]
                .iter()
                .all(|&d| d == 0.0),
            "drive cut during halt"
        );
    }

    #[test]
    fn no_obstacle_no_trip() {
        let t = tc("up", 80, vec![press(BTN_UP, 2, 70)]);
        let (cluster, probes) = build_lifter_cluster(&t).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        assert_eq!(probes.overcurrent.max_f64().unwrap(), 0.0);
    }

    #[test]
    fn suite_matches_paper_iteration_sizes() {
        let suite = lifter_suite();
        assert_eq!(suite.iterations(), 4);
        assert_eq!(suite.size_at(0), 17);
        assert_eq!(suite.size_at(1), 20);
        assert_eq!(suite.size_at(2), 23);
        assert_eq!(suite.size_at(3), 26);
    }

    #[test]
    fn coverage_grows_over_iterations() {
        let design = lifter_design().unwrap();
        let suite = lifter_suite();
        let mut session = DftSession::new(design).unwrap();
        let mut per_iter = Vec::new();
        let mut done = 0;
        for it in 0..suite.iterations() {
            for t in &suite.up_to(it)[done..] {
                let (cluster, _) = build_lifter_cluster(t).unwrap();
                session.run_testcase(&t.name, cluster, t.duration).unwrap();
            }
            done = suite.size_at(it);
            per_iter.push(session.coverage().exercised_count());
        }
        assert!(
            per_iter.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {per_iter:?}"
        );
        assert!(
            per_iter[3] > per_iter[0],
            "added testcases exercise new pairs: {per_iter:?}"
        );
        let cov = session.coverage();
        let (s_cov, s_tot) = cov.class_ratio(Classification::Strong);
        assert!(s_cov > 0 && s_cov <= s_tot);
    }
}

//! The energy-efficient buck-boost converter of §VI-B (after Lefeuvre et
//! al.): a DC/DC converter operating as step-down (buck) or step-up
//! (boost), with a switching-frequency/duty control algorithm that monitors
//! the inductor current. The controller sets the mode, the expected output
//! voltage and the maximum current; the testbench programs an input voltage
//! and a target voltage and checks how fast and how stably the target is
//! reached.
//!
//! Topology notes matching the paper's Table II profile:
//!
//! * the output voltage reaches the controller **both** directly (fast
//!   over-voltage path) and through a redefining sense filter — a mixed
//!   original/redefined branch pair, so **PFirm pairs exist and are
//!   exercised by every testcase** (Table II: PFirm 100% from iteration 0);
//! * the inductor-current sense goes through the filter chain only —
//!   **PWeak**, also read unconditionally (PWeak 100% from iteration 0);
//! * a supervisor (OCP-event counting, cooldown gating) and a telemetry
//!   unit extend the design to the paper's multi-IP scale.

use stimuli::{Signal, Testcase, Testsuite};
use tdf_interp::{Interface, InterpModule, TdfModelDef};
use tdf_sim::{Cluster, DefSite, LowPass, PortSpec, Probe, SimTime, TraceBuffer};

use dft_core::{Design, Result};

/// The converter's behavioural models.
pub const BUCK_BOOST_SRC: &str = "\
void ctrlr::processing()
{
    double vref = ip_vref;
    double vin = ip_vin;
    double vout = ip_vout;
    double vfast = ip_vout_fast;
    double il = ip_il;
    bool en = ip_enable;
    int mode = 0;
    if (vref > vin) mode = 1;
    double err = vref - vout;
    m_integ = m_integ + err * 0.02;
    if (m_integ > 4) m_integ = 4;
    if (m_integ < -4) m_integ = -4;
    double duty = 0.5 + err * 0.05 + m_integ * 0.05;
    if (duty > 0.92) duty = 0.92;
    if (duty < 0.08) duty = 0.08;
    bool ocp = false;
    if (il > m_imax) {
        duty = duty * 0.5;
        ocp = true;
        m_trips = m_trips + 1;
    }
    if (vfast > m_ovp) {
        duty = 0.08;
        mode = 0;
    }
    if (!en) {
        duty = 0.08;
    }
    op_mode = mode;
    op_duty = duty;
    op_ocp.write(ocp);
}

void pwm::processing()
{
    m_cnt = m_cnt + 1;
    if (m_cnt >= 8) m_cnt = 0;
    double level = ip_duty * 8;
    bool on = false;
    if (m_cnt < level) on = true;
    op_switch.write(on);
}

void plant::processing()
{
    double vin = ip_vin;
    bool sw = ip_switch;
    int mode = ip_mode;
    if (mode == 0) {
        if (sw) m_il = m_il + (vin - m_vc) * 0.12;
        else m_il = m_il - m_vc * 0.12;
    } else {
        if (sw) m_il = m_il + vin * 0.12;
        else m_il = m_il + (vin - m_vc) * 0.12;
    }
    if (m_il < 0) m_il = 0;
    if (m_il > 40) m_il = 40;
    double iload = m_vc * 0.08;
    m_vc = m_vc + (m_il - iload) * 0.04;
    if (m_vc < 0) m_vc = 0;
    op_vout = m_vc;
    op_il = m_il;
}

void supervisor::processing()
{
    bool ocp = ip_ocp;
    double vout = ip_vout;
    if (ocp) {
        m_ocp_count = m_ocp_count + 1;
    } else {
        if (m_ocp_count > 0) m_ocp_count = m_ocp_count - 1;
    }
    bool enable = true;
    if (m_ocp_count >= 8) {
        m_cooldown = 20;
        m_shutdowns = m_shutdowns + 1;
    }
    if (m_cooldown > 0) {
        m_cooldown = m_cooldown - 1;
        enable = false;
    }
    if (vout > m_vmax) m_vmax = vout;
    op_enable.write(enable);
}

void telemetry::processing()
{
    double v = ip_vout;
    double i = ip_il;
    int mode = ip_mode;
    m_samples = m_samples + 1;
    m_vsum = m_vsum + v;
    if (v > m_vpeak) m_vpeak = v;
    if (i > m_ipeak) m_ipeak = i;
    if (mode == 1) m_boost_time = m_boost_time + 1;
    op_stats = m_vsum / m_samples;
}
";

/// Netlist line of the vout sense-filter output binding (`bb_top:301`).
pub const VSENSE_SITE_LINE: u32 = 301;
/// Netlist line of the current sense-filter output binding (`bb_top:304`).
pub const ISENSE_SITE_LINE: u32 = 304;

/// Module activation period of the converter cluster.
pub const BB_TIMESTEP: SimTime = SimTime::from_us(50);

/// Stimulus channel: converter input voltage.
pub const VIN: &str = "vin";
/// Stimulus channel: programmed target voltage.
pub const VREF: &str = "vref";

/// The model interfaces of the buck-boost converter.
pub fn bb_model_defs() -> Vec<TdfModelDef> {
    vec![
        TdfModelDef::new(
            "ctrlr",
            Interface::new()
                .input("ip_vref")
                .input("ip_vin")
                .input_spec(PortSpec::new("ip_vout").with_delay(1))
                .input_spec(PortSpec::new("ip_vout_fast").with_delay(1))
                .input_spec(PortSpec::new("ip_il").with_delay(1))
                .input_spec(PortSpec::new("ip_enable").with_delay(1))
                .output("op_mode")
                .output("op_duty")
                .output("op_ocp")
                .member("m_integ", 0.0)
                .member("m_imax", 25i64)
                .member("m_ovp", 36i64)
                .member("m_trips", 0i64),
        ),
        TdfModelDef::new(
            "pwm",
            Interface::new()
                .input("ip_duty")
                .output("op_switch")
                .member("m_cnt", 0i64),
        ),
        TdfModelDef::new(
            "supervisor",
            Interface::new()
                .input("ip_ocp")
                .input("ip_vout")
                .output("op_enable")
                .member("m_ocp_count", 0i64)
                .member("m_cooldown", 0i64)
                .member("m_shutdowns", 0i64)
                .member("m_vmax", 0.0),
        ),
        TdfModelDef::new(
            "telemetry",
            Interface::new()
                .input("ip_vout")
                .input("ip_il")
                .input("ip_mode")
                .output("op_stats")
                .member("m_samples", 0i64)
                .member("m_vsum", 0.0)
                .member("m_vpeak", 0.0)
                .member("m_ipeak", 0.0)
                .member("m_boost_time", 0i64),
        ),
        TdfModelDef::new(
            "plant",
            Interface::new()
                .input("ip_vin")
                .input("ip_switch")
                .input("ip_mode")
                .output("op_vout")
                .output("op_il")
                .member("m_il", 0.0)
                .member("m_vc", 0.0),
        ),
    ]
}

/// Observable outputs of a built converter cluster.
#[derive(Debug, Clone)]
pub struct BbProbes {
    /// Converter output voltage.
    pub vout: TraceBuffer,
    /// Inductor current.
    pub il: TraceBuffer,
    /// Over-current protection flag.
    pub ocp: TraceBuffer,
    /// Telemetry running average of vout.
    pub stats: TraceBuffer,
}

/// Builds the converter cluster for one testcase (channels [`VIN`],
/// [`VREF`]).
///
/// # Errors
///
/// Propagates parse/bind errors (none expected for the fixed source).
pub fn build_bb_cluster(tc: &Testcase) -> Result<(Cluster, BbProbes)> {
    let tu = minic::parse(BUCK_BOOST_SRC)?;
    let mut cluster = Cluster::new("bb_top");

    let vin_src =
        cluster.add_module(Box::new(tc.signal(VIN).into_source("vin_src", BB_TIMESTEP)))?;
    let vref_src = cluster.add_module(Box::new(
        tc.signal(VREF).into_source("vref_src", BB_TIMESTEP),
    ))?;

    let mut ids = std::collections::HashMap::new();
    for def in bb_model_defs() {
        let m = InterpModule::new(&tu, &def.model, def.interface.clone())?;
        ids.insert(def.model.clone(), cluster.add_module(Box::new(m))?);
    }
    let (ctrlr, pwm, plant) = (ids["ctrlr"], ids["pwm"], ids["plant"]);
    let (supervisor, telemetry) = (ids["supervisor"], ids["telemetry"]);

    let vsense = cluster.add_module(Box::new(LowPass::new(
        "i_vsense_filter",
        0.5,
        DefSite::new("bb_top", VSENSE_SITE_LINE),
    )))?;
    let isense = cluster.add_module(Box::new(LowPass::new(
        "i_isense_filter",
        0.5,
        DefSite::new("bb_top", ISENSE_SITE_LINE),
    )))?;

    cluster.connect(vin_src, "op_out", ctrlr, "ip_vin")?;
    cluster.connect(vin_src, "op_out", plant, "ip_vin")?;
    cluster.connect(vref_src, "op_out", ctrlr, "ip_vref")?;
    cluster.connect(ctrlr, "op_duty", pwm, "ip_duty")?;
    cluster.connect(ctrlr, "op_mode", plant, "ip_mode")?;
    cluster.connect(pwm, "op_switch", plant, "ip_switch")?;
    // vout reaches the controller twice: filtered (redefined) and direct.
    cluster.connect(plant, "op_vout", vsense, "tdf_i")?;
    cluster.connect(vsense, "tdf_o", ctrlr, "ip_vout")?;
    cluster.connect(plant, "op_vout", ctrlr, "ip_vout_fast")?;
    // Inductor current only through the sense filter.
    cluster.connect(plant, "op_il", isense, "tdf_i")?;
    cluster.connect(isense, "tdf_o", ctrlr, "ip_il")?;
    // Supervisor: watches OCP and the filtered vout, gates the controller.
    cluster.connect(ctrlr, "op_ocp", supervisor, "ip_ocp")?;
    cluster.connect(vsense, "tdf_o", supervisor, "ip_vout")?;
    cluster.connect(supervisor, "op_enable", ctrlr, "ip_enable")?;
    // Telemetry: raw vout/mode plus the filtered current.
    cluster.connect(plant, "op_vout", telemetry, "ip_vout")?;
    cluster.connect(isense, "tdf_o", telemetry, "ip_il")?;
    cluster.connect(ctrlr, "op_mode", telemetry, "ip_mode")?;

    let (p_v, vout) = Probe::new("vout_probe");
    let (p_i, il) = Probe::new("il_probe");
    let (p_o, ocp) = Probe::new("ocp_probe");
    let (p_s, stats) = Probe::new("stats_probe");
    let pv = cluster.add_module(Box::new(p_v))?;
    let pi = cluster.add_module(Box::new(p_i))?;
    let po = cluster.add_module(Box::new(p_o))?;
    let ps = cluster.add_module(Box::new(p_s))?;
    cluster.connect(plant, "op_vout", pv, "tdf_i")?;
    cluster.connect(plant, "op_il", pi, "tdf_i")?;
    cluster.connect(ctrlr, "op_ocp", po, "tdf_i")?;
    cluster.connect(telemetry, "op_stats", ps, "tdf_i")?;

    Ok((
        cluster,
        BbProbes {
            vout,
            il,
            ocp,
            stats,
        },
    ))
}

/// The analysable [`Design`] of the converter.
///
/// # Errors
///
/// Propagates parse errors (none expected for the fixed source).
pub fn bb_design() -> Result<Design> {
    let dummy = Testcase::new("elab", SimTime::from_ms(1));
    let (cluster, _) = build_bb_cluster(&dummy)?;
    let tu = minic::parse(BUCK_BOOST_SRC)?;
    Design::new(tu, bb_model_defs(), cluster.netlist())
}

fn tc(name: &str, dur_ms: u64, vin: Signal, vref: Signal) -> Testcase {
    Testcase::new(name, SimTime::from_ms(dur_ms))
        .with(VIN, vin)
        .with(VREF, vref)
}

/// The converter testsuite with the paper's iteration sizes:
/// 10 initial testcases, then +5 / +5 / +4 (10 → 15 → 20 → 24, Table II).
///
/// Iteration 0 runs buck-mode regulation points only; iteration 1 adds
/// boost-mode targets (vref > vin), iteration 2 adds load/line transients,
/// iteration 3 adds over-current and over-voltage stress cases.
pub fn bb_suite() -> Testsuite {
    let mut suite = Testsuite::new("Buck Boost Converter");

    // Iteration 0: buck-mode regulation at ten set points.
    let mut iter0 = Vec::new();
    for (i, (vin, vref)) in [
        (12.0, 5.0),
        (12.0, 3.3),
        (12.0, 9.0),
        (10.0, 5.0),
        (15.0, 5.0),
        (15.0, 12.0),
        (9.0, 3.3),
        (9.0, 6.0),
        (24.0, 12.0),
        (24.0, 5.0),
    ]
    .iter()
    .enumerate()
    {
        iter0.push(tc(
            &format!("buck_{i}"),
            40,
            Signal::Constant(*vin),
            Signal::Constant(*vref),
        ));
    }
    suite.add_iteration(iter0);

    // Iteration 1: boost-mode targets (vref > vin).
    suite.add_iteration(vec![
        tc("boost_0", 40, Signal::Constant(5.0), Signal::Constant(12.0)),
        tc("boost_1", 40, Signal::Constant(5.0), Signal::Constant(9.0)),
        tc("boost_2", 40, Signal::Constant(3.3), Signal::Constant(5.0)),
        tc("boost_3", 60, Signal::Constant(9.0), Signal::Constant(24.0)),
        tc(
            "boost_4",
            60,
            Signal::Constant(12.0),
            Signal::Constant(18.0),
        ),
    ]);

    // Iteration 2: line/reference transients crossing the mode boundary.
    suite.add_iteration(vec![
        tc(
            "line_sag",
            80,
            Signal::Step {
                before: 12.0,
                after: 4.0,
                at: SimTime::from_ms(40),
            },
            Signal::Constant(9.0),
        ),
        tc(
            "ref_step_up",
            80,
            Signal::Constant(12.0),
            Signal::Step {
                before: 5.0,
                after: 15.0,
                at: SimTime::from_ms(40),
            },
        ),
        tc(
            "ref_step_down",
            80,
            Signal::Constant(12.0),
            Signal::Step {
                before: 15.0,
                after: 5.0,
                at: SimTime::from_ms(40),
            },
        ),
        tc(
            "vin_ripple",
            80,
            Signal::Constant(12.0).plus(Signal::Sine {
                offset: 0.0,
                amplitude: 2.0,
                freq_hz: 100.0,
            }),
            Signal::Constant(8.0),
        ),
        tc(
            "ref_sweep",
            100,
            Signal::Constant(10.0),
            Signal::Ramp {
                from: 3.0,
                to: 20.0,
                start: SimTime::from_ms(10),
                end: SimTime::from_ms(90),
            },
        ),
    ]);

    // Iteration 3: over-current and over-voltage stress.
    suite.add_iteration(vec![
        tc(
            "ocp_stress",
            80,
            Signal::Constant(30.0),
            Signal::Constant(28.0),
        ),
        tc(
            "ovp_stress",
            100,
            Signal::Constant(12.0),
            Signal::Constant(45.0),
        ),
        tc(
            "ocp_recover",
            120,
            Signal::Step {
                before: 30.0,
                after: 10.0,
                at: SimTime::from_ms(60),
            },
            Signal::Constant(26.0),
        ),
        tc(
            "cold_start_boost",
            60,
            Signal::Constant(4.0),
            Signal::Constant(30.0),
        ),
    ]);

    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::{analyse, Classification, DftSession};
    use tdf_sim::{NullSink, Simulator};

    #[test]
    fn design_has_pfirm_and_pweak_pairs() {
        let design = bb_design().unwrap();
        let sa = analyse(&design);
        assert!(sa.len() > 60, "got {}", sa.len());
        assert!(
            !sa.of_class(Classification::PFirm).is_empty(),
            "dual vout path creates PFirm pairs"
        );
        assert!(
            !sa.of_class(Classification::PWeak).is_empty(),
            "filtered current sense creates PWeak pairs"
        );
    }

    #[test]
    fn buck_mode_regulates_to_target() {
        let t = tc("buck", 60, Signal::Constant(12.0), Signal::Constant(5.0));
        let (cluster, probes) = build_bb_cluster(&t).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        let vals = probes.vout.values_f64();
        let tail = &vals[vals.len() - 100..];
        let avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((avg - 5.0).abs() < 1.5, "settles near 5 V, got {avg:.2} V");
    }

    #[test]
    fn boost_mode_steps_up() {
        let t = tc("boost", 60, Signal::Constant(5.0), Signal::Constant(12.0));
        let (cluster, probes) = build_bb_cluster(&t).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        let vals = probes.vout.values_f64();
        let tail = &vals[vals.len() - 100..];
        let avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(avg > 6.0, "output above vin in boost, got {avg:.2} V");
    }

    #[test]
    fn over_current_protection_fires_under_stress() {
        let t = tc("ocp", 80, Signal::Constant(30.0), Signal::Constant(28.0));
        let (cluster, probes) = build_bb_cluster(&t).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        assert!(probes.ocp.max_f64().unwrap() > 0.0, "OCP observed");
        assert!(probes.il.max_f64().unwrap() > 25.0);
    }

    #[test]
    fn gentle_case_never_trips_ocp() {
        let t = tc("calm", 40, Signal::Constant(12.0), Signal::Constant(5.0));
        let (cluster, probes) = build_bb_cluster(&t).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(t.duration, &mut NullSink).unwrap();
        assert_eq!(probes.ocp.max_f64().unwrap(), 0.0);
    }

    #[test]
    fn suite_matches_paper_iteration_sizes() {
        let suite = bb_suite();
        assert_eq!(suite.iterations(), 4);
        assert_eq!(suite.size_at(0), 10);
        assert_eq!(suite.size_at(1), 15);
        assert_eq!(suite.size_at(2), 20);
        assert_eq!(suite.size_at(3), 24);
    }

    #[test]
    fn pfirm_and_pweak_fully_covered_from_iteration_0() {
        // Table II: "100% PFirm, and 100% PWeak def-use pairs were
        // exercised" already by the initial 10-testcase suite.
        let design = bb_design().unwrap();
        let suite = bb_suite();
        let mut session = DftSession::new(design).unwrap();
        for t in suite.up_to(0) {
            let (cluster, _) = build_bb_cluster(t).unwrap();
            session.run_testcase(&t.name, cluster, t.duration).unwrap();
        }
        let cov = session.coverage();
        assert_eq!(
            cov.class_percent(Classification::PFirm),
            Some(100.0),
            "all-PFirm satisfied at iteration 0"
        );
        assert_eq!(
            cov.class_percent(Classification::PWeak),
            Some(100.0),
            "all-PWeak satisfied at iteration 0"
        );
        assert!(cov.class_percent(Classification::Strong).unwrap() < 100.0);
    }

    #[test]
    fn ovp_stress_falsifies_an_output_bound_at_a_pinned_instant() {
        use dft_core::{AssertionExpr, AssertionSpec, Verdict};
        // The ovp_stress case programs a 45 V target, so the output blows
        // through a 30 V ceiling; the streaming monitor must report the
        // exact sample where it first does.
        let t = tc("ovp", 100, Signal::Constant(12.0), Signal::Constant(45.0));
        let (cluster, probes) = build_bb_cluster(&t).unwrap();
        let mut session = DftSession::new(bb_design().unwrap())
            .unwrap()
            .with_assertions(vec![AssertionSpec::new(
                "vout_ceiling",
                AssertionExpr::never_above("plant.op_vout", 30.0),
            )]);
        session.run_testcase(&t.name, cluster, t.duration).unwrap();
        // Oracle: the probe buffer records the same samples the monitor
        // streamed, so the first >30 V sample pins the violation time.
        let expected = probes
            .vout
            .samples()
            .into_iter()
            .find(|(_, v)| v.as_f64() > 30.0)
            .map(|(time, _)| time)
            .expect("stress case crosses 30 V");
        assert!(expected > SimTime::ZERO);
        assert_eq!(
            session.runs()[0].verdicts[0].verdict,
            Verdict::Fails {
                first_violation_time: expected
            }
        );
    }

    #[test]
    fn coverage_grows_over_iterations() {
        let design = bb_design().unwrap();
        let suite = bb_suite();
        let mut session = DftSession::new(design).unwrap();
        let mut per_iter = Vec::new();
        let mut done = 0;
        for it in 0..suite.iterations() {
            for t in &suite.up_to(it)[done..] {
                let (cluster, _) = build_bb_cluster(t).unwrap();
                session.run_testcase(&t.name, cluster, t.duration).unwrap();
            }
            done = suite.size_at(it);
            per_iter.push(session.coverage().exercised_count());
        }
        assert!(per_iter.windows(2).all(|w| w[0] <= w[1]));
        assert!(per_iter[3] > per_iter[0], "{per_iter:?}");
    }
}

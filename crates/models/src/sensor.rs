//! The paper's running example (Fig. 1 / Fig. 2): an IoT sensor system with
//! a temperature sensor (TS), humidity sensor (HS), analog delay `Z⁻¹`,
//! 4×1 analog mux (AM), gain (G), 9-bit saturating ADC and a digital
//! control module — authored so that every statement sits on the *same
//! source line as in the paper's Fig. 2*, which makes the generated Table I
//! directly comparable.
//!
//! The deliberate interface bug is preserved: the 9-bit ADC saturates at
//! 511 mV, so the controller never sees temperatures above ~51 °C and the
//! `T_LED` branch (lines 49–52) stays unreachable — exactly what the paper's
//! TC2 uncovers ("the data flow associations related to lines between Line
//! 49 and Line 52 were never exercised").

use stimuli::{Signal, Testcase, Testsuite};
use tdf_interp::{Interface, InterpModule, TdfModelDef};
use tdf_sim::{Cluster, DefSite, Delay, Gain, PortSpec, SimTime, TraceBuffer, Value};
use tdf_sim::{Probe, TdfModule};

use dft_core::{Design, Result};

/// Fig. 2 of the paper, line-for-line (lines 1–68), with the ADC model
/// appended after the netlist comment block (lines 83–90). Lines 70–82 are
/// comments standing in for `sense_top::architecture()`, which is realised
/// in Rust by [`build_sensor_cluster`]; the delay and gain output bindings
/// keep the paper's coordinates `sense_top:74` and `sense_top:77`.
pub const SENSOR_SRC: &str = "\
void TS::processing()
{
    double sig_in = ip_signal_in; // volts
    double tmpr = sig_in*1000; //millivolts
    double out_tmpr = 0;
    bool intr_ = false;
    if (!ip_hold){
        if (ip_clear) intr_ = 0;
        else if ((tmpr > 30) && (tmpr < 1500 )){
            out_tmpr = tmpr;
            intr_ = true;
        }
        op_intr.write(intr_);
        op_signal_out = out_tmpr;
    }
}

void HS::processing()
{
    double temp = ip_signal_in*1000; // mV
    double Tdepend = (B1*42 + B2)*temp + (B3*42+B4);
    double C = 153e-12; // capacitance
    double BC = 150e-12; // bulk capacitance at 30%RH
    double sensitivity = 0.25e-12;
    bool intr_ = false;
    double newRH = 30 + ((C - BC)/sensitivity) + Tdepend;
    if (newRH > 30) intr_ = true;
    op_intr.write( intr_);
    op_signal_out = newRH;
}

void AM::processing()
{
    double tmp_out = 0;
    if (ip_select == 0) tmp_out = ip_port_0;
    else if (ip_select == 1) tmp_out = ip_port_1;
    else if (ip_select == 2) tmp_out = ip_port_2;
    op_mux_out = tmp_out;
}

void ctrl::processing()
{
    if(ip_intr0)
        if((ip_DIN/10) < 60) {
            op_clear = 1;
            m_mux_s = 0;
            op_hold = 0;
        } else if (m_mux_s == 1 && (ip_DIN/10)>60){
            op_T_LED = 1;
            op_clear = 1;
            op_hold = 0;
            m_mux_s = 0;
        } else if (m_mux_s == 0 && (ip_DIN/10)>50){
            m_mux_s = 1;
            op_hold = 1;
        } else {
            op_hold = 0;
            op_clear = 1;
            m_mux_s = 0;
        }
    else if (ip_intr1 && m_mux_s == 2){
        if(ip_DIN > 45) op_H_LED = 1;
        m_mux_s = 0;
    } else if (ip_intr1)
        m_mux_s = 2;
    op_mux_s = m_mux_s;
    if(ip_intr0==0) op_clear = 0;
}

// void sense_top::architecture() — realised in Rust; see
// build_sensor_cluster(). The component bindings keep the paper's line
// coordinates:
//   line 73:  i_delay_tdf1->tdf_i.bind(op_signal_out);
//   line 74:  i_delay_tdf1->tdf_o.bind(op_delay_out);
//   line 75:
//   line 76:  i_gain_tdf1->tdf_i.bind(op_mux_out);
//   line 77:  i_gain_tdf1->tdf_o.bind(op_gain_out);
//   line 78:
//   line 79:  i_adc1->adc_i.bind(op_gain_out);
//   line 80:  i_adc1->adc_o.bind(op_adc_out);
//

void adc::processing()
{
    double code = ip_adc_in;
    if (code > m_full_scale) code = m_full_scale;
    if (code < 0) code = 0;
    op_adc_out = code;
}
";

/// The netlist line of the delay element's output binding (`sense_top:74`).
pub const DELAY_SITE_LINE: u32 = 74;
/// The netlist line of the gain element's output binding (`sense_top:77`).
pub const GAIN_SITE_LINE: u32 = 77;

/// Default module timestep of the sensor cluster.
pub const SENSOR_TIMESTEP: SimTime = SimTime::from_us(20);

/// The ADC full scale of the paper's buggy design: a 9-bit converter
/// saturating at 511 mV ("any signal above 512 mV was saturated").
pub const BUGGY_ADC_FULL_SCALE: f64 = 511.0;
/// A fixed 11-bit ADC full scale for the repaired design variant.
pub const FIXED_ADC_FULL_SCALE: f64 = 2047.0;

/// Stimulus channel names accepted by [`build_sensor_cluster`].
pub const TS_CHANNEL: &str = "ts_in";
/// Humidity-sensor stimulus channel.
pub const HS_CHANNEL: &str = "hs_in";

/// Model interfaces of the sensor system (the elaboration-time facts the
/// static analysis needs).
pub fn sensor_model_defs(adc_full_scale: f64) -> Vec<TdfModelDef> {
    vec![
        TdfModelDef::new(
            "TS",
            Interface::new()
                .input("ip_signal_in")
                .input_spec(PortSpec::new("ip_hold").with_delay(1))
                .input_spec(PortSpec::new("ip_clear").with_delay(1))
                .output("op_intr")
                .output("op_signal_out"),
        ),
        TdfModelDef::new(
            "HS",
            Interface::new()
                .input("ip_signal_in")
                .output("op_intr")
                .output("op_signal_out")
                .member("B1", 0.0014)
                .member("B2", 0.1325)
                .member("B3", -0.0317)
                .member("B4", -3.0876),
        ),
        TdfModelDef::new(
            "AM",
            Interface::new()
                .input_spec(PortSpec::new("ip_select").with_delay(1))
                .input("ip_port_0")
                .input("ip_port_1")
                .input("ip_port_2")
                .output("op_mux_out"),
        ),
        TdfModelDef::new(
            "ctrl",
            Interface::new()
                .input("ip_intr0")
                .input("ip_intr1")
                .input("ip_DIN")
                .output("op_clear")
                .output("op_hold")
                .output("op_T_LED")
                .output("op_H_LED")
                .output("op_mux_s")
                .member("m_mux_s", 0i64),
        ),
        TdfModelDef::new(
            "adc",
            Interface::new()
                .input("ip_adc_in")
                .output("op_adc_out")
                .member("m_full_scale", adc_full_scale),
        ),
    ]
}

/// Observable outputs of a built sensor cluster.
#[derive(Debug, Clone)]
pub struct SensorProbes {
    /// The temperature LED ("too hot").
    pub t_led: TraceBuffer,
    /// The humidity LED ("too humid").
    pub h_led: TraceBuffer,
    /// The ADC output code feeding the controller.
    pub adc_out: TraceBuffer,
}

/// Builds the Fig. 1 cluster for one testcase (stimuli drawn from the
/// testcase channels [`TS_CHANNEL`] and [`HS_CHANNEL`]).
///
/// # Errors
///
/// Propagates parse/bind errors (none expected for the fixed source).
pub fn build_sensor_cluster(tc: &Testcase, adc_full_scale: f64) -> Result<(Cluster, SensorProbes)> {
    let tu = minic::parse(SENSOR_SRC)?;
    let mut cluster = Cluster::new("sense_top");

    let ts_src = cluster.add_module(Box::new(
        tc.signal(TS_CHANNEL).into_source("ts_src", SENSOR_TIMESTEP),
    ))?;
    let hs_src = cluster.add_module(Box::new(
        tc.signal(HS_CHANNEL).into_source("hs_src", SENSOR_TIMESTEP),
    ))?;

    let mut ids = std::collections::HashMap::new();
    for def in sensor_model_defs(adc_full_scale) {
        let m = InterpModule::new(&tu, &def.model, def.interface.clone())?;
        ids.insert(def.model.clone(), cluster.add_module(Box::new(m))?);
    }
    let (ts, hs, am, ctl, adc) = (ids["TS"], ids["HS"], ids["AM"], ids["ctrl"], ids["adc"]);

    let z1 = cluster.add_module(Box::new(Delay::new(
        "i_delay_tdf1",
        1,
        Value::Double(0.0),
        DefSite::new("sense_top", DELAY_SITE_LINE),
    )))?;
    let g1 = cluster.add_module(Box::new(Gain::new(
        "i_gain_tdf1",
        1.0,
        DefSite::new("sense_top", GAIN_SITE_LINE),
    )))?;

    cluster.connect(ts_src, "op_out", ts, "ip_signal_in")?;
    cluster.connect(hs_src, "op_out", hs, "ip_signal_in")?;
    cluster.connect(ts, "op_signal_out", am, "ip_port_0")?;
    cluster.connect(ts, "op_signal_out", z1, "tdf_i")?;
    cluster.connect(z1, "tdf_o", am, "ip_port_1")?;
    cluster.connect(hs, "op_signal_out", am, "ip_port_2")?;
    cluster.connect(am, "op_mux_out", g1, "tdf_i")?;
    cluster.connect(g1, "tdf_o", adc, "ip_adc_in")?;
    cluster.connect(adc, "op_adc_out", ctl, "ip_DIN")?;
    cluster.connect(ts, "op_intr", ctl, "ip_intr0")?;
    cluster.connect(hs, "op_intr", ctl, "ip_intr1")?;
    cluster.connect(ctl, "op_mux_s", am, "ip_select")?;
    cluster.connect(ctl, "op_hold", ts, "ip_hold")?;
    cluster.connect(ctl, "op_clear", ts, "ip_clear")?;

    let (t_probe, t_led) = Probe::new("t_led_probe");
    let (h_probe, h_led) = Probe::new("h_led_probe");
    let (a_probe, adc_out) = Probe::new("adc_probe");
    let tp = cluster.add_module(Box::new(t_probe))?;
    let hp = cluster.add_module(Box::new(h_probe))?;
    let ap = cluster.add_module(Box::new(a_probe))?;
    cluster.connect(ctl, "op_T_LED", tp, "tdf_i")?;
    cluster.connect(ctl, "op_H_LED", hp, "tdf_i")?;
    cluster.connect(adc, "op_adc_out", ap, "tdf_i")?;

    Ok((
        cluster,
        SensorProbes {
            t_led,
            h_led,
            adc_out,
        },
    ))
}

/// The analysable [`Design`] of the sensor system.
///
/// # Errors
///
/// Propagates parse errors (none expected for the fixed source).
pub fn sensor_design(adc_full_scale: f64) -> Result<Design> {
    let dummy = Testcase::new("elab", SimTime::from_us(1));
    let (cluster, _) = build_sensor_cluster(&dummy, adc_full_scale)?;
    let tu = minic::parse(SENSOR_SRC)?;
    Design::new(tu, sensor_model_defs(adc_full_scale), cluster.netlist())
}

/// The paper's three testcases (§IV-B.3):
///
/// * **TC1** — constant 0.1 V on TS (≙ 10 °C);
/// * **TC2** — sweep 0 V → 0.65 V → 0 V on TS (≙ 0 °C → 65 °C → 0 °C);
/// * **TC3** — constant 0.40 V on HS (≙ 45 °C equivalent).
pub fn sensor_testcases() -> Vec<Testcase> {
    let dur = SimTime::from_ms(2);
    // While a TS testcase runs, the humidity sensor idles below its
    // interrupt threshold (newRH ≤ 30 requires a slightly negative input
    // with the CN0346 coefficients); otherwise HS steals the mux.
    let hs_idle = Signal::Constant(-0.05);
    vec![
        Testcase::new("TC1", dur)
            .with(TS_CHANNEL, Signal::Constant(0.1))
            .with(HS_CHANNEL, hs_idle.clone()),
        Testcase::new("TC2", dur)
            .with(TS_CHANNEL, Signal::sweep(0.0, 0.65, SimTime::ZERO, dur))
            .with(HS_CHANNEL, hs_idle),
        Testcase::new("TC3", dur).with(HS_CHANNEL, Signal::Constant(0.40)),
    ]
}

/// The Table-I testsuite as a one-iteration [`Testsuite`].
pub fn sensor_suite() -> Testsuite {
    let mut suite = Testsuite::new("Sensor System");
    suite.add_iteration(sensor_testcases());
    suite
}

/// Convenience: a source module is required by [`TdfModule`] bounds in some
/// tests; re-exported builder for a constant TS input.
pub fn constant_ts_source(level: f64) -> impl TdfModule {
    Signal::Constant(level).into_source("ts_src", SENSOR_TIMESTEP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::{analyse, Association, Classification, DftSession};
    use tdf_sim::{NullSink, Simulator};

    #[test]
    fn source_lines_match_fig2() {
        let tu = minic::parse(SENSOR_SRC).unwrap();
        // Function start lines.
        assert_eq!(tu.processing("TS").unwrap().span.line(), 1);
        assert_eq!(tu.processing("HS").unwrap().span.line(), 18);
        assert_eq!(tu.processing("AM").unwrap().span.line(), 32);
        assert_eq!(tu.processing("ctrl").unwrap().span.line(), 41);
        // Landmark statements from Table I.
        let stmts = tu.all_stmts();
        let on_line = |line: u32| -> Vec<String> {
            stmts
                .iter()
                .filter(|(_, s)| s.span.line() == line)
                .map(|(_, s)| minic::pretty_stmt(s))
                .collect()
        };
        assert!(
            on_line(4).iter().any(|s| s.contains("tmpr")),
            "line 4: tmpr def"
        );
        assert!(on_line(13).iter().any(|s| s.contains("op_intr")), "line 13");
        assert!(on_line(14).iter().any(|s| s.contains("op_signal_out")));
        assert!(on_line(49).iter().any(|s| s.contains("op_T_LED")));
        assert!(on_line(62).iter().any(|s| s.contains("op_H_LED")));
        assert!(on_line(66).iter().any(|s| s.contains("op_mux_s")));
        assert!(on_line(67).iter().any(|s| s.contains("op_clear")));
    }

    #[test]
    fn static_analysis_reproduces_table1_landmarks() {
        let design = sensor_design(BUGGY_ADC_FULL_SCALE).unwrap();
        let sa = analyse(&design);
        let class_of = |a: Association| -> Option<Classification> {
            sa.associations
                .iter()
                .find(|c| c.assoc == a)
                .map(|c| c.class)
        };
        // Strong locals (Table I): (tmpr, 4, TS, 9, TS), (sig_in, 3, TS, 4, TS).
        assert_eq!(
            class_of(Association::new("tmpr", 4, "TS", 9, "TS")),
            Some(Classification::Strong)
        );
        assert_eq!(
            class_of(Association::new("sig_in", 3, "TS", 4, "TS")),
            Some(Classification::Strong)
        );
        // Firm locals: (out_tmpr, 5, TS, 14, TS), (intr_, 6, TS, 13, TS),
        // (tmp_out, 34, AM, 38, AM), (intr_, 25, HS, 28, HS).
        for (v, d, m, u) in [
            ("out_tmpr", 5, "TS", 14),
            ("intr_", 6, "TS", 13),
            ("tmp_out", 34, "AM", 38),
            ("intr_", 25, "HS", 28),
        ] {
            assert_eq!(
                class_of(Association::new(v, d, m, u, m)),
                Some(Classification::Firm),
                "({v}, {d}, {m}, {u}, {m})"
            );
        }
        // Strong cluster pairs: (op_intr, 13, TS, 43, ctrl), (op_hold, 55, ctrl, 7, TS).
        assert_eq!(
            class_of(Association::new("op_intr", 13, "TS", 43, "ctrl")),
            Some(Classification::Strong)
        );
        assert_eq!(
            class_of(Association::new("op_hold", 55, "ctrl", 7, "TS")),
            Some(Classification::Strong)
        );
        // PFirm: both branches of op_signal_out into AM.
        assert_eq!(
            class_of(Association::new("op_signal_out", 14, "TS", 35, "AM")),
            Some(Classification::PFirm)
        );
        assert_eq!(
            class_of(Association::new(
                "op_signal_out",
                DELAY_SITE_LINE,
                "sense_top",
                36,
                "AM"
            )),
            Some(Classification::PFirm)
        );
        // HS's op_signal_out into AM is a single original branch: Strong.
        assert_eq!(
            class_of(Association::new("op_signal_out", 29, "HS", 37, "AM")),
            Some(Classification::Strong)
        );
        // PWeak: op_mux_out through the gain into the adc model (use at
        // line 85: `double code = ip_adc_in;`).
        assert_eq!(
            class_of(Association::new(
                "op_mux_out",
                GAIN_SITE_LINE,
                "sense_top",
                85,
                "adc"
            )),
            Some(Classification::PWeak)
        );
        // Member pairs: (m_mux_s, 65, ctrl, 66, ctrl) and the
        // cross-activation (m_mux_s, 65, ctrl, 48, ctrl), both Strong.
        assert_eq!(
            class_of(Association::new("m_mux_s", 65, "ctrl", 66, "ctrl")),
            Some(Classification::Strong)
        );
        assert_eq!(
            class_of(Association::new("m_mux_s", 65, "ctrl", 48, "ctrl")),
            Some(Classification::Strong)
        );
        // Pseudo-def for the testbench-driven TS input.
        assert_eq!(
            class_of(Association::new("ip_signal_in", 1, "TS", 3, "TS")),
            Some(Classification::Strong)
        );
    }

    #[test]
    fn cluster_elaborates_and_runs() {
        let tcs = sensor_testcases();
        let (cluster, probes) = build_sensor_cluster(&tcs[0], BUGGY_ADC_FULL_SCALE).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(SimTime::from_ms(1), &mut NullSink).unwrap();
        assert!(probes.adc_out.len() > 10);
        // TC1: 0.1 V -> 100 mV code, below saturation (the code drops to 0
        // on interrupt-clear periods, so check the peak).
        assert!((probes.adc_out.max_f64().unwrap() - 100.0).abs() < 1.0);
    }

    #[test]
    fn adc_saturation_bug_keeps_t_led_off_under_tc2() {
        let tcs = sensor_testcases();
        // Buggy 9-bit ADC: T_LED never lights.
        let (cluster, probes) = build_sensor_cluster(&tcs[1], BUGGY_ADC_FULL_SCALE).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(tcs[1].duration, &mut NullSink).unwrap();
        assert_eq!(
            probes.t_led.max_f64().unwrap_or(0.0),
            0.0,
            "saturated ADC hides the over-temperature"
        );
        assert!(probes.adc_out.max_f64().unwrap() <= BUGGY_ADC_FULL_SCALE + 0.5);

        // Fixed ADC: the same TC2 lights the LED.
        let (cluster2, probes2) = build_sensor_cluster(&tcs[1], FIXED_ADC_FULL_SCALE).unwrap();
        let mut sim2 = Simulator::new(cluster2).unwrap();
        sim2.run(tcs[1].duration, &mut NullSink).unwrap();
        assert!(
            probes2.t_led.max_f64().unwrap() > 0.0,
            "fixed ADC lets ctrl see >60 °C and light T_LED"
        );
    }

    #[test]
    fn tc3_lights_humidity_led() {
        let tcs = sensor_testcases();
        let (cluster, probes) = build_sensor_cluster(&tcs[2], BUGGY_ADC_FULL_SCALE).unwrap();
        let mut sim = Simulator::new(cluster).unwrap();
        sim.run(tcs[2].duration, &mut NullSink).unwrap();
        assert!(probes.h_led.max_f64().unwrap() > 0.0, "H_LED on at 45RH+");
    }

    #[test]
    fn t_led_pairs_uncovered_with_buggy_adc() {
        let design = sensor_design(BUGGY_ADC_FULL_SCALE).unwrap();
        let mut session = DftSession::new(design).unwrap();
        for tc in sensor_testcases() {
            let (cluster, _) = build_sensor_cluster(&tc, BUGGY_ADC_FULL_SCALE).unwrap();
            session
                .run_testcase(&tc.name, cluster, tc.duration)
                .unwrap();
        }
        let cov = session.coverage();
        // The pairs defined inside the T_LED branch (lines 50-52: op_clear,
        // op_hold, m_mux_s) must be uncovered — "the data flow associations
        // related to lines between Line 49 and Line 52 were never
        // exercised" (§IV-B.3). op_T_LED itself feeds only the LED probe,
        // so it has no association, matching Table I.
        let branch_pairs: Vec<usize> = cov
            .associations()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.assoc.def_model == "ctrl" && (50..=52).contains(&c.assoc.def_line))
            .map(|(i, _)| i)
            .collect();
        assert!(
            branch_pairs.len() >= 3,
            "static analysis finds the branch pairs, got {}",
            branch_pairs.len()
        );
        for i in branch_pairs {
            assert!(
                !cov.is_covered(i),
                "ADC bug keeps lines 49-52 unexercised: {}",
                cov.associations()[i]
            );
        }
        // Yet plenty of coverage exists overall.
        assert!(
            cov.total_percent() > 50.0,
            "got {:.1}%",
            cov.total_percent()
        );
    }

    #[test]
    fn pweak_pair_exercised_by_every_testcase() {
        let design = sensor_design(BUGGY_ADC_FULL_SCALE).unwrap();
        let mut session = DftSession::new(design).unwrap();
        for tc in sensor_testcases() {
            let (cluster, _) = build_sensor_cluster(&tc, BUGGY_ADC_FULL_SCALE).unwrap();
            session
                .run_testcase(&tc.name, cluster, tc.duration)
                .unwrap();
        }
        let cov = session.coverage();
        let i = cov
            .associations()
            .iter()
            .position(|c| {
                c.assoc == Association::new("op_mux_out", GAIN_SITE_LINE, "sense_top", 85, "adc")
            })
            .expect("PWeak pair exists");
        for t in 0..3 {
            assert!(
                cov.is_covered_by(i, t),
                "Table I marks the PWeak pair exercised by all three TCs"
            );
        }
    }
}

//! AST visitor infrastructure.
//!
//! [`Visitor`] provides pre-order traversal with overridable hooks; the
//! `walk_*` free functions perform the default recursion so an implementation
//! can override only what it needs (the Clang `RecursiveASTVisitor` pattern
//! the paper's tool is built on).

use crate::ast::*;

/// A pre-order AST visitor. All hooks default to pure recursion.
pub trait Visitor {
    /// Called for every function definition.
    fn visit_function(&mut self, f: &Function) {
        walk_function(self, f);
    }

    /// Called for every block.
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }

    /// Called for every statement before descending into it.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }

    /// Called for every expression before descending into it.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
}

/// Default recursion into a translation unit.
pub fn walk_unit<V: Visitor + ?Sized>(v: &mut V, tu: &TranslationUnit) {
    for f in &tu.functions {
        v.visit_function(f);
    }
}

/// Default recursion into a function.
pub fn walk_function<V: Visitor + ?Sized>(v: &mut V, f: &Function) {
    v.visit_block(&f.body);
}

/// Default recursion into a block.
pub fn walk_block<V: Visitor + ?Sized>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

/// Default recursion into a statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                v.visit_expr(e);
            }
        }
        StmtKind::Assign { value, .. } => v.visit_expr(value),
        StmtKind::Write { value, .. } => v.visit_expr(value),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            v.visit_expr(cond);
            v.visit_block(then_branch);
            if let Some(e) = else_branch {
                v.visit_block(e);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_block(body);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                v.visit_stmt(i);
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            if let Some(st) = step {
                v.visit_stmt(st);
            }
            v.visit_block(body);
        }
        StmtKind::Block(b) => v.visit_block(b),
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::Return | StmtKind::Break | StmtKind::Continue => {}
    }
}

/// Default recursion into an expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Unary(_, inner) => v.visit_expr(inner),
        ExprKind::Binary(_, l, r) => {
            v.visit_expr(l);
            v.visit_expr(r);
        }
        ExprKind::Call { args, .. } | ExprKind::MethodCall { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) | ExprKind::Var(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[derive(Default)]
    struct Counter {
        stmts: usize,
        exprs: usize,
        vars: Vec<String>,
    }

    impl Visitor for Counter {
        fn visit_stmt(&mut self, s: &Stmt) {
            self.stmts += 1;
            walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            self.exprs += 1;
            if let ExprKind::Var(n) = &e.kind {
                self.vars.push(n.clone());
            }
            walk_expr(self, e);
        }
    }

    #[test]
    fn visitor_counts_everything() {
        let tu = parse("void f() { x = a + b; if (c) { y = 1; } }").unwrap();
        let mut c = Counter::default();
        walk_unit(&mut c, &tu);
        assert_eq!(c.stmts, 3); // assign, if, inner assign
        assert_eq!(c.vars, vec!["a", "b", "c"]);
        // exprs: a+b, a, b, c, 1 = 5
        assert_eq!(c.exprs, 5);
    }

    #[test]
    fn visitor_descends_for_headers() {
        let tu = parse("void f() { for (int i = 0; i < n; i++) { s += i; } }").unwrap();
        let mut c = Counter::default();
        walk_unit(&mut c, &tu);
        // for, init-decl, step-assign, body-assign
        assert_eq!(c.stmts, 4);
        assert!(c.vars.contains(&"n".to_string()));
        assert!(c.vars.contains(&"i".to_string()));
    }
}

//! Diagnostics for the minic frontend.

use std::error::Error;
use std::fmt;

use crate::token::SourceLoc;

/// Errors produced while lexing or parsing minic source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinicError {
    /// A lexical error (unknown character, bad literal, unterminated comment).
    Lex {
        /// Where the problem starts.
        loc: SourceLoc,
        /// What went wrong.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// Where the offending token starts.
        loc: SourceLoc,
        /// What went wrong.
        message: String,
    },
}

impl MinicError {
    /// Creates a lexical error at `loc`.
    pub fn lex(loc: SourceLoc, message: impl Into<String>) -> Self {
        MinicError::Lex {
            loc,
            message: message.into(),
        }
    }

    /// Creates a syntax error at `loc`.
    pub fn parse(loc: SourceLoc, message: impl Into<String>) -> Self {
        MinicError::Parse {
            loc,
            message: message.into(),
        }
    }

    /// The source location the error points at.
    pub fn loc(&self) -> SourceLoc {
        match self {
            MinicError::Lex { loc, .. } | MinicError::Parse { loc, .. } => *loc,
        }
    }

    /// The error message without the location prefix.
    pub fn message(&self) -> &str {
        match self {
            MinicError::Lex { message, .. } | MinicError::Parse { message, .. } => message,
        }
    }
}

impl fmt::Display for MinicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinicError::Lex { loc, message } => write!(f, "lex error at {loc}: {message}"),
            MinicError::Parse { loc, message } => write!(f, "parse error at {loc}: {message}"),
        }
    }
}

impl Error for MinicError {}

/// Result alias used throughout the frontend.
pub type Result<T> = std::result::Result<T, MinicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_message() {
        let e = MinicError::parse(SourceLoc::new(3, 7), "expected `;`");
        assert_eq!(e.to_string(), "parse error at 3:7: expected `;`");
        assert_eq!(e.loc(), SourceLoc::new(3, 7));
        assert_eq!(e.message(), "expected `;`");
    }

    #[test]
    fn lex_error_display() {
        let e = MinicError::lex(SourceLoc::new(1, 2), "bad char");
        assert_eq!(e.to_string(), "lex error at 1:2: bad char");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(MinicError::lex(SourceLoc::start(), "x"));
    }
}

//! Semantic checking of `processing()` bodies.
//!
//! minic is interpreted with C-like coercions, but the C++ sources the
//! paper analyses would be rejected by the compiler for scope and arity
//! errors. This pass restores those guarantees *before* analysis:
//!
//! * duplicate declaration in the same scope;
//! * use (or assignment) of a name that is neither lexically declared nor
//!   an external (port/member) — with C++ scoping, i.e. a declaration is
//!   visible from its point to the end of its enclosing block;
//! * unknown builtin functions and wrong arities;
//! * writes to input ports.
//!
//! It also infers expression types and emits *warnings* for suspicious but
//! legal constructs: locals shadowing externals, ordering comparisons on
//! booleans, and `%` on floating-point operands.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BinOp, Block, Expr, ExprKind, Function, Stmt, StmtKind, Type, UnOp};
use crate::token::Span;

/// How an externally-declared name may be accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Input port: readable only.
    ReadOnly,
    /// Output port: writable (reads echo the last written value).
    WriteOnly,
    /// Member: readable and writable.
    ReadWrite,
}

/// The elaboration-time names visible inside a model body (ports and
/// members), with their types and access rules.
#[derive(Debug, Clone, Default)]
pub struct ExternalDecls {
    entries: HashMap<String, (Type, Access)>,
}

impl ExternalDecls {
    /// An empty set of externals.
    pub fn new() -> Self {
        ExternalDecls::default()
    }

    /// Declares an input port (builder style).
    pub fn input(mut self, name: &str, ty: Type) -> Self {
        self.entries.insert(name.to_owned(), (ty, Access::ReadOnly));
        self
    }

    /// Declares an output port (builder style).
    pub fn output(mut self, name: &str, ty: Type) -> Self {
        self.entries
            .insert(name.to_owned(), (ty, Access::WriteOnly));
        self
    }

    /// Declares a member (builder style).
    pub fn member(mut self, name: &str, ty: Type) -> Self {
        self.entries
            .insert(name.to_owned(), (ty, Access::ReadWrite));
        self
    }

    /// Looks up an external.
    pub fn get(&self, name: &str) -> Option<(Type, Access)> {
        self.entries.get(name).copied()
    }
}

/// A semantic error found by [`type_check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two declarations of the same local in one scope.
    DuplicateLocal {
        /// Variable name.
        name: String,
        /// Line of the second declaration.
        line: u32,
        /// Line of the first declaration.
        previous: u32,
    },
    /// A name used without a visible declaration.
    Undeclared {
        /// The unknown name.
        name: String,
        /// Line of the use.
        line: u32,
    },
    /// An assignment target that is not writable (input port).
    NotWritable {
        /// Port name.
        name: String,
        /// Line of the write.
        line: u32,
    },
    /// Call of an unknown function.
    UnknownFunction {
        /// Callee name.
        name: String,
        /// Line of the call.
        line: u32,
    },
    /// Wrong number of call arguments.
    WrongArity {
        /// Callee name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        got: usize,
        /// Line of the call.
        line: u32,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateLocal {
                name,
                line,
                previous,
            } => write!(
                f,
                "line {line}: duplicate declaration of `{name}` (first declared on line {previous})"
            ),
            TypeError::Undeclared { name, line } => {
                write!(f, "line {line}: use of undeclared name `{name}`")
            }
            TypeError::NotWritable { name, line } => {
                write!(f, "line {line}: input port `{name}` is not writable")
            }
            TypeError::UnknownFunction { name, line } => {
                write!(f, "line {line}: call of unknown function `{name}`")
            }
            TypeError::WrongArity {
                name,
                expected,
                got,
                line,
            } => write!(
                f,
                "line {line}: `{name}` expects {expected} argument(s), got {got}"
            ),
        }
    }
}

/// A suspicious-but-legal construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeWarning {
    /// A local declaration shadows a port or member.
    ShadowsExternal {
        /// The shadowing name.
        name: String,
        /// Line of the local declaration.
        line: u32,
    },
    /// An ordering comparison (`<`, `>`, …) with a boolean operand.
    OrderedBool {
        /// Line of the comparison.
        line: u32,
    },
    /// `%` applied to floating-point operands (uses `fmod` semantics).
    FloatRemainder {
        /// Line of the operation.
        line: u32,
    },
}

/// The outcome of checking one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeCheckResult {
    /// Hard errors; a C++ compiler would reject these.
    pub errors: Vec<TypeError>,
    /// Lint-grade findings.
    pub warnings: Vec<TypeWarning>,
}

impl TypeCheckResult {
    /// Whether the function is semantically valid.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

const BUILTIN_ARITY: &[(&str, usize)] = &[
    ("abs", 1),
    ("min", 2),
    ("max", 2),
    ("sqrt", 1),
    ("floor", 1),
    ("ceil", 1),
    ("pow", 2),
];

/// Checks `f` against the externally-declared `externals`.
///
/// ```
/// use minic::{type_check, ExternalDecls, Type};
/// let tu = minic::parse("void M::processing() { double t = ip_x * 2; op_y = t; }")?;
/// let ext = ExternalDecls::new()
///     .input("ip_x", Type::Double)
///     .output("op_y", Type::Double);
/// let result = type_check(&tu.functions[0], &ext);
/// assert!(result.is_ok());
/// # Ok::<(), minic::MinicError>(())
/// ```
pub fn type_check(f: &Function, externals: &ExternalDecls) -> TypeCheckResult {
    let mut ck = Checker {
        externals,
        scopes: vec![HashMap::new()],
        result: TypeCheckResult::default(),
    };
    ck.block_inner(&f.body);
    ck.result
}

struct Checker<'a> {
    externals: &'a ExternalDecls,
    /// Innermost scope last; name -> (type, decl line).
    scopes: Vec<HashMap<String, (Type, u32)>>,
    result: TypeCheckResult,
}

impl Checker<'_> {
    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some((ty, _)) = scope.get(name) {
                return Some(*ty);
            }
        }
        self.externals.get(name).map(|(ty, _)| ty)
    }

    fn block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        self.block_inner(b);
        self.scopes.pop();
    }

    fn block_inner(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn declare(&mut self, name: &str, ty: Type, line: u32) {
        if let Some((_, previous)) = self
            .scopes
            .last()
            .expect("at least one scope")
            .get(name)
            .copied()
        {
            self.result.errors.push(TypeError::DuplicateLocal {
                name: name.to_owned(),
                line,
                previous,
            });
            return;
        }
        if self.externals.get(name).is_some() {
            self.result.warnings.push(TypeWarning::ShadowsExternal {
                name: name.to_owned(),
                line,
            });
        }
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_owned(), (ty, line));
    }

    fn check_write(&mut self, name: &str, line: u32) {
        // A lexically-visible local wins over externals.
        for scope in self.scopes.iter().rev() {
            if scope.contains_key(name) {
                return;
            }
        }
        match self.externals.get(name) {
            Some((_, Access::ReadOnly)) => {
                self.result.errors.push(TypeError::NotWritable {
                    name: name.to_owned(),
                    line,
                });
            }
            Some(_) => {}
            None => {
                self.result.errors.push(TypeError::Undeclared {
                    name: name.to_owned(),
                    line,
                });
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let line = s.span.line();
        match &s.kind {
            StmtKind::Decl { ty, name, init } => {
                if let Some(e) = init {
                    // The initializer is evaluated before the name is in
                    // scope (`int x = x;` is an undeclared use unless an
                    // outer x exists).
                    self.expr(e);
                }
                self.declare(name, *ty, line);
            }
            StmtKind::Assign { target, op, value } => {
                if op.reads_target() && self.lookup(target).is_none() {
                    self.result.errors.push(TypeError::Undeclared {
                        name: target.clone(),
                        line,
                    });
                }
                self.expr(value);
                self.check_write(target, line);
            }
            StmtKind::Write { port, value } => {
                self.expr(value);
                self.check_write(port, line);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                self.block(then_branch);
                if let Some(e) = else_branch {
                    self.block(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // The for header opens its own scope (C++).
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block_inner(body);
                self.scopes.pop();
            }
            StmtKind::Block(b) => self.block(b),
            StmtKind::Expr(e) => {
                self.expr(e);
            }
            StmtKind::Return | StmtKind::Break | StmtKind::Continue => {}
        }
    }

    /// Infers the type of `e`, recording errors/warnings along the way.
    fn expr(&mut self, e: &Expr) -> Type {
        let line = line_of(e.span);
        match &e.kind {
            ExprKind::IntLit(_) => Type::Int,
            ExprKind::FloatLit(_) => Type::Double,
            ExprKind::BoolLit(_) => Type::Bool,
            ExprKind::Var(name) => match self.lookup(name) {
                Some(ty) => ty,
                None => {
                    self.result.errors.push(TypeError::Undeclared {
                        name: name.clone(),
                        line,
                    });
                    Type::Double
                }
            },
            ExprKind::MethodCall { receiver, args, .. } => {
                for a in args {
                    self.expr(a);
                }
                match self.lookup(receiver) {
                    Some(ty) => ty,
                    None => {
                        self.result.errors.push(TypeError::Undeclared {
                            name: receiver.clone(),
                            line,
                        });
                        Type::Double
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                let t = self.expr(inner);
                match op {
                    UnOp::Not => Type::Bool,
                    UnOp::Neg => {
                        if t == Type::Int {
                            Type::Int
                        } else {
                            Type::Double
                        }
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.expr(l);
                let rt = self.expr(r);
                match op {
                    BinOp::And | BinOp::Or => Type::Bool,
                    BinOp::Eq | BinOp::Ne => Type::Bool,
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if lt == Type::Bool || rt == Type::Bool {
                            self.result.warnings.push(TypeWarning::OrderedBool { line });
                        }
                        Type::Bool
                    }
                    BinOp::Rem => {
                        if lt == Type::Double || rt == Type::Double {
                            self.result
                                .warnings
                                .push(TypeWarning::FloatRemainder { line });
                        }
                        arith_type(lt, rt)
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith_type(lt, rt),
                }
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.expr(a);
                }
                match BUILTIN_ARITY.iter().find(|(n, _)| n == callee) {
                    Some(&(_, arity)) => {
                        if args.len() != arity {
                            self.result.errors.push(TypeError::WrongArity {
                                name: callee.clone(),
                                expected: arity,
                                got: args.len(),
                                line,
                            });
                        }
                    }
                    None => {
                        self.result.errors.push(TypeError::UnknownFunction {
                            name: callee.clone(),
                            line,
                        });
                    }
                }
                Type::Double
            }
        }
    }
}

fn arith_type(l: Type, r: Type) -> Type {
    if l == Type::Double || r == Type::Double {
        Type::Double
    } else {
        Type::Int
    }
}

fn line_of(span: Span) -> u32 {
    span.start.line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn ext() -> ExternalDecls {
        ExternalDecls::new()
            .input("ip_x", Type::Double)
            .output("op_y", Type::Double)
            .member("m_s", Type::Int)
    }

    fn check(body: &str) -> TypeCheckResult {
        let src = format!("void M::processing() {{\n{body}\n}}");
        let tu = parse(&src).unwrap();
        type_check(&tu.functions[0], &ext())
    }

    #[test]
    fn clean_body_passes() {
        let r = check("double t = ip_x * 2;\nif (t > 1) { op_y = t; }\nm_s = m_s + 1;");
        assert!(r.is_ok(), "{:?}", r.errors);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn duplicate_local_in_same_scope() {
        let r = check("double t = 1;\ndouble t = 2;");
        assert_eq!(r.errors.len(), 1);
        assert!(matches!(
            &r.errors[0],
            TypeError::DuplicateLocal { name, previous: 2, line: 3 } if name == "t"
        ));
    }

    #[test]
    fn same_name_in_sibling_scopes_is_fine() {
        let r = check("if (ip_x > 0) { double t = 1; op_y = t; } else { double t = 2; op_y = t; }");
        assert!(r.is_ok(), "{:?}", r.errors);
    }

    #[test]
    fn use_before_declaration_rejected() {
        // The interpreter's flat resolution accepts this; C++ would not.
        let r = check("op_y = t;\ndouble t = 1;");
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, TypeError::Undeclared { name, .. } if name == "t")));
    }

    #[test]
    fn inner_declaration_invisible_outside() {
        let r = check("if (ip_x > 0) { double t = 1; op_y = t; }\nop_y = t;");
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, TypeError::Undeclared { name, .. } if name == "t")));
    }

    #[test]
    fn initializer_cannot_see_its_own_name() {
        let r = check("double t = t + 1;");
        assert!(!r.is_ok());
    }

    #[test]
    fn write_to_input_port_rejected() {
        let r = check("ip_x = 1;");
        assert!(matches!(
            &r.errors[0],
            TypeError::NotWritable { name, .. } if name == "ip_x"
        ));
    }

    #[test]
    fn port_write_method_checked_too() {
        let r = check("ip_x.write(1);");
        assert!(matches!(&r.errors[0], TypeError::NotWritable { .. }));
        let ok = check("op_y.write(ip_x);");
        assert!(ok.is_ok());
    }

    #[test]
    fn unknown_name_and_function() {
        let r = check("op_y = nosuch;");
        assert!(matches!(&r.errors[0], TypeError::Undeclared { .. }));
        let r2 = check("op_y = frobnicate(1);");
        assert!(matches!(&r2.errors[0], TypeError::UnknownFunction { .. }));
    }

    #[test]
    fn builtin_arity_enforced() {
        let r = check("op_y = min(1);");
        assert!(matches!(
            &r.errors[0],
            TypeError::WrongArity {
                expected: 2,
                got: 1,
                ..
            }
        ));
        let ok = check("op_y = min(1, 2) + abs(ip_x);");
        assert!(ok.is_ok());
    }

    #[test]
    fn shadowing_external_warns() {
        let r = check("double m_s = 3;\nop_y = m_s;");
        assert!(r.is_ok());
        assert!(matches!(
            &r.warnings[0],
            TypeWarning::ShadowsExternal { name, .. } if name == "m_s"
        ));
    }

    #[test]
    fn ordered_bool_warns() {
        let r = check("bool b = true;\nif (b > false) { op_y = 1; }");
        assert!(r.is_ok());
        assert!(r
            .warnings
            .iter()
            .any(|w| matches!(w, TypeWarning::OrderedBool { .. })));
    }

    #[test]
    fn float_remainder_warns() {
        let r = check("op_y = ip_x % 3;");
        assert!(r.is_ok());
        assert!(r
            .warnings
            .iter()
            .any(|w| matches!(w, TypeWarning::FloatRemainder { .. })));
        let silent = check("m_s = m_s % 3;");
        assert!(silent.warnings.is_empty(), "int % int is fine");
    }

    #[test]
    fn for_header_scope() {
        let r = check("for (int i = 0; i < 3; i++) { op_y = i; }\nop_y = i;");
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, TypeError::Undeclared { name, .. } if name == "i")));
    }

    #[test]
    fn compound_assign_requires_existing_target() {
        let r = check("acc += 1;");
        assert!(!r.is_ok());
        let ok = check("double acc = 0;\nacc += 1;");
        assert!(ok.is_ok());
    }

    #[test]
    fn error_messages_are_informative() {
        let r = check("double t = 1;\ndouble t = 2;");
        let msg = r.errors[0].to_string();
        assert!(msg.contains('t') && msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn fig2_sources_type_check() {
        // The paper's own models must pass, given their interfaces.
        let src = "\
void TS::processing()
{
    double sig_in = ip_signal_in;
    double tmpr = sig_in*1000;
    double out_tmpr = 0;
    bool intr_ = false;
    if (!ip_hold){
        if (ip_clear) intr_ = 0;
        else if ((tmpr > 30) && (tmpr < 1500 )){
            out_tmpr = tmpr;
            intr_ = true;
        }
        op_intr.write(intr_);
        op_signal_out = out_tmpr;
    }
}";
        let tu = parse(src).unwrap();
        let ext = ExternalDecls::new()
            .input("ip_signal_in", Type::Double)
            .input("ip_hold", Type::Bool)
            .input("ip_clear", Type::Bool)
            .output("op_intr", Type::Bool)
            .output("op_signal_out", Type::Double);
        let r = type_check(&tu.functions[0], &ext);
        assert!(r.is_ok(), "{:?}", r.errors);
    }
}

//! Lexical tokens and source locations.
//!
//! Every token carries a [`Span`] so that later stages (static analysis,
//! coverage reporting) can refer back to the *exact line* of a definition or
//! use, mirroring how the paper reports associations such as
//! `(tmpr, 4, TS, 9, TS)` by source line.

use std::fmt;

/// A location in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceLoc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl SourceLoc {
    /// Creates a new location.
    ///
    /// ```
    /// use minic::SourceLoc;
    /// let loc = SourceLoc::new(4, 9);
    /// assert_eq!(loc.line, 4);
    /// ```
    pub fn new(line: u32, col: u32) -> Self {
        SourceLoc { line, col }
    }

    /// The start of a file.
    pub fn start() -> Self {
        SourceLoc { line: 1, col: 1 }
    }
}

impl Default for SourceLoc {
    fn default() -> Self {
        SourceLoc::start()
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of source text, from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Location of the first character.
    pub start: SourceLoc,
    /// Location one past the last character.
    pub end: SourceLoc,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: SourceLoc, end: SourceLoc) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `loc`.
    pub fn point(loc: SourceLoc) -> Self {
        Span {
            start: loc,
            end: loc,
        }
    }

    /// The line on which the span starts — the "statement line" used in
    /// def-use association tuples.
    pub fn line(&self) -> u32 {
        self.start.line
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// The different kinds of tokens produced by the [`Lexer`](crate::Lexer).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier, e.g. `tmpr`, `op_signal_out`.
    Ident(String),
    /// Integer literal, e.g. `42`.
    IntLit(i64),
    /// Floating point literal, e.g. `153e-12`, `0.25`.
    FloatLit(f64),
    /// `true` or `false`.
    BoolLit(bool),

    // Keywords.
    /// `void`
    KwVoid,
    /// `double`
    KwDouble,
    /// `int`
    KwInt,
    /// `bool`
    KwBool,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `::`
    ColonColon,

    // Operators.
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `ident`, if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "void" => TokenKind::KwVoid,
            "double" => TokenKind::KwDouble,
            "int" => TokenKind::KwInt,
            "bool" => TokenKind::KwBool,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "true" => TokenKind::BoolLit(true),
            "false" => TokenKind::BoolLit(false),
            _ => return None,
        })
    }

    /// A short human-readable description, used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::BoolLit(v) => format!("bool literal `{v}`"),
            TokenKind::KwVoid => "`void`".into(),
            TokenKind::KwDouble => "`double`".into(),
            TokenKind::KwInt => "`int`".into(),
            TokenKind::KwBool => "`bool`".into(),
            TokenKind::KwIf => "`if`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::KwWhile => "`while`".into(),
            TokenKind::KwFor => "`for`".into(),
            TokenKind::KwReturn => "`return`".into(),
            TokenKind::KwBreak => "`break`".into(),
            TokenKind::KwContinue => "`continue`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::ColonColon => "`::`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::PlusAssign => "`+=`".into(),
            TokenKind::MinusAssign => "`-=`".into(),
            TokenKind::StarAssign => "`*=`".into(),
            TokenKind::SlashAssign => "`/=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Not => "`!`".into(),
            TokenKind::PlusPlus => "`++`".into(),
            TokenKind::MinusMinus => "`--`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it occurs in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_loc_ordering_is_line_major() {
        assert!(SourceLoc::new(2, 1) > SourceLoc::new(1, 80));
        assert!(SourceLoc::new(2, 3) > SourceLoc::new(2, 2));
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(SourceLoc::new(1, 5), SourceLoc::new(1, 9));
        let b = Span::new(SourceLoc::new(3, 1), SourceLoc::new(3, 4));
        let m = a.merge(b);
        assert_eq!(m.start, SourceLoc::new(1, 5));
        assert_eq!(m.end, SourceLoc::new(3, 4));
        // merge is commutative
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn span_line_is_start_line() {
        let s = Span::new(SourceLoc::new(4, 3), SourceLoc::new(6, 1));
        assert_eq!(s.line(), 4);
    }

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("if"), Some(TokenKind::KwIf));
        assert_eq!(TokenKind::keyword("true"), Some(TokenKind::BoolLit(true)));
        assert_eq!(TokenKind::keyword("tmpr"), None);
    }

    #[test]
    fn describe_is_nonempty_for_all_punctuation() {
        let toks = [
            TokenKind::LParen,
            TokenKind::RBrace,
            TokenKind::ColonColon,
            TokenKind::PlusAssign,
            TokenKind::Eof,
        ];
        for t in toks {
            assert!(!t.describe().is_empty());
        }
    }

    #[test]
    fn display_matches_describe() {
        assert_eq!(TokenKind::AndAnd.to_string(), "`&&`");
        assert_eq!(SourceLoc::new(7, 2).to_string(), "7:2");
    }
}

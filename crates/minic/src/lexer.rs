//! Hand-written lexer for the minic language.
//!
//! The lexer keeps precise line/column information so that every AST node can
//! be tied back to the source line it came from — the unit in which the paper
//! reports def-use associations.
//!
//! Supported trivia: spaces, tabs, newlines, `// line comments` and
//! `/* block comments */` (which may span lines).

use crate::diag::{MinicError, Result};
use crate::token::{SourceLoc, Span, Token, TokenKind};

/// Converts source text into a stream of [`Token`]s.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    loc: SourceLoc,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            loc: SourceLoc::start(),
        }
    }

    /// Lexes the entire input, returning all tokens including a trailing
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns [`MinicError::Lex`] on an unrecognised character, a malformed
    /// numeric literal, or an unterminated block comment.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.loc.line += 1;
            self.loc.col = 1;
        } else {
            self.loc.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.loc;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(MinicError::lex(open, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let start = self.loc;
        let Some(c) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, Span::point(start)));
        };

        let kind = match c {
            b'0'..=b'9' => return self.lex_number(),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => return Ok(self.lex_ident()),
            b'(' => self.single(TokenKind::LParen),
            b')' => self.single(TokenKind::RParen),
            b'{' => self.single(TokenKind::LBrace),
            b'}' => self.single(TokenKind::RBrace),
            b';' => self.single(TokenKind::Semi),
            b',' => self.single(TokenKind::Comma),
            b'.' => self.single(TokenKind::Dot),
            b':' => {
                self.bump();
                if self.peek() == Some(b':') {
                    self.bump();
                    TokenKind::ColonColon
                } else {
                    return Err(MinicError::lex(start, "expected `::`, found lone `:`"));
                }
            }
            b'+' => self.one_or_two(
                TokenKind::Plus,
                &[(b'=', TokenKind::PlusAssign), (b'+', TokenKind::PlusPlus)],
            ),
            b'-' => self.one_or_two(
                TokenKind::Minus,
                &[
                    (b'=', TokenKind::MinusAssign),
                    (b'-', TokenKind::MinusMinus),
                ],
            ),
            b'*' => self.one_or_two(TokenKind::Star, &[(b'=', TokenKind::StarAssign)]),
            b'/' => self.one_or_two(TokenKind::Slash, &[(b'=', TokenKind::SlashAssign)]),
            b'%' => self.single(TokenKind::Percent),
            b'=' => self.one_or_two(TokenKind::Assign, &[(b'=', TokenKind::EqEq)]),
            b'!' => self.one_or_two(TokenKind::Not, &[(b'=', TokenKind::NotEq)]),
            b'<' => self.one_or_two(TokenKind::Lt, &[(b'=', TokenKind::Le)]),
            b'>' => self.one_or_two(TokenKind::Gt, &[(b'=', TokenKind::Ge)]),
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(MinicError::lex(start, "expected `&&`, found lone `&`"));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(MinicError::lex(start, "expected `||`, found lone `|`"));
                }
            }
            other => {
                return Err(MinicError::lex(
                    start,
                    format!("unrecognised character `{}`", other as char),
                ));
            }
        };
        Ok(Token::new(kind, Span::new(start, self.loc)))
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn one_or_two(&mut self, base: TokenKind, alts: &[(u8, TokenKind)]) -> TokenKind {
        self.bump();
        if let Some(next) = self.peek() {
            for (c, kind) in alts {
                if next == *c {
                    self.bump();
                    return kind.clone();
                }
            }
        }
        base
    }

    fn lex_ident(&mut self) -> Token {
        let start = self.loc;
        let begin = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[begin..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
        Token::new(kind, Span::new(start, self.loc))
    }

    fn lex_number(&mut self) -> Result<Token> {
        let start = self.loc;
        let begin = self.pos;
        let mut is_float = false;

        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        // Fractional part: only if the dot is followed by a digit, so that
        // `x.write` is not mis-lexed (numbers never precede `.write` here,
        // but be conservative anyway).
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        // Exponent part, e.g. `153e-12`.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let next = self.peek2();
            let digit_after_sign = matches!(next, Some(b'+') | Some(b'-'))
                && matches!(self.bytes.get(self.pos + 2), Some(b'0'..=b'9'));
            if matches!(next, Some(b'0'..=b'9')) || digit_after_sign {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
        }

        let text = &self.src[begin..self.pos];
        let span = Span::new(start, self.loc);
        let kind = if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| MinicError::lex(start, format!("invalid float literal `{text}`")))?;
            TokenKind::FloatLit(v)
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| MinicError::lex(start, format!("invalid integer literal `{text}`")))?;
            TokenKind::IntLit(v)
        };
        Ok(Token::new(kind, span))
    }
}

/// Convenience function: lexes `src` into tokens.
///
/// # Errors
///
/// See [`Lexer::tokenize`].
///
/// ```
/// let toks = minic::lex("x = 1;").unwrap();
/// assert_eq!(toks.len(), 5); // x, =, 1, ;, EOF
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 1;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::IntLit(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_bools() {
        assert_eq!(
            kinds("if else while bool true false"),
            vec![
                TokenKind::KwIf,
                TokenKind::KwElse,
                TokenKind::KwWhile,
                TokenKind::KwBool,
                TokenKind::BoolLit(true),
                TokenKind::BoolLit(false),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_scientific_float() {
        assert_eq!(
            kinds("153e-12"),
            vec![TokenKind::FloatLit(153e-12), TokenKind::Eof]
        );
        assert_eq!(
            kinds("0.25e-12"),
            vec![TokenKind::FloatLit(0.25e-12), TokenKind::Eof]
        );
        assert_eq!(kinds("1e9"), vec![TokenKind::FloatLit(1e9), TokenKind::Eof]);
    }

    #[test]
    fn integer_followed_by_ident_e_is_not_exponent() {
        // `2 * e` style: `2e` alone has no digits after `e` — the `e` must be
        // lexed as a separate identifier.
        assert_eq!(
            kinds("2 e"),
            vec![
                TokenKind::IntLit(2),
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_member_call() {
        assert_eq!(
            kinds("op_intr.write(intr_);"),
            vec![
                TokenKind::Ident("op_intr".into()),
                TokenKind::Dot,
                TokenKind::Ident("write".into()),
                TokenKind::LParen,
                TokenKind::Ident("intr_".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_scope_resolution() {
        assert_eq!(
            kinds("void TS::processing()"),
            vec![
                TokenKind::KwVoid,
                TokenKind::Ident("TS".into()),
                TokenKind::ColonColon,
                TokenKind::Ident("processing".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_but_lines_counted() {
        let toks = lex("// first line\n/* spans\ntwo lines */ x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].span.start.line, 3);
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.start, SourceLoc::new(1, 1));
        assert_eq!(toks[1].span.start, SourceLoc::new(2, 3));
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds("<= >= == != && || += -= *= /= ++ --"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::PlusAssign,
                TokenKind::MinusAssign,
                TokenKind::StarAssign,
                TokenKind::SlashAssign,
                TokenKind::PlusPlus,
                TokenKind::MinusMinus,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_on_lone_ampersand() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn errors_on_unterminated_block_comment() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn errors_on_unknown_character() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}

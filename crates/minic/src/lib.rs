//! # minic — a C-like frontend for SystemC-AMS TDF `processing()` bodies
//!
//! The DATE 2019 paper *"Data Flow Testing for SystemC-AMS Timed Data Flow
//! Models"* analyses C++ SystemC-AMS sources through the Clang AST. This
//! crate is the Rust-native stand-in for that frontend: a small C-like
//! language (`minic`) in which TDF model behaviours are authored, together
//! with a lexer, a recursive-descent parser producing a typed AST with exact
//! source locations, a pretty-printer and visitor infrastructure.
//!
//! The language covers exactly what the paper's Fig. 2 uses:
//!
//! * typed local declarations: `double tmpr = sig_in*1000;`
//! * assignments (plain and compound) to locals, members (`m_mux_s`) and
//!   output ports (`op_signal_out`)
//! * port writes: `op_intr.write(intr_);`
//! * `if`/`else if`/`else`, `while`, `for`, `break`, `continue`, `return`
//! * arithmetic, comparison and logical expressions over doubles/ints/bools
//!
//! ## Quick start
//!
//! ```
//! let tu = minic::parse(
//!     "void TS::processing() {\n\
//!          double tmpr = ip_signal_in * 1000;\n\
//!          if (tmpr > 30) op_signal_out = tmpr;\n\
//!      }",
//! )?;
//! let ts = tu.processing("TS").expect("model TS exists");
//! assert_eq!(ts.body.stmts.len(), 2);
//! // The declaration sits on source line 2 — the line number that def-use
//! // associations will refer to.
//! assert_eq!(ts.body.stmts[0].span.line(), 2);
//! # Ok::<(), minic::MinicError>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod diag;
mod lexer;
mod parser;
mod pretty;
mod token;
mod typeck;
pub mod visit;

pub use ast::{
    AssignOp, BinOp, Block, Expr, ExprKind, Function, Stmt, StmtId, StmtKind, TranslationUnit,
    Type, UnOp,
};
pub use diag::{MinicError, Result};
pub use lexer::{lex, Lexer};
pub use parser::{parse, parse_expr, parse_stmt};
pub use pretty::{pretty, pretty_expr, pretty_stmt};
pub use token::{SourceLoc, Span, Token, TokenKind};
pub use typeck::{type_check, Access, ExternalDecls, TypeCheckResult, TypeError, TypeWarning};

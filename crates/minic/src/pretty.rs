//! Pretty-printer: renders ASTs back to minic source.
//!
//! Used by the instrumentation story (dumping the analysed program next to
//! coverage reports) and for round-trip testing of the parser.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole translation unit.
///
/// ```
/// let tu = minic::parse("void TS::processing() { x = 1; }").unwrap();
/// let src = minic::pretty(&tu);
/// assert!(src.contains("void TS::processing()"));
/// assert!(src.contains("x = 1;"));
/// ```
pub fn pretty(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for (i, f) in tu.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "void {}()", f.qualified_name());
        print_block(&f.body, 0, &mut out);
    }
    out
}

/// Renders a single statement at indentation level 0.
pub fn pretty_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    print_stmt(stmt, 0, &mut out);
    // Drop the trailing newline for single-statement rendering.
    if out.ends_with('\n') {
        out.pop();
    }
    out
}

/// Renders an expression.
pub fn pretty_expr(expr: &Expr) -> String {
    let mut out = String::new();
    print_expr(expr, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(block: &Block, level: usize, out: &mut String) {
    indent(level, out);
    out.push_str("{\n");
    for s in &block.stmts {
        print_stmt(s, level + 1, out);
    }
    indent(level, out);
    out.push_str("}\n");
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    match &stmt.kind {
        StmtKind::Decl { ty, name, init } => {
            indent(level, out);
            let _ = write!(out, "{ty} {name}");
            if let Some(e) = init {
                out.push_str(" = ");
                print_expr(e, out);
            }
            out.push_str(";\n");
        }
        StmtKind::Assign { target, op, value } => {
            indent(level, out);
            let _ = write!(out, "{target} {op} ");
            print_expr(value, out);
            out.push_str(";\n");
        }
        StmtKind::Write { port, value } => {
            indent(level, out);
            let _ = write!(out, "{port}.write(");
            print_expr(value, out);
            out.push_str(");\n");
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(level, out);
            out.push_str("if (");
            print_expr(cond, out);
            out.push_str(")\n");
            print_block(then_branch, level, out);
            if let Some(e) = else_branch {
                indent(level, out);
                out.push_str("else\n");
                print_block(e, level, out);
            }
        }
        StmtKind::While { cond, body } => {
            indent(level, out);
            out.push_str("while (");
            print_expr(cond, out);
            out.push_str(")\n");
            print_block(body, level, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(level, out);
            out.push_str("for (");
            if let Some(i) = init {
                let mut s = String::new();
                print_stmt(i, 0, &mut s);
                // init renders with trailing ";\n"; keep just the ";".
                out.push_str(s.trim_end());
            } else {
                out.push(';');
            }
            out.push(' ');
            if let Some(c) = cond {
                print_expr(c, out);
            }
            out.push_str("; ");
            if let Some(st) = step {
                let mut s = String::new();
                print_stmt(st, 0, &mut s);
                let trimmed = s.trim_end().trim_end_matches(';');
                out.push_str(trimmed);
            }
            out.push_str(")\n");
            print_block(body, level, out);
        }
        StmtKind::Return => {
            indent(level, out);
            out.push_str("return;\n");
        }
        StmtKind::Break => {
            indent(level, out);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            indent(level, out);
            out.push_str("continue;\n");
        }
        StmtKind::Block(b) => print_block(b, level, out),
        StmtKind::Expr(e) => {
            indent(level, out);
            print_expr(e, out);
            out.push_str(";\n");
        }
    }
}

fn print_expr(expr: &Expr, out: &mut String) {
    match &expr.kind {
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v) => {
            // Keep floats round-trippable.
            let _ = write!(out, "{v:?}");
        }
        ExprKind::BoolLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Unary(op, e) => {
            let _ = write!(out, "{op}");
            out.push('(');
            print_expr(e, out);
            out.push(')');
        }
        ExprKind::Binary(op, l, r) => {
            out.push('(');
            print_expr(l, out);
            let _ = write!(out, " {op} ");
            print_expr(r, out);
            out.push(')');
        }
        ExprKind::Call { callee, args } => {
            out.push_str(callee);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out);
            }
            out.push(')');
        }
        ExprKind::MethodCall {
            receiver,
            method,
            args,
        } => {
            let _ = write!(out, "{receiver}.{method}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, parse_expr, parse_stmt};

    /// Parse → pretty → parse must yield a structurally equal AST modulo
    /// spans and statement ids.
    fn strip(tu: &TranslationUnit) -> Vec<String> {
        tu.all_stmts()
            .iter()
            .map(|(m, s)| format!("{m}:{}", pretty_stmt(s)))
            .collect()
    }

    #[test]
    fn round_trip_simple_function() {
        let src = "void TS::processing() { double t = ip_in * 1000; if (t > 30) op_out = t; }";
        let tu1 = parse(src).unwrap();
        let printed = pretty(&tu1);
        let tu2 = parse(&printed).unwrap();
        assert_eq!(strip(&tu1), strip(&tu2));
    }

    #[test]
    fn round_trip_control_flow() {
        let src = "void f() {\n\
            for (int i = 0; i < 4; i++) { acc += i; }\n\
            while (acc > 0) { acc -= 1; if (acc == 2) break; else continue; }\n\
            return;\n\
        }";
        let tu1 = parse(src).unwrap();
        let tu2 = parse(&pretty(&tu1)).unwrap();
        assert_eq!(strip(&tu1), strip(&tu2));
    }

    #[test]
    fn pretty_expr_parenthesises_binary() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(pretty_expr(&e), "(a + (b * c))");
    }

    #[test]
    fn pretty_stmt_write() {
        let s = parse_stmt("op_intr.write(x && y);").unwrap();
        assert_eq!(pretty_stmt(&s), "op_intr.write((x && y));");
    }

    #[test]
    fn float_literals_round_trip() {
        let e = parse_expr("0.25e-12").unwrap();
        let printed = pretty_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(e.kind, e2.kind);
    }

    #[test]
    fn method_call_prints() {
        let e = parse_expr("ip_in.read()").unwrap();
        assert_eq!(pretty_expr(&e), "ip_in.read()");
    }
}

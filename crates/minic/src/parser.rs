//! Recursive-descent parser for minic.
//!
//! The grammar (roughly):
//!
//! ```text
//! unit      := function*
//! function  := "void" IDENT ("::" IDENT)? "(" ")" block
//! block     := "{" stmt* "}"
//! stmt      := decl | assign | write | if | while | for
//!            | "return" ";" | "break" ";" | "continue" ";" | block | expr ";"
//! decl      := type IDENT ("=" expr)? ";"
//! assign    := IDENT ("=" | "+=" | "-=" | "*=" | "/=") expr ";"
//!            | IDENT ("++" | "--") ";"
//! write     := IDENT "." "write" "(" expr ")" ";"
//! if        := "if" "(" expr ")" stmt ("else" stmt)?
//! while     := "while" "(" expr ")" stmt
//! for       := "for" "(" simple? ";" expr? ";" simple? ")" stmt
//! expr      := or
//! or        := and ("||" and)*
//! and       := eq ("&&" eq)*
//! eq        := rel (("=="|"!=") rel)*
//! rel       := add (("<"|"<="|">"|">=") add)*
//! add       := mul (("+"|"-") mul)*
//! mul       := unary (("*"|"/"|"%") unary)*
//! unary     := ("-"|"!") unary | primary
//! primary   := literal | IDENT | IDENT "(" args ")" | IDENT "." IDENT "(" args ")"
//!            | "(" expr ")"
//! ```
//!
//! Single statements in `if`/`while`/`for` bodies are normalised into
//! one-statement [`Block`]s so later stages only deal with blocks.

use crate::ast::*;
use crate::diag::{MinicError, Result};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parses a full translation unit from source text.
///
/// # Errors
///
/// Returns the first lexical or syntax error encountered.
///
/// ```
/// let tu = minic::parse("void TS::processing() { double t = ip_in * 1000; }")?;
/// assert_eq!(tu.functions[0].model, "TS");
/// # Ok::<(), minic::MinicError>(())
/// ```
pub fn parse(src: &str) -> Result<TranslationUnit> {
    let tokens = lex(src)?;
    Parser::new(tokens).unit()
}

/// Parses a single statement (useful in tests and tools).
///
/// # Errors
///
/// Returns the first lexical or syntax error encountered.
pub fn parse_stmt(src: &str) -> Result<Stmt> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let s = p.stmt()?;
    p.expect_eof()?;
    Ok(s)
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns the first lexical or syntax error encountered.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_id: 0,
        }
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek_kind() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected end of input, found {}",
                self.peek_kind().describe()
            )))
        }
    }

    fn error(&self, msg: String) -> MinicError {
        MinicError::parse(self.peek().span.start, msg)
    }

    // ---------------------------------------------------------------- unit

    fn unit(&mut self) -> Result<TranslationUnit> {
        let mut functions = Vec::new();
        while self.peek_kind() != &TokenKind::Eof {
            functions.push(self.function()?);
        }
        Ok(TranslationUnit {
            functions,
            stmt_count: self.next_id,
        })
    }

    fn function(&mut self) -> Result<Function> {
        let start = self.expect(TokenKind::KwVoid)?.span;
        let (first, _) = self.expect_ident()?;
        let (model, name) = if self.eat(&TokenKind::ColonColon) {
            let (method, _) = self.expect_ident()?;
            (first, method)
        } else {
            (String::new(), first)
        };
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(Function {
            model,
            name,
            body,
            span,
        })
    }

    // ---------------------------------------------------------------- stmts

    fn block(&mut self) -> Result<Block> {
        let open = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while self.peek_kind() != &TokenKind::RBrace {
            if self.peek_kind() == &TokenKind::Eof {
                return Err(self.error("unclosed block: expected `}`".into()));
            }
            stmts.push(self.stmt()?);
        }
        let close = self.bump().span;
        Ok(Block {
            stmts,
            span: open.merge(close),
        })
    }

    /// Parses a statement; single statements after `if`/`while`/`for` are
    /// wrapped into one-statement blocks by [`Parser::body`].
    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek_kind() {
            TokenKind::KwDouble | TokenKind::KwInt | TokenKind::KwBool => self.decl(),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                let id = self.fresh_id();
                let span = self.bump().span;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    id,
                    kind: StmtKind::Return,
                    span: span.merge(end),
                })
            }
            TokenKind::KwBreak => {
                let id = self.fresh_id();
                let span = self.bump().span;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    id,
                    kind: StmtKind::Break,
                    span: span.merge(end),
                })
            }
            TokenKind::KwContinue => {
                let id = self.fresh_id();
                let span = self.bump().span;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    id,
                    kind: StmtKind::Continue,
                    span: span.merge(end),
                })
            }
            TokenKind::LBrace => {
                let id = self.fresh_id();
                let b = self.block()?;
                let span = b.span;
                Ok(Stmt {
                    id,
                    kind: StmtKind::Block(b),
                    span,
                })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// A statement without its trailing `;`: assignment, write, increment or
    /// bare expression. Used directly by `for(...)` headers.
    fn simple_stmt(&mut self) -> Result<Stmt> {
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            match self.peek2_kind().clone() {
                TokenKind::Assign
                | TokenKind::PlusAssign
                | TokenKind::MinusAssign
                | TokenKind::StarAssign
                | TokenKind::SlashAssign => {
                    let id = self.fresh_id();
                    let start = self.bump().span; // ident
                    let op = match self.bump().kind {
                        TokenKind::Assign => AssignOp::Assign,
                        TokenKind::PlusAssign => AssignOp::AddAssign,
                        TokenKind::MinusAssign => AssignOp::SubAssign,
                        TokenKind::StarAssign => AssignOp::MulAssign,
                        TokenKind::SlashAssign => AssignOp::DivAssign,
                        _ => unreachable!("guarded by peek2"),
                    };
                    let value = self.expr()?;
                    let span = start.merge(value.span);
                    return Ok(Stmt {
                        id,
                        kind: StmtKind::Assign {
                            target: name,
                            op,
                            value,
                        },
                        span,
                    });
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let id = self.fresh_id();
                    let start = self.bump().span; // ident
                    let op_tok = self.bump();
                    let op = if op_tok.kind == TokenKind::PlusPlus {
                        AssignOp::AddAssign
                    } else {
                        AssignOp::SubAssign
                    };
                    let span = start.merge(op_tok.span);
                    return Ok(Stmt {
                        id,
                        kind: StmtKind::Assign {
                            target: name,
                            op,
                            value: Expr::new(ExprKind::IntLit(1), op_tok.span),
                        },
                        span,
                    });
                }
                TokenKind::Dot => {
                    // Could be `p.write(e)` (a statement) or `p.read()`
                    // inside an expression statement; peek the method name.
                    if let TokenKind::Ident(method) = self.peek3_kind().clone() {
                        if method == "write" {
                            let id = self.fresh_id();
                            let start = self.bump().span; // ident
                            self.bump(); // dot
                            self.bump(); // write
                            self.expect(TokenKind::LParen)?;
                            let value = self.expr()?;
                            let end = self.expect(TokenKind::RParen)?.span;
                            return Ok(Stmt {
                                id,
                                kind: StmtKind::Write { port: name, value },
                                span: start.merge(end),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        let id = self.fresh_id();
        let e = self.expr()?;
        let span = e.span;
        Ok(Stmt {
            id,
            kind: StmtKind::Expr(e),
            span,
        })
    }

    fn peek3_kind(&self) -> &TokenKind {
        let i = (self.pos + 2).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn decl(&mut self) -> Result<Stmt> {
        let id = self.fresh_id();
        let ty_tok = self.bump();
        let ty = match ty_tok.kind {
            TokenKind::KwDouble => Type::Double,
            TokenKind::KwInt => Type::Int,
            TokenKind::KwBool => Type::Bool,
            _ => unreachable!("guarded by caller"),
        };
        let (name, _) = self.expect_ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt {
            id,
            kind: StmtKind::Decl { ty, name, init },
            span: ty_tok.span.merge(end),
        })
    }

    /// Parses the body of a control statement, wrapping a single statement
    /// into a block.
    fn body(&mut self) -> Result<Block> {
        if self.peek_kind() == &TokenKind::LBrace {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span;
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let id = self.fresh_id();
        let start = self.expect(TokenKind::KwIf)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.body()?;
        let mut span = start.merge(then_branch.span);
        let else_branch = if self.eat(&TokenKind::KwElse) {
            let b = self.body()?;
            span = span.merge(b.span);
            Some(b)
        } else {
            None
        };
        Ok(Stmt {
            id,
            kind: StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            span,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        let id = self.fresh_id();
        let start = self.expect(TokenKind::KwWhile)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.body()?;
        let span = start.merge(body.span);
        Ok(Stmt {
            id,
            kind: StmtKind::While { cond, body },
            span,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let id = self.fresh_id();
        let start = self.expect(TokenKind::KwFor)?.span;
        self.expect(TokenKind::LParen)?;
        let init = if self.peek_kind() == &TokenKind::Semi {
            self.bump();
            None
        } else if matches!(
            self.peek_kind(),
            TokenKind::KwDouble | TokenKind::KwInt | TokenKind::KwBool
        ) {
            Some(Box::new(self.decl()?)) // decl consumes the `;`
        } else {
            let s = self.simple_stmt()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(s))
        };
        let cond = if self.peek_kind() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.peek_kind() == &TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(TokenKind::RParen)?;
        let body = self.body()?;
        let span = start.merge(body.span);
        Ok(Stmt {
            id,
            kind: StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            span,
        })
    }

    // ---------------------------------------------------------------- exprs

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.eq_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.eq_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.rel_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            let start = self.bump().span;
            let inner = self.unary_expr()?;
            let span = start.merge(inner.span);
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(inner)), span));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokenKind::IntLit(v) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), t.span))
            }
            TokenKind::FloatLit(v) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), t.span))
            }
            TokenKind::BoolLit(v) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::BoolLit(v), t.span))
            }
            TokenKind::LParen => {
                let open = self.bump().span;
                let inner = self.expr()?;
                let close = self.expect(TokenKind::RParen)?.span;
                Ok(Expr::new(inner.kind, open.merge(close)))
            }
            TokenKind::Ident(name) => {
                let t = self.bump();
                if self.peek_kind() == &TokenKind::LParen {
                    let args = self.call_args()?;
                    let span = t.span.merge(self.tokens[self.pos - 1].span);
                    Ok(Expr::new(ExprKind::Call { callee: name, args }, span))
                } else if self.peek_kind() == &TokenKind::Dot {
                    self.bump();
                    let (method, _) = self.expect_ident()?;
                    let args = self.call_args()?;
                    let span = t.span.merge(self.tokens[self.pos - 1].span);
                    Ok(Expr::new(
                        ExprKind::MethodCall {
                            receiver: name,
                            method,
                            args,
                        },
                        span,
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), t.span))
                }
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_style_function() {
        let src = "\
void TS::processing()
{
    double sig_in = ip_signal_in;
    double tmpr = sig_in*1000;
    bool intr_ = false;
    if (!ip_hold){
        if (ip_clear) intr_ = 0;
        else if ((tmpr > 30) && (tmpr < 1500)){
            out_tmpr = tmpr;
            intr_ = true;
        }
        op_intr.write(intr_);
        op_signal_out = out_tmpr;
    }
}";
        let tu = parse(src).unwrap();
        assert_eq!(tu.functions.len(), 1);
        let f = &tu.functions[0];
        assert_eq!(f.model, "TS");
        assert_eq!(f.name, "processing");
        assert_eq!(f.body.stmts.len(), 4); // 3 decls + outer if
                                           // Check the decl on line 3 keeps its line number.
        assert_eq!(f.body.stmts[0].span.line(), 3);
    }

    #[test]
    fn else_if_chain_nests() {
        let src = "void f() { if (a) x = 1; else if (b) x = 2; else x = 3; }";
        let tu = parse(src).unwrap();
        let StmtKind::If { else_branch, .. } = &tu.functions[0].body.stmts[0].kind else {
            panic!("expected if");
        };
        let else_b = else_branch.as_ref().unwrap();
        assert_eq!(else_b.stmts.len(), 1);
        let StmtKind::If {
            else_branch: inner_else,
            ..
        } = &else_b.stmts[0].kind
        else {
            panic!("expected nested if");
        };
        assert!(inner_else.is_some());
    }

    #[test]
    fn port_write_is_write_stmt() {
        let s = parse_stmt("op_intr.write(intr_);").unwrap();
        let StmtKind::Write { port, value } = &s.kind else {
            panic!("expected write, got {:?}", s.kind);
        };
        assert_eq!(port, "op_intr");
        assert_eq!(value.reads(), vec!["intr_"]);
    }

    #[test]
    fn port_read_is_method_call_expr() {
        let e = parse_expr("ip_in.read()").unwrap();
        let ExprKind::MethodCall {
            receiver, method, ..
        } = &e.kind
        else {
            panic!("expected method call");
        };
        assert_eq!(receiver, "ip_in");
        assert_eq!(method, "read");
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("a + b * c").unwrap();
        let ExprKind::Binary(BinOp::Add, l, r) = &e.kind else {
            panic!("expected top-level add");
        };
        assert!(matches!(l.kind, ExprKind::Var(_)));
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn precedence_and_over_or() {
        let e = parse_expr("a || b && c").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn precedence_comparison_over_logical() {
        let e = parse_expr("tmpr > 30 && tmpr < 1500").unwrap();
        let ExprKind::Binary(BinOp::And, l, r) = &e.kind else {
            panic!("expected and");
        };
        assert!(matches!(l.kind, ExprKind::Binary(BinOp::Gt, _, _)));
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn unary_chains() {
        let e = parse_expr("!!a").unwrap();
        let ExprKind::Unary(UnOp::Not, inner) = &e.kind else {
            panic!();
        };
        assert!(matches!(inner.kind, ExprKind::Unary(UnOp::Not, _)));
        let e2 = parse_expr("-(-x)").unwrap();
        assert!(matches!(e2.kind, ExprKind::Unary(UnOp::Neg, _)));
    }

    #[test]
    fn compound_assignments() {
        let s = parse_stmt("x += y;").unwrap();
        let StmtKind::Assign { op, .. } = s.kind else {
            panic!()
        };
        assert_eq!(op, AssignOp::AddAssign);
    }

    #[test]
    fn increment_desugars_to_add_assign() {
        let s = parse_stmt("i++;").unwrap();
        let StmtKind::Assign { target, op, value } = s.kind else {
            panic!()
        };
        assert_eq!(target, "i");
        assert_eq!(op, AssignOp::AddAssign);
        assert_eq!(value.kind, ExprKind::IntLit(1));
    }

    #[test]
    fn for_loop_full_header() {
        let s = parse_stmt("for (int i = 0; i < 10; i++) { x = x + i; }").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &s.kind
        else {
            panic!()
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(step.is_some());
    }

    #[test]
    fn for_loop_empty_header() {
        let s = parse_stmt("for (;;) { break; }").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &s.kind
        else {
            panic!()
        };
        assert!(init.is_none());
        assert!(cond.is_none());
        assert!(step.is_none());
    }

    #[test]
    fn while_with_single_stmt_body_wraps_in_block() {
        let s = parse_stmt("while (a) x = 1;").unwrap();
        let StmtKind::While { body, .. } = &s.kind else {
            panic!()
        };
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn free_function_call_expr() {
        let e = parse_expr("abs(x - y)").unwrap();
        let ExprKind::Call { callee, args } = &e.kind else {
            panic!()
        };
        assert_eq!(callee, "abs");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn multiple_functions() {
        let tu = parse("void A::processing() { }\nvoid B::processing() { }").unwrap();
        assert_eq!(tu.functions.len(), 2);
        assert_eq!(tu.functions[1].model, "B");
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("void f() { x = 1 }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"), "{err}");
    }

    #[test]
    fn error_on_unclosed_block() {
        assert!(parse("void f() { x = 1;").is_err());
    }

    #[test]
    fn error_on_garbage_after_unit() {
        assert!(parse_expr("1 + 2 extra").is_err());
    }

    #[test]
    fn parenthesised_expression_keeps_inner_kind() {
        let e = parse_expr("(a + b)").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn decl_without_initializer() {
        let s = parse_stmt("double x;").unwrap();
        let StmtKind::Decl { init, .. } = &s.kind else {
            panic!()
        };
        assert!(init.is_none());
    }

    #[test]
    fn nested_blocks_parse() {
        let tu = parse("void f() { { { x = 1; } } }").unwrap();
        assert_eq!(tu.all_stmts().len(), 3);
    }
}

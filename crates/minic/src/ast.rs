//! Abstract syntax tree for the minic language.
//!
//! minic models the subset of C++ in which SystemC-AMS TDF `processing()`
//! bodies are written (cf. Fig. 2 of the paper): typed local declarations,
//! assignments, port writes via `port.write(expr)`, `if`/`else` chains,
//! `while`/`for` loops and expressions over doubles, ints and bools.
//!
//! Every statement carries a unique [`StmtId`] and a [`Span`]; the span's
//! start line is the "statement number" used in def-use association tuples
//! such as `(tmpr, 4, TS, 9, TS)`.

use std::fmt;

use crate::token::Span;

/// Unique identifier of a statement within a [`TranslationUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The primitive types of minic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// IEEE-754 double, the workhorse type of analog signal processing.
    Double,
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Double => write!(f, "double"),
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinOp {
    /// Whether the operator yields a boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is `&&` or `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        };
        write!(f, "{s}")
    }
}

/// Compound assignment operators (`=`, `+=`, `-=`, `*=`, `/=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=` — reads and then redefines the target.
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl AssignOp {
    /// Whether the target variable is *also read* by this assignment
    /// (true for every compound operator).
    pub fn reads_target(self) -> bool {
        !matches!(self, AssignOp::Assign)
    }

    /// The underlying binary operator of a compound assignment.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        }
    }
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        };
        write!(f, "{s}")
    }
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Expr {
    /// What kind of expression this is.
    pub kind: ExprKind,
    /// Source region of the expression.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Collects the names of all variables *read* by this expression, in
    /// left-to-right order (duplicates preserved).
    ///
    /// A `port.read()` method call counts as a read of `port`.
    ///
    /// ```
    /// let tu = minic::parse("void f() { y = a + b * a; }").unwrap();
    /// let f = &tu.functions[0];
    /// if let minic::StmtKind::Assign { value, .. } = &f.body.stmts[0].kind {
    ///     assert_eq!(value.reads(), vec!["a", "b", "a"]);
    /// } else {
    ///     unreachable!();
    /// }
    /// ```
    pub fn reads(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) => {}
            ExprKind::Var(name) => out.push(name.clone()),
            ExprKind::Unary(_, e) => e.collect_reads(out),
            ExprKind::Binary(_, l, r) => {
                l.collect_reads(out);
                r.collect_reads(out);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    a.collect_reads(out);
                }
            }
            ExprKind::MethodCall { receiver, args, .. } => {
                out.push(receiver.clone());
                for a in args {
                    a.collect_reads(out);
                }
            }
        }
    }
}

/// The different kinds of expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating point literal.
    FloatLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// Read of a variable, member or port (e.g. `tmpr`, `ip_signal_in`).
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Free function call, e.g. `abs(x)`; only builtin math functions exist.
    Call {
        /// Function name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Method call on a variable, e.g. `ip_signal_in.read()`.
    ///
    /// The receiver counts as a *read* of that variable. `port.write(e)` is
    /// never an expression — it is parsed as [`StmtKind::Write`].
    MethodCall {
        /// Receiver variable name.
        receiver: String,
        /// Method name (`read` in practice).
        method: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

/// Hashes by discriminant and exact bit pattern (`f64::to_bits` for float
/// literals). Used for content fingerprinting of parsed sources, not as a
/// map key — `ExprKind` is deliberately not `Eq` (NaN literals).
impl std::hash::Hash for ExprKind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            ExprKind::IntLit(v) => v.hash(state),
            ExprKind::FloatLit(v) => v.to_bits().hash(state),
            ExprKind::BoolLit(v) => v.hash(state),
            ExprKind::Var(name) => name.hash(state),
            ExprKind::Unary(op, e) => {
                op.hash(state);
                e.hash(state);
            }
            ExprKind::Binary(op, l, r) => {
                op.hash(state);
                l.hash(state);
                r.hash(state);
            }
            ExprKind::Call { callee, args } => {
                callee.hash(state);
                args.hash(state);
            }
            ExprKind::MethodCall {
                receiver,
                method,
                args,
            } => {
                receiver.hash(state);
                method.hash(state);
                args.hash(state);
            }
        }
    }
}

/// A statement with identity and source span.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Stmt {
    /// Unique id within the translation unit.
    pub id: StmtId,
    /// What kind of statement this is.
    pub kind: StmtKind,
    /// Source region; `span.line()` is the line reported in associations.
    pub span: Span,
}

/// The different kinds of statement.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum StmtKind {
    /// Local declaration `double x = e;` (the initializer is optional).
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Optional initializer; when present the declaration *defines* the
        /// variable.
        init: Option<Expr>,
    },
    /// Assignment `x = e;` or compound `x += e;`.
    Assign {
        /// Assigned variable (local, member or output port).
        target: String,
        /// Plain or compound operator.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// Port write `p.write(e);` — semantically a definition of `p`.
    Write {
        /// Port name.
        port: String,
        /// Written value.
        value: Expr,
    },
    /// Conditional with optional else branch. `else if` chains are
    /// represented as an else-block containing a single `If`.
    If {
        /// Condition (uses only, no defs).
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Optional else branch.
        else_branch: Option<Block>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init statement (decl or assignment).
        init: Option<Box<Stmt>>,
        /// Optional condition; absent means `true`.
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `return;` — TDF processing functions return no value.
    Return,
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested `{ ... }` block.
    Block(Block),
    /// A bare expression statement (e.g. a call for its side effects).
    Expr(Expr),
}

/// A `{ ... }` sequence of statements.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
    /// Source region of the whole block.
    pub span: Span,
}

impl Block {
    /// An empty block with an empty span.
    pub fn empty(span: Span) -> Self {
        Block {
            stmts: Vec::new(),
            span,
        }
    }
}

/// A function definition, e.g. `void TS::processing() { ... }`.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Function {
    /// The TDF model (class) name, e.g. `TS`; empty for free functions.
    pub model: String,
    /// The method name, conventionally `processing`.
    pub name: String,
    /// Function body.
    pub body: Block,
    /// Source region of the whole definition.
    pub span: Span,
}

impl Function {
    /// `Model::name` or just `name` for free functions.
    pub fn qualified_name(&self) -> String {
        if self.model.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.model, self.name)
        }
    }
}

/// A parsed source file: a sequence of function definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// All functions in source order.
    pub functions: Vec<Function>,
    /// One past the largest [`StmtId`] allocated; ids are dense in
    /// `0..stmt_count`.
    pub stmt_count: u32,
}

impl TranslationUnit {
    /// Finds the function implementing `model::name`.
    pub fn function(&self, model: &str, name: &str) -> Option<&Function> {
        self.functions
            .iter()
            .find(|f| f.model == model && f.name == name)
    }

    /// Finds the `processing()` function of `model`.
    pub fn processing(&self, model: &str) -> Option<&Function> {
        self.function(model, "processing")
    }

    /// Iterates over every statement in the unit (depth-first, in source
    /// order), together with the enclosing model name.
    pub fn all_stmts(&self) -> Vec<(&str, &Stmt)> {
        let mut out = Vec::new();
        for f in &self.functions {
            collect_stmts(&f.body, f.model.as_str(), &mut out);
        }
        out
    }
}

fn collect_stmts<'a>(block: &'a Block, model: &'a str, out: &mut Vec<(&'a str, &'a Stmt)>) {
    for s in &block.stmts {
        out.push((model, s));
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_stmts(then_branch, model, out);
                if let Some(e) = else_branch {
                    collect_stmts(e, model, out);
                }
            }
            StmtKind::While { body, .. } => collect_stmts(body, model, out),
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    out.push((model, i));
                }
                if let Some(st) = step {
                    out.push((model, st));
                }
                collect_stmts(body, model, out);
            }
            StmtKind::Block(b) => collect_stmts(b, model, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn assign_op_reads_target() {
        assert!(!AssignOp::Assign.reads_target());
        assert!(AssignOp::AddAssign.reads_target());
        assert_eq!(AssignOp::AddAssign.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Assign.binop(), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }

    #[test]
    fn expr_reads_include_method_receiver() {
        let tu = parse("void f() { x = ip_in.read() + y; }").unwrap();
        let f = &tu.functions[0];
        let StmtKind::Assign { value, .. } = &f.body.stmts[0].kind else {
            panic!("expected assignment");
        };
        assert_eq!(value.reads(), vec!["ip_in", "y"]);
    }

    #[test]
    fn qualified_name_formats() {
        let tu = parse("void TS::processing() { }").unwrap();
        assert_eq!(tu.functions[0].qualified_name(), "TS::processing");
        let tu2 = parse("void helper() { }").unwrap();
        assert_eq!(tu2.functions[0].qualified_name(), "helper");
    }

    #[test]
    fn all_stmts_walks_nested_structures() {
        let src = "void M::processing() {\n\
                   int i = 0;\n\
                   while (i < 3) { i = i + 1; if (i == 2) { x = 1; } }\n\
                   }";
        let tu = parse(src).unwrap();
        let stmts = tu.all_stmts();
        // decl, while, assign, if, assign-in-if
        assert_eq!(stmts.len(), 5);
        assert!(stmts.iter().all(|(m, _)| *m == "M"));
    }

    #[test]
    fn stmt_ids_are_dense_and_unique() {
        let src = "void A::processing() { x = 1; y = 2; }\n\
                   void B::processing() { if (c) { z = 3; } }";
        let tu = parse(src).unwrap();
        let mut ids: Vec<u32> = tu.all_stmts().iter().map(|(_, s)| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u32, tu.stmt_count);
        assert_eq!(*ids.last().unwrap() + 1, tu.stmt_count);
    }

    #[test]
    fn lookup_by_model() {
        let tu = parse("void TS::processing() { }\nvoid HS::processing() { }").unwrap();
        assert!(tu.processing("TS").is_some());
        assert!(tu.processing("HS").is_some());
        assert!(tu.processing("AM").is_none());
    }

    #[test]
    fn display_impls() {
        assert_eq!(Type::Double.to_string(), "double");
        assert_eq!(BinOp::Ge.to_string(), ">=");
        assert_eq!(UnOp::Not.to_string(), "!");
        assert_eq!(AssignOp::MulAssign.to_string(), "*=");
        assert_eq!(StmtId(3).to_string(), "s3");
    }
}

//! Stage 1 of Fig. 3: static analysis.
//!
//! Computes the over-approximated set of def-use associations of a design
//! and classifies each as Strong / Firm / PFirm / PWeak per §IV-B:
//!
//! * **intra-model** (locals and members): reaching definitions over the
//!   `processing()` CFG; Strong iff every static path def→use is a du-path,
//!   Firm otherwise. Member variables persist across activations, so their
//!   flows additionally wrap around the activation loop (def reaching the
//!   activation exit → upward-exposed use of the next activation).
//! * **cluster-level** (output ports): the netlist is traversed from every
//!   output port; branches that pass a redefining library element (delay,
//!   gain, buffer, …) carry that element's binding site as the new
//!   definition coordinate. Per using model: only original branches →
//!   Strong, original + redefined → PFirm, only redefined → PWeak.
//! * **externally-driven input ports** get a pseudo-definition at the model
//!   start line (§V: "input ports are assigned the start location of their
//!   TDF model"), e.g. `(ip_signal_in, 1, TS, 3, TS)`.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use dataflow::{
    analyse_subsumption, path_facts, BitSet, Cfg, DefSite as FlowDef, DuPair, Liveness, NodeId,
    ReachingDefs, SUBSUMPTION_PATH_LIMIT,
};
use tdf_interp::VarKind;
use tdf_sim::{DefSite, ModuleClass, Netlist, PortRef};

use crate::assoc::{Association, Classification, ClassifiedAssoc};
use crate::design::Design;
use crate::error::panic_payload_str;

/// Static-analysis findings that are not associations: suspicious shapes
/// the verification engineer should look at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticLint {
    /// A local definition whose value can never be used (dead code; the
    /// paper maps these to component isolation at circuit level).
    DeadLocalDef {
        /// Model name.
        model: String,
        /// The variable.
        var: String,
        /// Definition line.
        line: u32,
    },
    /// An input port that is bound but never read by the model source.
    UnusedInputPort {
        /// Model name.
        model: String,
        /// Port name.
        port: String,
    },
    /// An output port the model never writes on any path (every reader
    /// sees undefined samples — §VI's "use of ports without definitions").
    NeverWrittenOutput {
        /// Model name.
        model: String,
        /// Port name.
        port: String,
    },
    /// Classifying this model panicked (an internal invariant tripped on
    /// its source). The panic was caught: the model contributes no
    /// associations, but every other model's analysis is unaffected.
    AnalysisPanicked {
        /// Model name.
        model: String,
        /// The panic payload (message), when it was a string.
        payload: String,
    },
}

/// Subsumption reduction over the final association set.
///
/// Indices are positions in [`StaticAnalysis::associations`]. An
/// association is *dropped* when exercising some other (frontier)
/// association statically guarantees it was exercised too — the matcher
/// can skip its hot-path row and reconstruct the bit afterwards (see
/// [`dataflow::analyse_subsumption`] for the relation and its soundness
/// boundary). Only intra-model pairs whose tuple maps one-to-one onto a
/// du-pair participate; everything else conservatively stays tracked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsumptionInfo {
    /// Bit `i` set iff association `i` leaves hot-path tracking (it is
    /// implied by a frontier association). Capacity equals the
    /// association count — a default (empty) value drops nothing.
    pub dropped: BitSet,
    /// `(frontier index, implied dropped indices)` for every frontier
    /// association that implies at least one dropped one, sorted by
    /// frontier index.
    pub implied_by: Vec<(u32, BitSet)>,
}

impl Default for SubsumptionInfo {
    fn default() -> Self {
        SubsumptionInfo {
            dropped: BitSet::new(0),
            implied_by: Vec::new(),
        }
    }
}

impl SubsumptionInfo {
    /// Number of associations reduced away from hot-path tracking.
    pub fn dropped_count(&self) -> usize {
        self.dropped.len()
    }

    /// Whether association `i` is tracked on the hot path (frontier).
    pub fn is_tracked(&self, i: usize) -> bool {
        !self.dropped.contains(i)
    }
}

/// The result of the static stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StaticAnalysis {
    /// All classified associations, deduplicated, in report order.
    pub associations: Vec<ClassifiedAssoc>,
    /// Non-association findings.
    pub lints: Vec<StaticLint>,
    /// Which associations are subsumed by others (tracking reduction).
    pub subsumption: SubsumptionInfo,
}

impl StaticAnalysis {
    /// Associations of one classification.
    pub fn of_class(&self, class: Classification) -> Vec<&ClassifiedAssoc> {
        self.associations
            .iter()
            .filter(|a| a.class == class)
            .collect()
    }

    /// Total number of associations.
    pub fn len(&self) -> usize {
        self.associations.len()
    }

    /// Whether no associations were found.
    pub fn is_empty(&self) -> bool {
        self.associations.is_empty()
    }
}

/// Per-model analysis artefacts, cached for reuse.
struct ModelFlow {
    cfg: Cfg,
    rd: ReachingDefs,
    /// Use sites per variable: `(line, node)`.
    uses: HashMap<String, Vec<(u32, NodeId)>>,
    /// Flow of the optional `model::initialize()` function (its member
    /// definitions feed the first activation, §V).
    init: Option<(Cfg, ReachingDefs)>,
}

impl ModelFlow {
    fn compute(design: &Design, model: &str) -> ModelFlow {
        let f = design
            .tu()
            .processing(model)
            .expect("validated by Design::new");
        let cfg = Cfg::from_function(f);
        let rd = ReachingDefs::compute(&cfg);
        let mut uses: HashMap<String, Vec<(u32, NodeId)>> = HashMap::new();
        for n in cfg.nodes() {
            for u in &n.def_use.uses {
                uses.entry(u.name.clone()).or_default().push((u.line, n.id));
            }
        }
        let init = design.tu().function(model, "initialize").map(|init_f| {
            let icfg = Cfg::from_function(init_f);
            let ird = ReachingDefs::compute(&icfg);
            (icfg, ird)
        });
        ModelFlow {
            cfg,
            rd,
            uses,
            init,
        }
    }
}

/// Runs the full static analysis over `design`, fanning the per-model work
/// out across [`crate::thread_count`] workers.
pub fn analyse(design: &Design) -> StaticAnalysis {
    analyse_with_threads(design, crate::thread_count())
}

/// Runs the full static analysis on an explicit worker count.
///
/// The result is byte-identical for every `threads` value: workers only
/// compute per-model artefacts, and the merge walks models in
/// `design.user_models()` order, exactly like the sequential loop.
pub fn analyse_with_threads(design: &Design, threads: usize) -> StaticAnalysis {
    let _stage = obs::span("stage.static");
    static MODELS_ANALYSED: obs::Counter = obs::Counter::new("static.models_analysed");
    let models = design.user_models();
    MODELS_ANALYSED.add(models.len() as u64);

    // Per-model flow construction + intra-model classification fan out;
    // each worker also warms the model's reachability cache, which the
    // cluster stage below reuses.
    // Each work item is isolated with `catch_unwind`: a panic while
    // classifying one model (an internal invariant tripping on its source)
    // degrades to a `StaticLint::AnalysisPanicked` instead of tearing down
    // the whole analysis. Workers only *read* the shared `&Design`, so an
    // unwind cannot leave shared state torn — `AssertUnwindSafe` is sound.
    let per_model: Vec<(Vec<ClassifiedAssoc>, Vec<StaticLint>, Option<ModelFlow>)> =
        crate::par::par_map(&models, threads, |&model| {
            let _span = obs::span("static.model_classify");
            let isolated = catch_unwind(AssertUnwindSafe(|| {
                let flow = ModelFlow::compute(design, model);
                let mut assocs = Vec::new();
                let mut lints = Vec::new();
                intra_model(design, model, &flow, &mut assocs);
                member_cross_activation(design, model, &flow, &mut assocs);
                input_port_pseudo_defs(design, model, &flow, &mut assocs);
                lint_model(design, model, &flow, &mut lints);
                (assocs, lints, flow)
            }));
            match isolated {
                Ok((assocs, lints, flow)) => (assocs, lints, Some(flow)),
                Err(payload) => (
                    Vec::new(),
                    vec![StaticLint::AnalysisPanicked {
                        model: model.to_owned(),
                        payload: panic_payload_str(payload),
                    }],
                    None,
                ),
            }
        });

    let mut out: Vec<ClassifiedAssoc> = Vec::new();
    let mut lints = Vec::new();
    let mut flows: HashMap<String, ModelFlow> = HashMap::new();
    for (model, (assocs, model_lints, flow)) in models.iter().zip(per_model) {
        out.extend(assocs);
        lints.extend(model_lints);
        if let Some(flow) = flow {
            flows.insert((*model).to_owned(), flow);
        }
    }

    // The cluster stage reads all flows at once, so it runs after the
    // barrier above — again one model per work item, merged in order, with
    // the same per-model panic isolation. A model whose flow is missing
    // (its classify stage panicked) is skipped by `cluster_ports`.
    let cluster: Vec<(Vec<ClassifiedAssoc>, Option<StaticLint>)> =
        crate::par::par_map(&models, threads, |&model| {
            let _span = obs::span("static.cluster_ports");
            let isolated = catch_unwind(AssertUnwindSafe(|| {
                let mut assocs = Vec::new();
                cluster_ports(design, model, &flows, &mut assocs);
                assocs
            }));
            match isolated {
                Ok(assocs) => (assocs, None),
                Err(payload) => (
                    Vec::new(),
                    Some(StaticLint::AnalysisPanicked {
                        model: model.to_owned(),
                        payload: panic_payload_str(payload),
                    }),
                ),
            }
        });
    for (assocs, lint) in cluster {
        out.extend(assocs);
        lints.extend(lint);
    }

    // Pre-dedup emission counts: a tuple emitted more than once (member
    // cross-activation wrap, same-line def collisions, …) does not map
    // one-to-one onto a du-pair, so the subsumption stage below must
    // leave it tracked.
    let mut tuple_count: HashMap<&Association, u32> = HashMap::new();
    for c in &out {
        *tuple_count.entry(&c.assoc).or_insert(0) += 1;
    }
    let unique_tuples: HashSet<Association> = tuple_count
        .iter()
        .filter(|&(_, &n)| n == 1)
        .map(|(a, _)| (*a).clone())
        .collect();

    // Deduplicate on the tuple, keeping the first (intra-activation)
    // classification, then sort into report order.
    let mut seen: HashSet<Association> = HashSet::new();
    out.retain(|c| seen.insert(c.assoc.clone()));
    out.sort_by(|a, b| {
        (
            a.class,
            &a.assoc.def_model,
            &a.assoc.var,
            a.assoc.def_line,
            a.assoc.use_line,
        )
            .cmp(&(
                b.class,
                &b.assoc.def_model,
                &b.assoc.var,
                b.assoc.def_line,
                b.assoc.use_line,
            ))
    });

    let subsumption = compute_subsumption(design, &flows, &out, &unique_tuples);

    StaticAnalysis {
        associations: out,
        lints,
        subsumption,
    }
}

/// Computes the subsumption reduction over the final association set.
///
/// Per model (in `design.user_models()` order, so the result is identical
/// for every worker count), the eligible du-pairs — intra-model locals and
/// members whose tuple was emitted exactly once, so pair and association
/// correspond one-to-one — are fed to [`analyse_subsumption`]; local
/// frontier/dropped indices are then mapped onto global association
/// indices. Everything ineligible stays tracked conservatively.
fn compute_subsumption(
    design: &Design,
    flows: &HashMap<String, ModelFlow>,
    associations: &[ClassifiedAssoc],
    unique_tuples: &HashSet<Association>,
) -> SubsumptionInfo {
    let _span = obs::span("static.subsumption");
    let n = associations.len();
    let index_of: HashMap<&Association, usize> = associations
        .iter()
        .enumerate()
        .map(|(i, c)| (&c.assoc, i))
        .collect();
    let mut dropped = BitSet::new(n);
    let mut implied_by: Vec<(u32, BitSet)> = Vec::new();

    for model in design.user_models() {
        let Some(flow) = flows.get(model) else {
            continue;
        };
        let mut eligible: Vec<DuPair> = Vec::new();
        let mut global: Vec<usize> = Vec::new();
        for pair in flow.rd.pairs() {
            match design.kind_of(model, &pair.var) {
                VarKind::Local | VarKind::Member => {}
                VarKind::InPort(_) | VarKind::OutPort(_) => continue,
            }
            let assoc = Association::new(
                pair.var.clone(),
                flow.rd.def(pair.def).line,
                model,
                pair.use_line,
                model,
            );
            if !unique_tuples.contains(&assoc) {
                continue;
            }
            let Some(&gi) = index_of.get(&assoc) else {
                continue;
            };
            eligible.push(pair.clone());
            global.push(gi);
        }
        if eligible.len() < 2 {
            continue;
        }
        let g = analyse_subsumption(&flow.cfg, &flow.rd, &eligible, SUBSUMPTION_PATH_LIMIT);
        for (i, &gi) in global.iter().enumerate() {
            if !g.frontier.contains(i) {
                dropped.insert(gi);
            }
        }
        for i in 0..eligible.len() {
            if !g.frontier.contains(i) {
                continue;
            }
            let mut implied = BitSet::new(n);
            for j in g.subsumes[i].iter() {
                if j != i && !g.frontier.contains(j) {
                    implied.insert(global[j]);
                }
            }
            if !implied.is_empty() {
                implied_by.push((global[i] as u32, implied));
            }
        }
    }

    implied_by.sort_by_key(|(i, _)| *i);
    SubsumptionInfo {
        dropped,
        implied_by,
    }
}

/// Locals and members, same-activation flows.
fn intra_model(design: &Design, model: &str, flow: &ModelFlow, out: &mut Vec<ClassifiedAssoc>) {
    for pair in flow.rd.pairs() {
        match design.kind_of(model, &pair.var) {
            VarKind::Local | VarKind::Member => {
                let facts = path_facts(&flow.cfg, &flow.rd, pair);
                let class = if facts.all_paths_du() {
                    Classification::Strong
                } else {
                    Classification::Firm
                };
                out.push(ClassifiedAssoc {
                    assoc: Association::new(
                        pair.var.clone(),
                        flow.rd.def(pair.def).line,
                        model,
                        pair.use_line,
                        model,
                    ),
                    class,
                });
            }
            // Port flows are handled by the cluster / pseudo-def stages.
            VarKind::InPort(_) | VarKind::OutPort(_) => {}
        }
    }
}

/// Member flows that wrap around the activation loop: a definition reaching
/// the activation exit pairs with every upward-exposed use (a use reachable
/// from the entry without an intervening redefinition on some path).
fn member_cross_activation(
    design: &Design,
    model: &str,
    flow: &ModelFlow,
    out: &mut Vec<ClassifiedAssoc>,
) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    for (var, _) in &iface.members {
        let escaping: Vec<&FlowDef> = flow.rd.defs_reaching_exit(&flow.cfg, var);
        // Definitions inside initialize() also feed the first activation
        // ("or location of initialize() function", §V).
        let init_defs: Vec<(u32, bool)> = flow
            .init
            .as_ref()
            .map(|(icfg, ird)| {
                let redefs: Vec<NodeId> = ird.defs_of(var).iter().map(|d| d.node).collect();
                ird.defs_reaching_exit(icfg, var)
                    .into_iter()
                    .map(|d| {
                        let clean = !redefs
                            .iter()
                            .any(|&k| k != d.node && icfg.reaches(d.node).contains(k));
                        (d.line, clean)
                    })
                    .collect()
            })
            .unwrap_or_default();
        if escaping.is_empty() && init_defs.is_empty() {
            continue;
        }
        let Some(uses) = flow.uses.get(var) else {
            continue;
        };
        let redef_nodes: Vec<NodeId> = flow.rd.defs_of(var).iter().map(|d| d.node).collect();
        for &(uline, unode) in uses {
            if !upward_exposed(&flow.cfg, unode, &redef_nodes) {
                continue;
            }
            // Classification: Strong iff (a) no redefinition lies after the
            // def on any path to the exit, and (b) no redefinition lies
            // before the use on any path from the entry.
            let use_clean = entry_to_use_clean(&flow.cfg, unode, &redef_nodes);
            for d in &escaping {
                let def_clean = !redef_nodes
                    .iter()
                    .any(|&k| k != d.node && flow.cfg.reaches(d.node).contains(k));
                let class = if def_clean && use_clean {
                    Classification::Strong
                } else {
                    Classification::Firm
                };
                out.push(ClassifiedAssoc {
                    assoc: Association::new(var.clone(), d.line, model, uline, model),
                    class,
                });
            }
            for (dline, def_clean) in &init_defs {
                let class = if *def_clean && use_clean {
                    Classification::Strong
                } else {
                    Classification::Firm
                };
                out.push(ClassifiedAssoc {
                    assoc: Association::new(var.clone(), *dline, model, uline, model),
                    class,
                });
            }
        }
    }
}

/// Whether some path entry→`use_node` carries no definition of the variable
/// (the use can observe the previous activation's value).
fn upward_exposed(cfg: &Cfg, use_node: NodeId, redefs: &[NodeId]) -> bool {
    // Backward BFS from the use, not expanding through redefining nodes.
    let mut seen = vec![false; cfg.len()];
    let mut work: Vec<NodeId> = cfg.preds(use_node).to_vec();
    while let Some(n) = work.pop() {
        if seen[n] {
            continue;
        }
        seen[n] = true;
        if n == cfg.entry() {
            return true;
        }
        if redefs.contains(&n) {
            continue; // this path is fed by the redefinition instead
        }
        work.extend(cfg.preds(n).iter().copied());
    }
    false
}

/// Whether *every* path entry→use is free of redefinitions (used for the
/// Strong/Firm split of cross-activation member pairs).
fn entry_to_use_clean(cfg: &Cfg, use_node: NodeId, redefs: &[NodeId]) -> bool {
    !redefs
        .iter()
        .any(|&k| k != use_node && cfg.reaches(k).contains(use_node))
}

/// Pseudo-definitions for input ports driven from outside the analysed
/// models (testbench or open), e.g. `(ip_signal_in, 1, TS, 3, TS)`.
fn input_port_pseudo_defs(
    design: &Design,
    model: &str,
    flow: &ModelFlow,
    out: &mut Vec<ClassifiedAssoc>,
) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    for p in &iface.inputs {
        if upstream_origin(design.netlist(), model, &p.name) != Origin::External {
            continue;
        }
        let Some(uses) = flow.uses.get(&p.name) else {
            continue;
        };
        let start = design.start_line(model);
        for &(uline, _) in uses {
            out.push(ClassifiedAssoc {
                assoc: Association::new(p.name.clone(), start, model, uline, model),
                class: Classification::Strong,
            });
        }
    }
}

/// Where the samples feeding an input port originate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// A user-code model (handled by the forward cluster traversal).
    UserModel,
    /// A testbench source, an open input, or a component chain that starts
    /// at one.
    External,
}

fn upstream_origin(netlist: &Netlist, model: &str, port: &str) -> Origin {
    let mut visited: HashSet<(String, String)> = HashSet::new();
    let mut cur = (model.to_owned(), port.to_owned());
    loop {
        if !visited.insert(cur.clone()) {
            return Origin::External; // component cycle without a model
        }
        let Some(binding) = netlist.driver(&cur.0, &cur.1) else {
            return Origin::External; // open input
        };
        match netlist.class_of(&binding.from.model) {
            Some(ModuleClass::UserCode) => return Origin::UserModel,
            Some(ModuleClass::Testbench) | None => return Origin::External,
            Some(ModuleClass::Redefining(_)) | Some(ModuleClass::Transparent) => {
                // SISO library element: continue from its (sole) input.
                let Some(info) = netlist.module(&binding.from.model) else {
                    return Origin::External;
                };
                let Some(inp) = info.in_ports.first() else {
                    return Origin::External; // source-like component
                };
                cur = (info.name.clone(), inp.clone());
            }
        }
    }
}

/// One resolved branch of an output port's fanout: `site` is `None` while
/// the signal is still the original definition, or the binding site of the
/// last redefining element passed.
#[derive(Debug, Clone)]
struct Branch {
    site: Option<DefSite>,
    dest: PortRef,
}

fn collect_branches(netlist: &Netlist, model: &str, port: &str) -> Vec<Branch> {
    let mut out = Vec::new();
    let mut visited: HashSet<(String, String)> = HashSet::new();
    walk_branches(netlist, model, port, None, &mut visited, &mut out);
    out
}

fn walk_branches(
    netlist: &Netlist,
    model: &str,
    port: &str,
    site: Option<DefSite>,
    visited: &mut HashSet<(String, String)>,
    out: &mut Vec<Branch>,
) {
    if !visited.insert((model.to_owned(), port.to_owned())) {
        return;
    }
    for b in netlist.fanout(model, port) {
        match netlist.class_of(&b.to.model) {
            Some(ModuleClass::UserCode) => out.push(Branch {
                site: site.clone(),
                dest: b.to.clone(),
            }),
            Some(ModuleClass::Testbench) | None => {}
            Some(ModuleClass::Transparent) => {
                if let Some(info) = netlist.module(&b.to.model) {
                    for op in info.out_ports.clone() {
                        walk_branches(netlist, &b.to.model, &op, site.clone(), visited, out);
                    }
                }
            }
            Some(ModuleClass::Redefining(s)) => {
                let s = s.clone();
                if let Some(info) = netlist.module(&b.to.model) {
                    for op in info.out_ports.clone() {
                        walk_branches(netlist, &b.to.model, &op, Some(s.clone()), visited, out);
                    }
                }
            }
        }
    }
}

/// Cluster-level associations from every output port of `model`.
fn cluster_ports(
    design: &Design,
    model: &str,
    flows: &HashMap<String, ModelFlow>,
    out: &mut Vec<ClassifiedAssoc>,
) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    // No flow means this model's classify stage panicked; its cluster
    // pairs are sacrificed along with it.
    let Some(flow) = flows.get(model) else {
        return;
    };
    for p in &iface.outputs {
        let defs = flow.rd.defs_reaching_exit(&flow.cfg, &p.name);
        let branches = collect_branches(design.netlist(), model, &p.name);
        // Group branches by destination model (§IV-B.1 rule d). A BTreeMap
        // keeps the pre-dedup emission order independent of hasher state —
        // dedup keeps the *first* duplicate, so iteration order matters.
        let mut by_dest: BTreeMap<&str, Vec<&Branch>> = BTreeMap::new();
        for b in &branches {
            by_dest.entry(b.dest.model.as_str()).or_default().push(b);
        }
        for (dest_model, group) in by_dest {
            let has_original = group.iter().any(|b| b.site.is_none());
            let has_redefined = group.iter().any(|b| b.site.is_some());
            let class = match (has_original, has_redefined) {
                (true, false) => Classification::Strong,
                (true, true) => Classification::PFirm,
                (false, true) => Classification::PWeak,
                (false, false) => continue,
            };
            let Some(dest_flow) = flows.get(dest_model) else {
                continue;
            };
            for b in group {
                let Some(uses) = dest_flow.uses.get(&b.dest.port) else {
                    continue;
                };
                match &b.site {
                    None => {
                        for d in &defs {
                            for &(uline, _) in uses {
                                out.push(ClassifiedAssoc {
                                    assoc: Association::new(
                                        p.name.clone(),
                                        d.line,
                                        model,
                                        uline,
                                        dest_model,
                                    ),
                                    class,
                                });
                            }
                        }
                    }
                    Some(site) => {
                        for &(uline, _) in uses {
                            out.push(ClassifiedAssoc {
                                assoc: Association::new(
                                    p.name.clone(),
                                    site.line,
                                    site.model.clone(),
                                    uline,
                                    dest_model,
                                ),
                                class,
                            });
                        }
                    }
                }
            }
        }
    }
}

fn lint_model(design: &Design, model: &str, flow: &ModelFlow, lints: &mut Vec<StaticLint>) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    // Escaping names: ports and members survive the activation.
    let escaping: Vec<String> = iface
        .outputs
        .iter()
        .map(|p| p.name.clone())
        .chain(iface.members.iter().map(|(m, _)| m.clone()))
        .collect();
    let lv = Liveness::compute(&flow.cfg, &escaping);
    for (node, var) in lv.dead_defs(&flow.cfg) {
        if design.kind_of(model, &var) == VarKind::Local {
            lints.push(StaticLint::DeadLocalDef {
                model: model.to_owned(),
                var,
                line: flow.cfg.node(node).line,
            });
        }
    }
    for p in &iface.inputs {
        if !flow.uses.contains_key(&p.name) {
            lints.push(StaticLint::UnusedInputPort {
                model: model.to_owned(),
                port: p.name.clone(),
            });
        }
    }
    for p in &iface.outputs {
        if flow.rd.defs_of(&p.name).is_empty() {
            lints.push(StaticLint::NeverWrittenOutput {
                model: model.to_owned(),
                port: p.name.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{ModuleInfo, NetBinding};

    fn user(name: &str, ins: &[&str], outs: &[&str]) -> ModuleInfo {
        ModuleInfo {
            name: name.into(),
            class: ModuleClass::UserCode,
            in_ports: ins.iter().map(|s| s.to_string()).collect(),
            out_ports: outs.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn lib(name: &str, class: ModuleClass) -> ModuleInfo {
        ModuleInfo {
            name: name.into(),
            class,
            in_ports: vec!["tdf_i".into()],
            out_ports: vec!["tdf_o".into()],
        }
    }

    fn bind(fm: &str, fp: &str, tm: &str, tp: &str) -> NetBinding {
        NetBinding {
            from: PortRef::new(fm, fp),
            to: PortRef::new(tm, tp),
        }
    }

    fn find<'a>(
        sa: &'a StaticAnalysis,
        var: &str,
        d: u32,
        dm: &str,
        u: u32,
        um: &str,
    ) -> Option<&'a ClassifiedAssoc> {
        sa.associations
            .iter()
            .find(|c| c.assoc == Association::new(var, d, dm, u, um))
    }

    /// A two-model design: A computes and drives B directly and through a
    /// delay (the PFirm shape), while a gain-only path feeds C (PWeak).
    fn pfirm_design() -> Design {
        let src = "\
void A::processing()
{
    double t = ip_in * 2;
    double o = 0;
    if (t > 1) { o = t; }
    op_y = o;
}
void B::processing()
{
    double v = ip_direct + ip_delayed;
    op_out = v;
}
void C::processing()
{
    double w = ip_scaled;
    op_out = w;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("A", Interface::new().input("ip_in").output("op_y")),
            TdfModelDef::new(
                "B",
                Interface::new()
                    .input("ip_direct")
                    .input("ip_delayed")
                    .output("op_out"),
            ),
            TdfModelDef::new("C", Interface::new().input("ip_scaled").output("op_out")),
        ];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![
                bind("src", "op_out", "A", "ip_in"),
                bind("A", "op_y", "B", "ip_direct"),
                bind("A", "op_y", "z1", "tdf_i"),
                bind("z1", "tdf_o", "B", "ip_delayed"),
                bind("A", "op_y", "g1", "tdf_i"),
                bind("g1", "tdf_o", "C", "ip_scaled"),
            ],
            modules: vec![
                ModuleInfo {
                    name: "src".into(),
                    class: ModuleClass::Testbench,
                    in_ports: vec![],
                    out_ports: vec!["op_out".into()],
                },
                user("A", &["ip_in"], &["op_y"]),
                user("B", &["ip_direct", "ip_delayed"], &["op_out"]),
                user("C", &["ip_scaled"], &["op_out"]),
                lib("z1", ModuleClass::Redefining(DefSite::new("top", 74))),
                lib("g1", ModuleClass::Redefining(DefSite::new("top", 77))),
            ],
        };
        Design::new(tu, models, netlist).unwrap()
    }

    #[test]
    fn local_strong_and_firm_split() {
        let sa = analyse(&pfirm_design());
        // (t, 3, A, 5, A): single path, Strong.
        assert_eq!(
            find(&sa, "t", 3, "A", 5, "A").unwrap().class,
            Classification::Strong
        );
        // (o, 4, A, 6, A): redefined on the then-branch, Firm.
        assert_eq!(
            find(&sa, "o", 4, "A", 6, "A").unwrap().class,
            Classification::Firm
        );
        // (o, 5, A, 6, A): the redefinition itself is Strong.
        assert_eq!(
            find(&sa, "o", 5, "A", 6, "A").unwrap().class,
            Classification::Strong
        );
    }

    #[test]
    fn mixed_branches_to_same_model_are_pfirm() {
        let sa = analyse(&pfirm_design());
        // Original branch into B (use of ip_direct at line 10).
        let orig = find(&sa, "op_y", 6, "A", 10, "B").unwrap();
        assert_eq!(orig.class, Classification::PFirm);
        // Redefined branch through the delay bound at top:74.
        let redef = find(&sa, "op_y", 74, "top", 10, "B").unwrap();
        assert_eq!(redef.class, Classification::PFirm);
    }

    #[test]
    fn purely_redefined_branch_is_pweak() {
        let sa = analyse(&pfirm_design());
        let pw = find(&sa, "op_y", 77, "top", 15, "C").unwrap();
        assert_eq!(pw.class, Classification::PWeak);
        // And no original-coordinate pair into C exists.
        assert!(find(&sa, "op_y", 6, "A", 15, "C").is_none());
    }

    #[test]
    fn testbench_driven_input_gets_pseudo_def_at_start_line() {
        let sa = analyse(&pfirm_design());
        // A::processing() is declared on line 1; ip_in is used on line 3.
        let p = find(&sa, "ip_in", 1, "A", 3, "A").unwrap();
        assert_eq!(p.class, Classification::Strong);
    }

    #[test]
    fn model_driven_input_has_no_pseudo_def() {
        let sa = analyse(&pfirm_design());
        // ip_direct is driven by A, so no pseudo-def pair at B's start.
        assert!(find(&sa, "ip_direct", 8, "B", 10, "B").is_none());
    }

    #[test]
    fn direct_connection_is_strong() {
        // A drives B directly with no component in between.
        let src = "void A::processing() { op_y = ip_in; }\n\
                   void B::processing() { op_z = ip_x; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("A", Interface::new().input("ip_in").output("op_y")),
            TdfModelDef::new("B", Interface::new().input("ip_x").output("op_z")),
        ];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![bind("A", "op_y", "B", "ip_x")],
            modules: vec![
                user("A", &["ip_in"], &["op_y"]),
                user("B", &["ip_x"], &["op_z"]),
            ],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        let s = find(&sa, "op_y", 1, "A", 2, "B").unwrap();
        assert_eq!(s.class, Classification::Strong);
    }

    /// The paper's ctrl-style member: defined at the end of one activation,
    /// used at the start of the next — still Strong.
    #[test]
    fn member_cross_activation_pairs_are_found_strong() {
        let src = "\
void M::processing()
{
    if (ip_go) {
        if (m_state == 1) { op_y = 1; m_state = 0; }
        else { m_state = 1; }
    }
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_go")
                .output("op_y")
                .member("m_state", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_go"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        // def at 5 (else branch), use at 4 (next activation's condition):
        let a = find(&sa, "m_state", 5, "M", 4, "M").unwrap();
        assert_eq!(a.class, Classification::Strong);
        // def at 4 (then branch), use at 4 as well (next activation):
        let b = find(&sa, "m_state", 4, "M", 4, "M").unwrap();
        assert_eq!(b.class, Classification::Strong);
    }

    #[test]
    fn member_cross_activation_firm_when_redefined_before_use() {
        // m is unconditionally redefined at the top of the activation, so a
        // def surviving from the previous activation only feeds the line-3
        // use; the cross pair def(5) -> use(4) must not exist... but the
        // use at line 3 (before redefinition) pairs with def 5 and is
        // upward-exposed. The redefinition at line 3 kills everything else.
        let src = "\
void M::processing()
{
    double t = m_s;
    m_s = ip_in;
    op_y = m_s + t;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_in")
                .output("op_y")
                .member("m_s", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_in"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        // Cross-activation: def(4) -> use(3) exists and is Strong (no other
        // defs of m_s anywhere on def->exit or entry->use segments).
        let a = find(&sa, "m_s", 4, "M", 3, "M").unwrap();
        assert_eq!(a.class, Classification::Strong);
        // Same-activation def(4) -> use(5) Strong as well.
        let b = find(&sa, "m_s", 4, "M", 5, "M").unwrap();
        assert_eq!(b.class, Classification::Strong);
        // The use at 5 is NOT upward-exposed (killed at 4): no pair with a
        // def from a previous activation — there is only one def anyway.
        assert_eq!(
            sa.associations
                .iter()
                .filter(|c| c.assoc.var == "m_s")
                .count(),
            2
        );
    }

    #[test]
    fn lints_flag_dead_defs_and_unused_ports() {
        let src = "\
void M::processing()
{
    double dead = 1;
    double used = 2;
    op_y = used;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_never")
                .output("op_y")
                .output("op_never"),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_never"], &["op_y", "op_never"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        assert!(sa.lints.iter().any(|l| matches!(
            l,
            StaticLint::DeadLocalDef { var, .. } if var == "dead"
        )));
        assert!(sa.lints.iter().any(|l| matches!(
            l,
            StaticLint::UnusedInputPort { port, .. } if port == "ip_never"
        )));
        assert!(sa.lints.iter().any(|l| matches!(
            l,
            StaticLint::NeverWrittenOutput { port, .. } if port == "op_never"
        )));
    }

    #[test]
    fn open_input_gets_pseudo_def() {
        let src = "void M::processing() { op_y = ip_open; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new().input("ip_open").output("op_y"),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_open"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        assert!(find(&sa, "ip_open", 1, "M", 1, "M").is_some());
    }

    #[test]
    fn killed_port_def_does_not_escape() {
        let src = "\
void M::processing()
{
    op_y = 1;
    op_y = 2;
}
void N::processing() { op_z = ip_x; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("M", Interface::new().output("op_y")),
            TdfModelDef::new("N", Interface::new().input("ip_x").output("op_z")),
        ];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![bind("M", "op_y", "N", "ip_x")],
            modules: vec![user("M", &[], &["op_y"]), user("N", &["ip_x"], &["op_z"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        assert!(find(&sa, "op_y", 3, "M", 6, "N").is_none(), "killed def");
        assert!(find(&sa, "op_y", 4, "M", 6, "N").is_some());
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let d = pfirm_design();
        let baseline = analyse_with_threads(&d, 1);
        for threads in [2, 3, 8] {
            assert_eq!(analyse_with_threads(&d, threads), baseline);
        }
        assert_eq!(analyse(&d), baseline, "default path agrees too");
    }

    #[test]
    fn subsumption_reduces_nested_local_windows() {
        // (t,3 -> 5) subsumes (t,3 -> 4) and (u,4 -> 5): both leave the
        // frontier and appear in its implied set.
        let src = "\
void M::processing()
{
    double t = ip_in;
    double u = t;
    op_y = t + u;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new().input("ip_in").output("op_y"),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_in"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        let idx = |var: &str, dl: u32, ul: u32| {
            sa.associations
                .iter()
                .position(|c| c.assoc == Association::new(var, dl, "M", ul, "M"))
                .unwrap()
        };
        let t34 = idx("t", 3, 4);
        let t35 = idx("t", 3, 5);
        let u45 = idx("u", 4, 5);
        assert!(sa.subsumption.dropped.contains(t34));
        assert!(sa.subsumption.dropped.contains(u45));
        assert!(sa.subsumption.is_tracked(t35));
        assert_eq!(sa.subsumption.dropped_count(), 2);
        let (fi, implied) = sa
            .subsumption
            .implied_by
            .iter()
            .find(|(i, _)| *i as usize == t35)
            .expect("t35 implies the dropped pairs");
        assert_eq!(*fi as usize, t35);
        assert!(implied.contains(t34) && implied.contains(u45));
        // Port-level associations are never eligible, hence never dropped.
        for (i, c) in sa.associations.iter().enumerate() {
            if c.assoc.var.starts_with("ip_") || c.assoc.var.starts_with("op_") {
                assert!(sa.subsumption.is_tracked(i), "{} stays tracked", c.assoc);
            }
        }
    }

    #[test]
    fn every_dropped_association_is_implied_by_a_tracked_one() {
        let sa = analyse(&pfirm_design());
        for i in 0..sa.associations.len() {
            if sa.subsumption.is_tracked(i) {
                continue;
            }
            assert!(
                sa.subsumption
                    .implied_by
                    .iter()
                    .any(|(f, implied)| sa.subsumption.is_tracked(*f as usize)
                        && implied.contains(i)),
                "dropped {} has no tracked implier",
                sa.associations[i].assoc
            );
        }
    }

    #[test]
    fn member_cross_activation_tuples_stay_tracked() {
        // m_state tuples are emitted by both the intra-activation and the
        // cross-activation stage, so the one-to-one guard must keep every
        // one of them on the frontier.
        let src = "\
void M::processing()
{
    if (ip_go) {
        if (m_state == 1) { op_y = 1; m_state = 0; }
        else { m_state = 1; }
    }
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_go")
                .output("op_y")
                .member("m_state", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_go"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        for (i, c) in sa.associations.iter().enumerate() {
            if c.assoc.var == "m_state" {
                assert!(sa.subsumption.is_tracked(i), "{} must stay", c.assoc);
            }
        }
    }

    #[test]
    fn associations_are_deduplicated_and_sorted_by_class() {
        let sa = analyse(&pfirm_design());
        let mut seen = HashSet::new();
        for c in &sa.associations {
            assert!(seen.insert(c.assoc.clone()), "duplicate {c}");
        }
        let classes: Vec<Classification> = sa.associations.iter().map(|c| c.class).collect();
        let mut sorted = classes.clone();
        sorted.sort();
        assert_eq!(classes, sorted, "grouped by classification");
    }
}

#[cfg(test)]
mod cycle_tests {
    use super::*;
    use crate::design::Design;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{ModuleInfo, NetBinding, Netlist};

    /// A pathological netlist where two gains feed each other in a loop and
    /// one of them also feeds a model: traversal must terminate and the
    /// input's upstream origin must resolve as external.
    #[test]
    fn component_only_cycles_terminate() {
        let src = "void M::processing() { op_y = ip_x; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new().input("ip_x").output("op_y"),
        )];
        let lib = |name: &str, line: u32| ModuleInfo {
            name: name.into(),
            class: ModuleClass::Redefining(DefSite::new("top", line)),
            in_ports: vec!["tdf_i".into()],
            out_ports: vec!["tdf_o".into()],
        };
        let bind = |fm: &str, fp: &str, tm: &str, tp: &str| NetBinding {
            from: PortRef::new(fm, fp),
            to: PortRef::new(tm, tp),
        };
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![
                // g1 <-> g2 loop, with g2 also feeding M and M feeding g1.
                bind("g1", "tdf_o", "g2", "tdf_i"),
                bind("g2", "tdf_o", "g1", "tdf_i"),
                bind("g2", "tdf_o", "M", "ip_x"),
                bind("M", "op_y", "g1", "tdf_i"),
            ],
            modules: vec![
                ModuleInfo {
                    name: "M".into(),
                    class: ModuleClass::UserCode,
                    in_ports: vec!["ip_x".into()],
                    out_ports: vec!["op_y".into()],
                },
                lib("g1", 10),
                lib("g2", 11),
            ],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d); // must terminate
                              // M's own output loops back through g1/g2 into M: a purely
                              // redefined branch with g2's site.
        assert!(sa.associations.iter().any(|c| c.assoc.def_line == 11
            && c.assoc.def_model == "top"
            && c.class == Classification::PWeak));
    }

    #[test]
    fn upstream_origin_of_component_cycle_is_external() {
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![
                NetBinding {
                    from: PortRef::new("g1", "tdf_o"),
                    to: PortRef::new("M", "ip_x"),
                },
                NetBinding {
                    from: PortRef::new("g1", "tdf_o"),
                    to: PortRef::new("g1", "tdf_i"),
                },
            ],
            modules: vec![
                ModuleInfo {
                    name: "M".into(),
                    class: ModuleClass::UserCode,
                    in_ports: vec!["ip_x".into()],
                    out_ports: vec![],
                },
                ModuleInfo {
                    name: "g1".into(),
                    class: ModuleClass::Redefining(DefSite::new("top", 9)),
                    in_ports: vec!["tdf_i".into()],
                    out_ports: vec!["tdf_o".into()],
                },
            ],
        };
        assert_eq!(upstream_origin(&netlist, "M", "ip_x"), Origin::External);
    }
}

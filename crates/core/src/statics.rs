//! Stage 1 of Fig. 3: static analysis.
//!
//! Computes the over-approximated set of def-use associations of a design
//! and classifies each as Strong / Firm / PFirm / PWeak per §IV-B:
//!
//! * **intra-model** (locals and members): reaching definitions over the
//!   `processing()` CFG; Strong iff every static path def→use is a du-path,
//!   Firm otherwise. Member variables persist across activations, so their
//!   flows additionally wrap around the activation loop (def reaching the
//!   activation exit → upward-exposed use of the next activation).
//! * **cluster-level** (output ports): the netlist is traversed from every
//!   output port; branches that pass a redefining library element (delay,
//!   gain, buffer, …) carry that element's binding site as the new
//!   definition coordinate. Per using model: only original branches →
//!   Strong, original + redefined → PFirm, only redefined → PWeak.
//! * **externally-driven input ports** get a pseudo-definition at the model
//!   start line (§V: "input ports are assigned the start location of their
//!   TDF model"), e.g. `(ip_signal_in, 1, TS, 3, TS)`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use dataflow::{
    analyse_subsumption, path_facts, BitSet, Cfg, DefSite as FlowDef, DuPair, Liveness, NodeId,
    ReachingDefs, SubsumptionGraph, SUBSUMPTION_PATH_LIMIT,
};
use tdf_interp::VarKind;
use tdf_sim::{DefSite, ModuleClass, Netlist, PortRef};

use crate::assoc::{Association, Classification, ClassifiedAssoc};
use crate::design::Design;
use crate::error::panic_payload_str;

/// Static-analysis findings that are not associations: suspicious shapes
/// the verification engineer should look at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticLint {
    /// A local definition whose value can never be used (dead code; the
    /// paper maps these to component isolation at circuit level).
    DeadLocalDef {
        /// Model name.
        model: String,
        /// The variable.
        var: String,
        /// Definition line.
        line: u32,
    },
    /// An input port that is bound but never read by the model source.
    UnusedInputPort {
        /// Model name.
        model: String,
        /// Port name.
        port: String,
    },
    /// An output port the model never writes on any path (every reader
    /// sees undefined samples — §VI's "use of ports without definitions").
    NeverWrittenOutput {
        /// Model name.
        model: String,
        /// Port name.
        port: String,
    },
    /// Classifying this model panicked (an internal invariant tripped on
    /// its source). The panic was caught: the model contributes no
    /// associations, but every other model's analysis is unaffected.
    AnalysisPanicked {
        /// Model name.
        model: String,
        /// The panic payload (message), when it was a string.
        payload: String,
    },
}

/// Subsumption reduction over the final association set.
///
/// Indices are positions in [`StaticAnalysis::associations`]. An
/// association is *dropped* when exercising some other (frontier)
/// association statically guarantees it was exercised too — the matcher
/// can skip its hot-path row and reconstruct the bit afterwards (see
/// [`dataflow::analyse_subsumption`] for the relation and its soundness
/// boundary). Only intra-model pairs whose tuple maps one-to-one onto a
/// du-pair participate; everything else conservatively stays tracked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsumptionInfo {
    /// Bit `i` set iff association `i` leaves hot-path tracking (it is
    /// implied by a frontier association). Capacity equals the
    /// association count — a default (empty) value drops nothing.
    pub dropped: BitSet,
    /// `(frontier index, implied dropped indices)` for every frontier
    /// association that implies at least one dropped one, sorted by
    /// frontier index.
    pub implied_by: Vec<(u32, BitSet)>,
}

impl Default for SubsumptionInfo {
    fn default() -> Self {
        SubsumptionInfo {
            dropped: BitSet::new(0),
            implied_by: Vec::new(),
        }
    }
}

impl SubsumptionInfo {
    /// Number of associations reduced away from hot-path tracking.
    pub fn dropped_count(&self) -> usize {
        self.dropped.len()
    }

    /// Whether association `i` is tracked on the hot path (frontier).
    pub fn is_tracked(&self, i: usize) -> bool {
        !self.dropped.contains(i)
    }
}

/// The result of the static stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StaticAnalysis {
    /// All classified associations, deduplicated, in report order.
    pub associations: Vec<ClassifiedAssoc>,
    /// Non-association findings.
    pub lints: Vec<StaticLint>,
    /// Which associations are subsumed by others (tracking reduction).
    pub subsumption: SubsumptionInfo,
}

impl StaticAnalysis {
    /// Associations of one classification.
    pub fn of_class(&self, class: Classification) -> Vec<&ClassifiedAssoc> {
        self.associations
            .iter()
            .filter(|a| a.class == class)
            .collect()
    }

    /// Total number of associations.
    pub fn len(&self) -> usize {
        self.associations.len()
    }

    /// Whether no associations were found.
    pub fn is_empty(&self) -> bool {
        self.associations.is_empty()
    }
}

/// Per-model analysis artefacts, cached for reuse.
#[derive(Debug)]
struct ModelFlow {
    cfg: Cfg,
    rd: ReachingDefs,
    /// Use sites per variable: `(line, node)`.
    uses: HashMap<String, Vec<(u32, NodeId)>>,
    /// Flow of the optional `model::initialize()` function (its member
    /// definitions feed the first activation, §V).
    init: Option<(Cfg, ReachingDefs)>,
}

impl ModelFlow {
    fn compute(design: &Design, model: &str) -> ModelFlow {
        let f = design
            .tu()
            .processing(model)
            .expect("validated by Design::new");
        let cfg = Cfg::from_function(f);
        let rd = ReachingDefs::compute(&cfg);
        let mut uses: HashMap<String, Vec<(u32, NodeId)>> = HashMap::new();
        for n in cfg.nodes() {
            for u in &n.def_use.uses {
                uses.entry(u.name.clone()).or_default().push((u.line, n.id));
            }
        }
        let init = design.tu().function(model, "initialize").map(|init_f| {
            let icfg = Cfg::from_function(init_f);
            let ird = ReachingDefs::compute(&icfg);
            (icfg, ird)
        });
        ModelFlow {
            cfg,
            rd,
            uses,
            init,
        }
    }
}

/// Whether per-model artifact memoization is enabled: the `DFT_INCR`
/// environment variable; `0` / `false` / `off` opt out to the exact
/// non-memoized analysis path (no cache consultation, no splicing from a
/// previous build). Reports are byte-identical either way — the knob only
/// trades recomputation for memory.
pub fn incremental_enabled() -> bool {
    !matches!(
        std::env::var("DFT_INCR"),
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off")
    )
}

/// FNV-1a accumulator — the same zero-dependency hash the interner and
/// `dft-serve`'s artifact cache use. Implements [`Hasher`] so fingerprints
/// stream `#[derive(Hash)]` AST/interface/netlist structure directly
/// instead of hashing their `Debug` renderings (an order of magnitude
/// cheaper, and it is also the `BuildHasherDefault` backing the merge-stage
/// maps below).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a over 8-byte lanes (remainder byte-wise): same mixing
        // shape, one multiply per word instead of per byte. Keys are
        // process-internal, so the exact function only has to be
        // deterministic within one run.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.0 ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for &b in chunks.remainder() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// FNV-backed hash map for the merge stage: the keys are association
/// tuples (or their pre-computed keys) hashed many times per build, where
/// SipHash dominates.
type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// Content key of one model: everything `compute_model_artifact` reads.
///
/// * the model's functions, hashed **with spans** — association tuples
///   embed absolute source lines, so an edit that only shifts the model's
///   code must change the key;
/// * its [`Interface`](tdf_interp::Interface) (ports with rates/delays,
///   members with initial values, timestep);
/// * per input port, whether its upstream origin resolves external — the
///   one netlist-dependent fact the pseudo-def stage consumes.
fn model_fingerprint(design: &Design, model: &str) -> u64 {
    let mut h = Fnv::new();
    model.hash(&mut h);
    for f in &design.tu().functions {
        if f.model == model {
            f.hash(&mut h);
        }
    }
    0x1fu8.hash(&mut h);
    if let Some(iface) = design.interface(model) {
        iface.hash(&mut h);
        for p in &iface.inputs {
            p.name.hash(&mut h);
            match upstream_origin(design.netlist(), model, &p.name) {
                Origin::UserModel => 1u8.hash(&mut h),
                Origin::External => 2u8.hash(&mut h),
            }
        }
    }
    h.finish()
}

/// Content key of the cluster binding information (the cluster-stage
/// traversal reads the whole netlist).
fn netlist_fingerprint(design: &Design) -> u64 {
    let mut h = Fnv::new();
    design.netlist().hash(&mut h);
    h.finish()
}

/// Pre-computed merge key of one association tuple. Stored next to every
/// emitted association at artifact/unit build time, so the merge's
/// count / dedup / index maps hash one `u64` per lookup instead of
/// re-hashing the tuple's strings on every build — cached artifacts carry
/// their keys along. Key equality is always confirmed by a tuple equality
/// check before it affects the output, so a 64-bit collision can never
/// change a report.
fn assoc_key(a: &Association) -> u64 {
    let mut h = Fnv::new();
    a.hash(&mut h);
    h.finish()
}

/// Subsumption candidates of one model, frozen at artifact-build time.
///
/// `candidates` are the Local/Member du-pairs whose association tuple was
/// emitted exactly once by *this model's own* stages — a superset of the
/// globally eligible set (another model or the cluster stage can still
/// collide on the tuple design-wide). The merge checks global uniqueness
/// and reuses `graph` when nothing collided, which is the overwhelmingly
/// common case.
#[derive(Debug)]
struct ModelSub {
    /// `(du-pair, its association tuple, the tuple's [`assoc_key`])` in
    /// `rd.pairs()` order.
    candidates: Vec<(DuPair, Association, u64)>,
    /// Subsumption graph over all `candidates` (`None` when fewer than 2).
    graph: Option<SubsumptionGraph>,
}

/// Everything the static stage derives from one model's keyed material:
/// flow (CFG + reaching definitions + warmed reachability cache),
/// intra-model associations in emission order, lints, and the per-model
/// subsumption candidates. Immutable once built and `Sync`, so one
/// `Arc<ModelArtifact>` is shared between the process-wide
/// [`ModelArtifactCache`], retained [`StaticBuild`]s and in-flight merges.
#[derive(Debug)]
pub(crate) struct ModelArtifact {
    /// `None` when classifying the model panicked — the artifact then
    /// carries the [`StaticLint::AnalysisPanicked`] lint instead.
    flow: Option<ModelFlow>,
    /// Intra-model + cross-activation + pseudo-def associations, in the
    /// exact order the worker emitted them (dedup keeps the first).
    assocs: Vec<ClassifiedAssoc>,
    /// [`assoc_key`] of each entry of `assocs`, same order.
    assoc_keys: Vec<u64>,
    lints: Vec<StaticLint>,
    /// `None` iff `flow` is `None`.
    sub: Option<ModelSub>,
}

/// Capacity of the process-wide model-artifact cache. Artifacts are small
/// (one CFG + reaching-defs + association vector per model); this bounds
/// residency far above any realistic concurrent design set.
const MODEL_CACHE_CAPACITY: usize = 1024;

/// A bounded, thread-safe, LRU cache of [`ModelArtifact`]s keyed by
/// [`model_fingerprint`] — same zero-dependency style as `dft-serve`'s
/// whole-design `ArtifactCache`, one level below it: `analyse_with_threads`
/// consults the process-wide instance so re-analysing a design in which a
/// model is unchanged pays a hash lookup instead of a CFG + reaching-defs
/// + classification rebuild for that model.
pub(crate) struct ModelArtifactCache {
    entries: Mutex<VecDeque<(u64, Arc<ModelArtifact>)>>,
    capacity: usize,
}

impl ModelArtifactCache {
    /// Creates a cache holding at most `capacity` model artifacts (min 1).
    pub(crate) fn new(capacity: usize) -> ModelArtifactCache {
        ModelArtifactCache {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// The process-wide instance consulted by [`analyse_with_threads`].
    pub(crate) fn global() -> &'static ModelArtifactCache {
        static GLOBAL: OnceLock<ModelArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ModelArtifactCache::new(MODEL_CACHE_CAPACITY))
    }

    /// Looks up `key`, promoting a hit to most-recently-used.
    fn lookup(&self, key: u64) -> Option<Arc<ModelArtifact>> {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let pos = entries.iter().position(|(k, _)| *k == key)?;
        let entry = entries.remove(pos).expect("position came from this deque");
        let found = Arc::clone(&entry.1);
        entries.push_back(entry);
        Some(found)
    }

    /// Inserts (or refreshes) `key`, evicting least-recently-used entries
    /// beyond capacity.
    fn insert(&self, key: u64, artifact: &Arc<ModelArtifact>) {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            let entry = entries.remove(pos).expect("position came from this deque");
            entries.push_back(entry);
            return;
        }
        while entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back((key, Arc::clone(artifact)));
    }

    /// Number of resident artifacts.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// Cluster-stage result of one model within a [`StaticBuild`].
#[derive(Debug, Clone)]
struct ClusterUnit {
    /// Cluster-level associations emitted from this model's output ports.
    assocs: Vec<ClassifiedAssoc>,
    /// [`assoc_key`] of each entry of `assocs`, same order.
    assoc_keys: Vec<u64>,
    /// The panic lint when the traversal panicked (assocs then empty).
    lint: Option<StaticLint>,
    /// Destination models whose flows the emission consulted; reuse of
    /// this unit requires each of their fingerprints unchanged.
    deps: Vec<String>,
}

/// One model's slot in a [`StaticBuild`].
#[derive(Debug)]
struct PerModelBuild {
    name: String,
    key: u64,
    artifact: Arc<ModelArtifact>,
    cluster: ClusterUnit,
}

/// The per-model decomposition of one finished static analysis, retained
/// inside `SessionArtifacts` so a later build of an *edited* design can
/// splice every unchanged model's artifact — and every cluster unit whose
/// inputs (netlist, own model, destination models) are unchanged — instead
/// of recomputing them.
#[derive(Debug)]
pub(crate) struct StaticBuild {
    netlist_key: u64,
    models: Vec<PerModelBuild>,
}

impl StaticBuild {
    /// Number of user models this analysis covered.
    pub(crate) fn model_count(&self) -> usize {
        self.models.len()
    }
}

/// A finished static stage: the analysis plus its per-model decomposition
/// and how many models actually had to be recomputed.
pub(crate) struct StaticOutcome {
    pub(crate) analysis: StaticAnalysis,
    pub(crate) build: StaticBuild,
    pub(crate) models_rebuilt: usize,
}

/// Runs the full static analysis over `design`, fanning the per-model work
/// out across [`crate::thread_count`] workers.
pub fn analyse(design: &Design) -> StaticAnalysis {
    analyse_with_threads(design, crate::thread_count())
}

/// Runs the full static analysis on an explicit worker count.
///
/// The result is byte-identical for every `threads` value: workers only
/// compute per-model artefacts, and the merge walks models in
/// `design.user_models()` order, exactly like the sequential loop. Unless
/// `DFT_INCR=0`, unchanged models resolve from the process-wide
/// [`ModelArtifactCache`] instead of recomputing — with byte-identical
/// output either way.
pub fn analyse_with_threads(design: &Design, threads: usize) -> StaticAnalysis {
    let cache = incremental_enabled().then(ModelArtifactCache::global);
    analyse_build(design, threads, cache, None).analysis
}

/// Computes one model's full artifact (the per-model worker body).
///
/// The work is isolated with `catch_unwind`: a panic while classifying one
/// model (an internal invariant tripping on its source) degrades to a
/// `StaticLint::AnalysisPanicked` instead of tearing down the whole
/// analysis. Workers only *read* the shared `&Design`, so an unwind cannot
/// leave shared state torn — `AssertUnwindSafe` is sound.
fn compute_model_artifact(design: &Design, model: &str) -> ModelArtifact {
    let _span = obs::span("static.model_classify");
    let isolated = catch_unwind(AssertUnwindSafe(|| {
        let flow = ModelFlow::compute(design, model);
        let mut assocs = Vec::new();
        let mut lints = Vec::new();
        intra_model(design, model, &flow, &mut assocs);
        member_cross_activation(design, model, &flow, &mut assocs);
        input_port_pseudo_defs(design, model, &flow, &mut assocs);
        lint_model(design, model, &flow, &mut lints);
        let sub = model_subsumption(design, model, &flow, &assocs);
        (flow, assocs, lints, sub)
    }));
    match isolated {
        Ok((flow, assocs, lints, sub)) => {
            let assoc_keys = assocs.iter().map(|c| assoc_key(&c.assoc)).collect();
            ModelArtifact {
                flow: Some(flow),
                assocs,
                assoc_keys,
                lints,
                sub: Some(sub),
            }
        }
        Err(payload) => ModelArtifact {
            flow: None,
            assocs: Vec::new(),
            assoc_keys: Vec::new(),
            lints: vec![StaticLint::AnalysisPanicked {
                model: model.to_owned(),
                payload: panic_payload_str(payload),
            }],
            sub: None,
        },
    }
}

/// Collects the model's subsumption candidates and pre-computes their
/// graph (moving that work off the merge thread and into the cacheable
/// per-model unit).
fn model_subsumption(
    design: &Design,
    model: &str,
    flow: &ModelFlow,
    own_emissions: &[ClassifiedAssoc],
) -> ModelSub {
    let mut count: HashMap<&Association, u32> = HashMap::new();
    for c in own_emissions {
        *count.entry(&c.assoc).or_insert(0) += 1;
    }
    let mut candidates: Vec<(DuPair, Association, u64)> = Vec::new();
    for pair in flow.rd.pairs() {
        match design.kind_of(model, &pair.var) {
            VarKind::Local | VarKind::Member => {}
            VarKind::InPort(_) | VarKind::OutPort(_) => continue,
        }
        let assoc = Association::new(
            pair.var.clone(),
            flow.rd.def(pair.def).line,
            model,
            pair.use_line,
            model,
        );
        if count.get(&assoc) != Some(&1) {
            continue;
        }
        let key = assoc_key(&assoc);
        candidates.push((pair.clone(), assoc, key));
    }
    let graph = (candidates.len() >= 2).then(|| {
        let pairs: Vec<DuPair> = candidates.iter().map(|(p, _, _)| p.clone()).collect();
        analyse_subsumption(&flow.cfg, &flow.rd, &pairs, SUBSUMPTION_PATH_LIMIT)
    });
    ModelSub { candidates, graph }
}

/// The full static stage with explicit memoization inputs: an optional
/// process-wide [`ModelArtifactCache`] and an optional previous
/// [`StaticBuild`] to splice unchanged models (and unchanged cluster
/// units) from. Both `None` is the exact cold path.
///
/// The merge is byte-identical to the historical single-pass analysis for
/// every combination of inputs: per-model association blocks concatenate
/// in `design.user_models()` order, then cluster blocks in the same order,
/// then the historical dedup / sort / subsumption mapping runs over the
/// concatenation.
pub(crate) fn analyse_build(
    design: &Design,
    threads: usize,
    cache: Option<&ModelArtifactCache>,
    prev: Option<&StaticBuild>,
) -> StaticOutcome {
    let _stage = obs::span("stage.static");
    static MODELS_ANALYSED: obs::Counter = obs::Counter::new("static.models_analysed");
    static MODEL_HIT: obs::Counter = obs::Counter::new("static.model_cache.hit");
    static MODEL_MISS: obs::Counter = obs::Counter::new("static.model_cache.miss");
    static REBUILT: obs::Counter = obs::Counter::new("incremental.models_rebuilt");
    let models = design.user_models();
    MODELS_ANALYSED.add(models.len() as u64);
    // Keys only matter when there is something to look them up in or a
    // build to splice from; the pure-cold path (DFT_INCR=0) skips the
    // fingerprint pass entirely. A build stored with zero keys can never
    // match a real fingerprint later, so splicing from it is a safe no-op.
    let keyed = cache.is_some() || prev.is_some();
    let (keys, netlist_key) = if keyed {
        let _span = obs::span("static.fingerprint");
        let keys: Vec<u64> = models
            .iter()
            .map(|&m| model_fingerprint(design, m))
            .collect();
        (keys, netlist_fingerprint(design))
    } else {
        (vec![0; models.len()], 0)
    };

    // Resolve per-model artifacts: the previous build first (no lock, no
    // eviction pressure), then the shared cache; whatever is left fans out
    // to workers exactly like the cold path.
    let mut artifacts: Vec<Option<Arc<ModelArtifact>>> = vec![None; models.len()];
    if keyed {
        for (slot, (&model, &key)) in artifacts.iter_mut().zip(models.iter().zip(&keys)) {
            let found = prev
                .and_then(|p| p.models.iter().find(|m| m.name == model && m.key == key))
                .map(|m| Arc::clone(&m.artifact))
                .or_else(|| cache.and_then(|c| c.lookup(key)));
            match found {
                Some(art) => {
                    MODEL_HIT.add(1);
                    *slot = Some(art);
                }
                None => MODEL_MISS.add(1),
            }
        }
    }
    let missing: Vec<usize> = (0..models.len())
        .filter(|&i| artifacts[i].is_none())
        .collect();
    let models_rebuilt = missing.len();
    REBUILT.add(models_rebuilt as u64);
    let rebuilt: Vec<Arc<ModelArtifact>> = crate::par::par_map(&missing, threads, |&i| {
        Arc::new(compute_model_artifact(design, models[i]))
    });
    for (&i, art) in missing.iter().zip(&rebuilt) {
        artifacts[i] = Some(Arc::clone(art));
    }
    let artifacts: Vec<Arc<ModelArtifact>> = artifacts
        .into_iter()
        .map(|a| a.expect("every slot resolved or rebuilt"))
        .collect();
    if let Some(cache) = cache {
        for (key, art) in keys.iter().zip(&artifacts) {
            cache.insert(*key, art);
        }
    }

    let mut out: Vec<(ClassifiedAssoc, u64)> =
        Vec::with_capacity(artifacts.iter().map(|a| a.assocs.len()).sum());
    let mut lints: Vec<StaticLint> = Vec::new();
    for art in &artifacts {
        out.extend(
            art.assocs
                .iter()
                .cloned()
                .zip(art.assoc_keys.iter().copied()),
        );
        lints.extend(art.lints.iter().cloned());
    }

    // Flow lookup for the cluster stage, by name: a later same-named model
    // overwrites an earlier one, exactly like the historical HashMap
    // insert order. A missing entry means that model's classify stage
    // panicked; `cluster_ports` skips it.
    let mut flows: HashMap<&str, &ModelFlow> = HashMap::new();
    for (&model, art) in models.iter().zip(&artifacts) {
        if let Some(flow) = &art.flow {
            flows.insert(model, flow);
        }
    }

    // The cluster stage reads all flows at once, so it runs after the
    // fan-in above. A unit is spliced from the previous build iff the
    // netlist, the emitting model, and every destination model it
    // consulted are fingerprint-unchanged (panicked units never splice —
    // their dependency set is unknown); the rest recompute one model per
    // work item with the same per-model panic isolation as before.
    let mut cluster: Vec<Option<ClusterUnit>> = vec![None; models.len()];
    if let Some(p) = prev {
        if p.netlist_key == netlist_key {
            for (i, (&model, &key)) in models.iter().zip(&keys).enumerate() {
                let Some(pm) = p.models.iter().find(|m| m.name == model && m.key == key) else {
                    continue;
                };
                if pm.cluster.lint.is_some() {
                    continue;
                }
                let deps_unchanged = pm.cluster.deps.iter().all(|dep| {
                    let cur = models.iter().position(|&m| m == dep.as_str());
                    let old = p.models.iter().find(|m| &m.name == dep);
                    matches!((cur, old), (Some(j), Some(o)) if o.key == keys[j])
                });
                if deps_unchanged {
                    cluster[i] = Some(pm.cluster.clone());
                }
            }
        }
    }
    let todo: Vec<usize> = (0..models.len())
        .filter(|&i| cluster[i].is_none())
        .collect();
    let computed: Vec<ClusterUnit> = crate::par::par_map(&todo, threads, |&i| {
        let _span = obs::span("static.cluster_ports");
        let isolated = catch_unwind(AssertUnwindSafe(|| {
            let mut assocs = Vec::new();
            let mut deps = BTreeSet::new();
            cluster_ports(design, models[i], &flows, &mut assocs, &mut deps);
            (assocs, deps)
        }));
        match isolated {
            Ok((assocs, deps)) => {
                let assoc_keys = assocs.iter().map(|c| assoc_key(&c.assoc)).collect();
                ClusterUnit {
                    assocs,
                    assoc_keys,
                    lint: None,
                    deps: deps.into_iter().collect(),
                }
            }
            Err(payload) => ClusterUnit {
                assocs: Vec::new(),
                assoc_keys: Vec::new(),
                lint: Some(StaticLint::AnalysisPanicked {
                    model: models[i].to_owned(),
                    payload: panic_payload_str(payload),
                }),
                deps: Vec::new(),
            },
        }
    });
    for (&i, unit) in todo.iter().zip(computed) {
        cluster[i] = Some(unit);
    }
    let cluster: Vec<ClusterUnit> = cluster
        .into_iter()
        .map(|c| c.expect("every cluster slot spliced or computed"))
        .collect();
    for unit in &cluster {
        out.extend(
            unit.assocs
                .iter()
                .cloned()
                .zip(unit.assoc_keys.iter().copied()),
        );
        lints.extend(unit.lint.iter().cloned());
    }

    let _merge_span = obs::span("static.merge");
    // Pre-dedup emission counts: a tuple emitted more than once (member
    // cross-activation wrap, same-line def collisions, …) does not map
    // one-to-one onto a du-pair, so the subsumption stage below must
    // leave it tracked.
    // One pass over the pre-computed keys computes both: the keep mask
    // ("is this the first occurrence") and the duplicate tuples — the
    // tuples emitted *more than once*. Candidate tuples were all emitted
    // (count >= 1), so "unique" == "not a duplicate", and duplicates are
    // rare, keeping the set (and its clones) tiny instead of cloning
    // every tuple in the design. Distinct tuples sharing a 64-bit key are
    // counted exactly in the equality-keyed overflow map, so a collision
    // can never merge two different tuples.
    let (keep, dup_tuples) = {
        let mut counts: FnvMap<u64, (u32, u32)> =
            FnvMap::with_capacity_and_hasher(out.len(), Default::default());
        let mut overflow: FnvMap<&Association, u32> = FnvMap::default();
        let mut keep: Vec<bool> = Vec::with_capacity(out.len());
        for (i, (c, key)) in out.iter().enumerate() {
            match counts.entry(*key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((i as u32, 1));
                    keep.push(true);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (first, n) = e.get_mut();
                    if out[*first as usize].0.assoc == c.assoc {
                        *n += 1;
                        keep.push(false);
                    } else {
                        let n = overflow.entry(&c.assoc).or_insert(0);
                        keep.push(*n == 0);
                        *n += 1;
                    }
                }
            }
        }
        let mut dup_tuples: FnvMap<u64, Vec<Association>> = FnvMap::default();
        for (&key, &(first, n)) in &counts {
            if n > 1 {
                dup_tuples
                    .entry(key)
                    .or_default()
                    .push(out[first as usize].0.assoc.clone());
            }
        }
        for (assoc, &n) in &overflow {
            if n > 1 {
                dup_tuples
                    .entry(assoc_key(assoc))
                    .or_default()
                    .push((*assoc).clone());
            }
        }
        (keep, dup_tuples)
    };

    // Deduplicate on the tuple, keeping the first (intra-activation)
    // classification, then sort into report order.
    let mut it = keep.iter();
    out.retain(|_| *it.next().expect("keep mask covers every association"));
    out.sort_by(|(a, _), (b, _)| {
        (
            a.class,
            &a.assoc.def_model,
            &a.assoc.var,
            a.assoc.def_line,
            a.assoc.use_line,
        )
            .cmp(&(
                b.class,
                &b.assoc.def_model,
                &b.assoc.var,
                b.assoc.def_line,
                b.assoc.use_line,
            ))
    });

    let subsumption = merge_subsumption(&models, &artifacts, &out, &dup_tuples);

    let build = StaticBuild {
        netlist_key,
        models: models
            .iter()
            .zip(keys)
            .zip(artifacts.iter().zip(cluster))
            .map(|((&name, key), (artifact, cluster))| PerModelBuild {
                name: name.to_owned(),
                key,
                artifact: Arc::clone(artifact),
                cluster,
            })
            .collect(),
    };
    StaticOutcome {
        analysis: StaticAnalysis {
            associations: out.into_iter().map(|(c, _)| c).collect(),
            lints,
            subsumption,
        },
        build,
        models_rebuilt,
    }
}

/// Maps the per-model subsumption graphs onto the final association set.
///
/// Per model (in `design.user_models()` order, so the result is identical
/// for every worker count), the eligible du-pairs — the artifact's
/// candidates whose tuple stayed unique *design-wide* — map their local
/// frontier/dropped indices onto global association indices. When every
/// candidate survived the global check (the common case) the artifact's
/// pre-computed graph is reused as-is; otherwise the graph is recomputed
/// over the filtered pair set, which is exactly what the historical
/// merge-thread pass computed. Everything ineligible stays tracked
/// conservatively.
fn merge_subsumption(
    models: &[&str],
    artifacts: &[Arc<ModelArtifact>],
    associations: &[(ClassifiedAssoc, u64)],
    dup_tuples: &FnvMap<u64, Vec<Association>>,
) -> SubsumptionInfo {
    let _span = obs::span("static.subsumption");
    let n = associations.len();
    // Keyed by the pre-computed tuple key; first index wins (the entries
    // are already deduplicated, so two slots sharing a key is a 64-bit
    // collision of *distinct* tuples). Lookups equality-check the slot
    // before use — a collision victim just stays conservatively tracked.
    let mut index_of: FnvMap<u64, usize> = FnvMap::with_capacity_and_hasher(n, Default::default());
    for (i, (_, key)) in associations.iter().enumerate() {
        index_of.entry(*key).or_insert(i);
    }
    // Same-named duplicate resolution as the historical flows HashMap:
    // the last instance wins (duplicate names share all keyed material,
    // so their artifacts are identical anyway).
    let mut by_name: HashMap<&str, &ModelArtifact> = HashMap::new();
    for (&model, art) in models.iter().zip(artifacts) {
        if art.flow.is_some() {
            by_name.insert(model, art);
        }
    }
    let mut dropped = BitSet::new(n);
    let mut implied_by: Vec<(u32, BitSet)> = Vec::new();

    for &model in models {
        let Some(art) = by_name.get(model) else {
            continue;
        };
        let (Some(flow), Some(sub)) = (&art.flow, &art.sub) else {
            continue;
        };
        let eligible: Vec<(usize, usize)> = sub
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, (_, assoc, key))| {
                !dup_tuples
                    .get(key)
                    .is_some_and(|dups| dups.iter().any(|d| d == assoc))
            })
            .filter_map(|(i, (_, assoc, key))| {
                index_of
                    .get(key)
                    .filter(|&&gi| &associations[gi].0.assoc == assoc)
                    .map(|&gi| (i, gi))
            })
            .collect();
        if eligible.len() < 2 {
            continue;
        }
        let recomputed: Option<SubsumptionGraph>;
        let g: &SubsumptionGraph = if eligible.len() == sub.candidates.len() {
            match &sub.graph {
                Some(g) => g,
                None => continue,
            }
        } else {
            let pairs: Vec<DuPair> = eligible
                .iter()
                .map(|&(i, _)| sub.candidates[i].0.clone())
                .collect();
            recomputed = Some(analyse_subsumption(
                &flow.cfg,
                &flow.rd,
                &pairs,
                SUBSUMPTION_PATH_LIMIT,
            ));
            recomputed.as_ref().expect("just set")
        };
        for (k, &(_, gi)) in eligible.iter().enumerate() {
            if !g.frontier.contains(k) {
                dropped.insert(gi);
            }
        }
        for k in 0..eligible.len() {
            if !g.frontier.contains(k) {
                continue;
            }
            let mut implied = BitSet::new(n);
            for j in g.subsumes[k].iter() {
                if j != k && !g.frontier.contains(j) {
                    implied.insert(eligible[j].1);
                }
            }
            if !implied.is_empty() {
                implied_by.push((eligible[k].1 as u32, implied));
            }
        }
    }

    implied_by.sort_by_key(|(i, _)| *i);
    SubsumptionInfo {
        dropped,
        implied_by,
    }
}

/// Locals and members, same-activation flows.
fn intra_model(design: &Design, model: &str, flow: &ModelFlow, out: &mut Vec<ClassifiedAssoc>) {
    for pair in flow.rd.pairs() {
        match design.kind_of(model, &pair.var) {
            VarKind::Local | VarKind::Member => {
                let facts = path_facts(&flow.cfg, &flow.rd, pair);
                let class = if facts.all_paths_du() {
                    Classification::Strong
                } else {
                    Classification::Firm
                };
                out.push(ClassifiedAssoc {
                    assoc: Association::new(
                        pair.var.clone(),
                        flow.rd.def(pair.def).line,
                        model,
                        pair.use_line,
                        model,
                    ),
                    class,
                });
            }
            // Port flows are handled by the cluster / pseudo-def stages.
            VarKind::InPort(_) | VarKind::OutPort(_) => {}
        }
    }
}

/// Member flows that wrap around the activation loop: a definition reaching
/// the activation exit pairs with every upward-exposed use (a use reachable
/// from the entry without an intervening redefinition on some path).
fn member_cross_activation(
    design: &Design,
    model: &str,
    flow: &ModelFlow,
    out: &mut Vec<ClassifiedAssoc>,
) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    for (var, _) in &iface.members {
        let escaping: Vec<&FlowDef> = flow.rd.defs_reaching_exit(&flow.cfg, var);
        // Definitions inside initialize() also feed the first activation
        // ("or location of initialize() function", §V).
        let init_defs: Vec<(u32, bool)> = flow
            .init
            .as_ref()
            .map(|(icfg, ird)| {
                let redefs: Vec<NodeId> = ird.defs_of(var).iter().map(|d| d.node).collect();
                ird.defs_reaching_exit(icfg, var)
                    .into_iter()
                    .map(|d| {
                        let clean = !redefs
                            .iter()
                            .any(|&k| k != d.node && icfg.reaches(d.node).contains(k));
                        (d.line, clean)
                    })
                    .collect()
            })
            .unwrap_or_default();
        if escaping.is_empty() && init_defs.is_empty() {
            continue;
        }
        let Some(uses) = flow.uses.get(var) else {
            continue;
        };
        let redef_nodes: Vec<NodeId> = flow.rd.defs_of(var).iter().map(|d| d.node).collect();
        for &(uline, unode) in uses {
            if !upward_exposed(&flow.cfg, unode, &redef_nodes) {
                continue;
            }
            // Classification: Strong iff (a) no redefinition lies after the
            // def on any path to the exit, and (b) no redefinition lies
            // before the use on any path from the entry.
            let use_clean = entry_to_use_clean(&flow.cfg, unode, &redef_nodes);
            for d in &escaping {
                let def_clean = !redef_nodes
                    .iter()
                    .any(|&k| k != d.node && flow.cfg.reaches(d.node).contains(k));
                let class = if def_clean && use_clean {
                    Classification::Strong
                } else {
                    Classification::Firm
                };
                out.push(ClassifiedAssoc {
                    assoc: Association::new(var.clone(), d.line, model, uline, model),
                    class,
                });
            }
            for (dline, def_clean) in &init_defs {
                let class = if *def_clean && use_clean {
                    Classification::Strong
                } else {
                    Classification::Firm
                };
                out.push(ClassifiedAssoc {
                    assoc: Association::new(var.clone(), *dline, model, uline, model),
                    class,
                });
            }
        }
    }
}

/// Whether some path entry→`use_node` carries no definition of the variable
/// (the use can observe the previous activation's value).
fn upward_exposed(cfg: &Cfg, use_node: NodeId, redefs: &[NodeId]) -> bool {
    // Backward BFS from the use, not expanding through redefining nodes.
    let mut seen = vec![false; cfg.len()];
    let mut work: Vec<NodeId> = cfg.preds(use_node).to_vec();
    while let Some(n) = work.pop() {
        if seen[n] {
            continue;
        }
        seen[n] = true;
        if n == cfg.entry() {
            return true;
        }
        if redefs.contains(&n) {
            continue; // this path is fed by the redefinition instead
        }
        work.extend(cfg.preds(n).iter().copied());
    }
    false
}

/// Whether *every* path entry→use is free of redefinitions (used for the
/// Strong/Firm split of cross-activation member pairs).
fn entry_to_use_clean(cfg: &Cfg, use_node: NodeId, redefs: &[NodeId]) -> bool {
    !redefs
        .iter()
        .any(|&k| k != use_node && cfg.reaches(k).contains(use_node))
}

/// Pseudo-definitions for input ports driven from outside the analysed
/// models (testbench or open), e.g. `(ip_signal_in, 1, TS, 3, TS)`.
fn input_port_pseudo_defs(
    design: &Design,
    model: &str,
    flow: &ModelFlow,
    out: &mut Vec<ClassifiedAssoc>,
) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    for p in &iface.inputs {
        if upstream_origin(design.netlist(), model, &p.name) != Origin::External {
            continue;
        }
        let Some(uses) = flow.uses.get(&p.name) else {
            continue;
        };
        let start = design.start_line(model);
        for &(uline, _) in uses {
            out.push(ClassifiedAssoc {
                assoc: Association::new(p.name.clone(), start, model, uline, model),
                class: Classification::Strong,
            });
        }
    }
}

/// Where the samples feeding an input port originate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// A user-code model (handled by the forward cluster traversal).
    UserModel,
    /// A testbench source, an open input, or a component chain that starts
    /// at one.
    External,
}

fn upstream_origin(netlist: &Netlist, model: &str, port: &str) -> Origin {
    let mut visited: HashSet<(String, String)> = HashSet::new();
    let mut cur = (model.to_owned(), port.to_owned());
    loop {
        if !visited.insert(cur.clone()) {
            return Origin::External; // component cycle without a model
        }
        let Some(binding) = netlist.driver(&cur.0, &cur.1) else {
            return Origin::External; // open input
        };
        match netlist.class_of(&binding.from.model) {
            Some(ModuleClass::UserCode) => return Origin::UserModel,
            Some(ModuleClass::Testbench) | None => return Origin::External,
            Some(ModuleClass::Redefining(_)) | Some(ModuleClass::Transparent) => {
                // SISO library element: continue from its (sole) input.
                let Some(info) = netlist.module(&binding.from.model) else {
                    return Origin::External;
                };
                let Some(inp) = info.in_ports.first() else {
                    return Origin::External; // source-like component
                };
                cur = (info.name.clone(), inp.clone());
            }
        }
    }
}

/// One resolved branch of an output port's fanout: `site` is `None` while
/// the signal is still the original definition, or the binding site of the
/// last redefining element passed.
#[derive(Debug, Clone)]
struct Branch {
    site: Option<DefSite>,
    dest: PortRef,
}

fn collect_branches(netlist: &Netlist, model: &str, port: &str) -> Vec<Branch> {
    let mut out = Vec::new();
    let mut visited: HashSet<(String, String)> = HashSet::new();
    walk_branches(netlist, model, port, None, &mut visited, &mut out);
    out
}

fn walk_branches(
    netlist: &Netlist,
    model: &str,
    port: &str,
    site: Option<DefSite>,
    visited: &mut HashSet<(String, String)>,
    out: &mut Vec<Branch>,
) {
    if !visited.insert((model.to_owned(), port.to_owned())) {
        return;
    }
    for b in netlist.fanout(model, port) {
        match netlist.class_of(&b.to.model) {
            Some(ModuleClass::UserCode) => out.push(Branch {
                site: site.clone(),
                dest: b.to.clone(),
            }),
            Some(ModuleClass::Testbench) | None => {}
            Some(ModuleClass::Transparent) => {
                if let Some(info) = netlist.module(&b.to.model) {
                    for op in info.out_ports.clone() {
                        walk_branches(netlist, &b.to.model, &op, site.clone(), visited, out);
                    }
                }
            }
            Some(ModuleClass::Redefining(s)) => {
                let s = s.clone();
                if let Some(info) = netlist.module(&b.to.model) {
                    for op in info.out_ports.clone() {
                        walk_branches(netlist, &b.to.model, &op, Some(s.clone()), visited, out);
                    }
                }
            }
        }
    }
}

/// Cluster-level associations from every output port of `model`.
///
/// `deps` collects the destination models whose flows the emission
/// consulted — the reuse precondition an incremental rebuild checks
/// (alongside the netlist and the emitting model itself) before splicing
/// this unit from a previous build.
fn cluster_ports(
    design: &Design,
    model: &str,
    flows: &HashMap<&str, &ModelFlow>,
    out: &mut Vec<ClassifiedAssoc>,
    deps: &mut BTreeSet<String>,
) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    // No flow means this model's classify stage panicked; its cluster
    // pairs are sacrificed along with it.
    let Some(flow) = flows.get(model) else {
        return;
    };
    for p in &iface.outputs {
        let defs = flow.rd.defs_reaching_exit(&flow.cfg, &p.name);
        let branches = collect_branches(design.netlist(), model, &p.name);
        // Group branches by destination model (§IV-B.1 rule d). A BTreeMap
        // keeps the pre-dedup emission order independent of hasher state —
        // dedup keeps the *first* duplicate, so iteration order matters.
        let mut by_dest: BTreeMap<&str, Vec<&Branch>> = BTreeMap::new();
        for b in &branches {
            by_dest.entry(b.dest.model.as_str()).or_default().push(b);
        }
        for (dest_model, group) in by_dest {
            deps.insert(dest_model.to_owned());
            let has_original = group.iter().any(|b| b.site.is_none());
            let has_redefined = group.iter().any(|b| b.site.is_some());
            let class = match (has_original, has_redefined) {
                (true, false) => Classification::Strong,
                (true, true) => Classification::PFirm,
                (false, true) => Classification::PWeak,
                (false, false) => continue,
            };
            let Some(dest_flow) = flows.get(dest_model) else {
                continue;
            };
            for b in group {
                let Some(uses) = dest_flow.uses.get(&b.dest.port) else {
                    continue;
                };
                match &b.site {
                    None => {
                        for d in &defs {
                            for &(uline, _) in uses {
                                out.push(ClassifiedAssoc {
                                    assoc: Association::new(
                                        p.name.clone(),
                                        d.line,
                                        model,
                                        uline,
                                        dest_model,
                                    ),
                                    class,
                                });
                            }
                        }
                    }
                    Some(site) => {
                        for &(uline, _) in uses {
                            out.push(ClassifiedAssoc {
                                assoc: Association::new(
                                    p.name.clone(),
                                    site.line,
                                    site.model.clone(),
                                    uline,
                                    dest_model,
                                ),
                                class,
                            });
                        }
                    }
                }
            }
        }
    }
}

fn lint_model(design: &Design, model: &str, flow: &ModelFlow, lints: &mut Vec<StaticLint>) {
    let Some(iface) = design.interface(model) else {
        return;
    };
    // Escaping names: ports and members survive the activation.
    let escaping: Vec<String> = iface
        .outputs
        .iter()
        .map(|p| p.name.clone())
        .chain(iface.members.iter().map(|(m, _)| m.clone()))
        .collect();
    let lv = Liveness::compute(&flow.cfg, &escaping);
    for (node, var) in lv.dead_defs(&flow.cfg) {
        if design.kind_of(model, &var) == VarKind::Local {
            lints.push(StaticLint::DeadLocalDef {
                model: model.to_owned(),
                var,
                line: flow.cfg.node(node).line,
            });
        }
    }
    for p in &iface.inputs {
        if !flow.uses.contains_key(&p.name) {
            lints.push(StaticLint::UnusedInputPort {
                model: model.to_owned(),
                port: p.name.clone(),
            });
        }
    }
    for p in &iface.outputs {
        if flow.rd.defs_of(&p.name).is_empty() {
            lints.push(StaticLint::NeverWrittenOutput {
                model: model.to_owned(),
                port: p.name.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{ModuleInfo, NetBinding};

    fn user(name: &str, ins: &[&str], outs: &[&str]) -> ModuleInfo {
        ModuleInfo {
            name: name.into(),
            class: ModuleClass::UserCode,
            in_ports: ins.iter().map(|s| s.to_string()).collect(),
            out_ports: outs.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn lib(name: &str, class: ModuleClass) -> ModuleInfo {
        ModuleInfo {
            name: name.into(),
            class,
            in_ports: vec!["tdf_i".into()],
            out_ports: vec!["tdf_o".into()],
        }
    }

    fn bind(fm: &str, fp: &str, tm: &str, tp: &str) -> NetBinding {
        NetBinding {
            from: PortRef::new(fm, fp),
            to: PortRef::new(tm, tp),
        }
    }

    fn find<'a>(
        sa: &'a StaticAnalysis,
        var: &str,
        d: u32,
        dm: &str,
        u: u32,
        um: &str,
    ) -> Option<&'a ClassifiedAssoc> {
        sa.associations
            .iter()
            .find(|c| c.assoc == Association::new(var, d, dm, u, um))
    }

    fn empty_artifact() -> Arc<ModelArtifact> {
        Arc::new(ModelArtifact {
            flow: None,
            assocs: Vec::new(),
            assoc_keys: Vec::new(),
            lints: Vec::new(),
            sub: None,
        })
    }

    #[test]
    fn model_artifact_cache_evicts_least_recently_used() {
        let cache = ModelArtifactCache::new(2);
        cache.insert(1, &empty_artifact());
        cache.insert(2, &empty_artifact());
        assert_eq!(cache.len(), 2);

        // Touch 1 so 2 becomes the LRU entry, then overflow.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, &empty_artifact());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(2).is_none(), "LRU entry should be evicted");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());

        // Re-inserting a resident key refreshes recency, never grows.
        cache.insert(1, &empty_artifact());
        assert_eq!(cache.len(), 2);
        cache.insert(4, &empty_artifact());
        assert!(cache.lookup(3).is_none(), "refreshed key should survive");
        assert!(cache.lookup(1).is_some());
    }

    /// A two-model design: A computes and drives B directly and through a
    /// delay (the PFirm shape), while a gain-only path feeds C (PWeak).
    fn pfirm_design() -> Design {
        let src = "\
void A::processing()
{
    double t = ip_in * 2;
    double o = 0;
    if (t > 1) { o = t; }
    op_y = o;
}
void B::processing()
{
    double v = ip_direct + ip_delayed;
    op_out = v;
}
void C::processing()
{
    double w = ip_scaled;
    op_out = w;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("A", Interface::new().input("ip_in").output("op_y")),
            TdfModelDef::new(
                "B",
                Interface::new()
                    .input("ip_direct")
                    .input("ip_delayed")
                    .output("op_out"),
            ),
            TdfModelDef::new("C", Interface::new().input("ip_scaled").output("op_out")),
        ];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![
                bind("src", "op_out", "A", "ip_in"),
                bind("A", "op_y", "B", "ip_direct"),
                bind("A", "op_y", "z1", "tdf_i"),
                bind("z1", "tdf_o", "B", "ip_delayed"),
                bind("A", "op_y", "g1", "tdf_i"),
                bind("g1", "tdf_o", "C", "ip_scaled"),
            ],
            modules: vec![
                ModuleInfo {
                    name: "src".into(),
                    class: ModuleClass::Testbench,
                    in_ports: vec![],
                    out_ports: vec!["op_out".into()],
                },
                user("A", &["ip_in"], &["op_y"]),
                user("B", &["ip_direct", "ip_delayed"], &["op_out"]),
                user("C", &["ip_scaled"], &["op_out"]),
                lib("z1", ModuleClass::Redefining(DefSite::new("top", 74))),
                lib("g1", ModuleClass::Redefining(DefSite::new("top", 77))),
            ],
        };
        Design::new(tu, models, netlist).unwrap()
    }

    #[test]
    fn local_strong_and_firm_split() {
        let sa = analyse(&pfirm_design());
        // (t, 3, A, 5, A): single path, Strong.
        assert_eq!(
            find(&sa, "t", 3, "A", 5, "A").unwrap().class,
            Classification::Strong
        );
        // (o, 4, A, 6, A): redefined on the then-branch, Firm.
        assert_eq!(
            find(&sa, "o", 4, "A", 6, "A").unwrap().class,
            Classification::Firm
        );
        // (o, 5, A, 6, A): the redefinition itself is Strong.
        assert_eq!(
            find(&sa, "o", 5, "A", 6, "A").unwrap().class,
            Classification::Strong
        );
    }

    #[test]
    fn mixed_branches_to_same_model_are_pfirm() {
        let sa = analyse(&pfirm_design());
        // Original branch into B (use of ip_direct at line 10).
        let orig = find(&sa, "op_y", 6, "A", 10, "B").unwrap();
        assert_eq!(orig.class, Classification::PFirm);
        // Redefined branch through the delay bound at top:74.
        let redef = find(&sa, "op_y", 74, "top", 10, "B").unwrap();
        assert_eq!(redef.class, Classification::PFirm);
    }

    #[test]
    fn purely_redefined_branch_is_pweak() {
        let sa = analyse(&pfirm_design());
        let pw = find(&sa, "op_y", 77, "top", 15, "C").unwrap();
        assert_eq!(pw.class, Classification::PWeak);
        // And no original-coordinate pair into C exists.
        assert!(find(&sa, "op_y", 6, "A", 15, "C").is_none());
    }

    #[test]
    fn testbench_driven_input_gets_pseudo_def_at_start_line() {
        let sa = analyse(&pfirm_design());
        // A::processing() is declared on line 1; ip_in is used on line 3.
        let p = find(&sa, "ip_in", 1, "A", 3, "A").unwrap();
        assert_eq!(p.class, Classification::Strong);
    }

    #[test]
    fn model_driven_input_has_no_pseudo_def() {
        let sa = analyse(&pfirm_design());
        // ip_direct is driven by A, so no pseudo-def pair at B's start.
        assert!(find(&sa, "ip_direct", 8, "B", 10, "B").is_none());
    }

    #[test]
    fn direct_connection_is_strong() {
        // A drives B directly with no component in between.
        let src = "void A::processing() { op_y = ip_in; }\n\
                   void B::processing() { op_z = ip_x; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("A", Interface::new().input("ip_in").output("op_y")),
            TdfModelDef::new("B", Interface::new().input("ip_x").output("op_z")),
        ];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![bind("A", "op_y", "B", "ip_x")],
            modules: vec![
                user("A", &["ip_in"], &["op_y"]),
                user("B", &["ip_x"], &["op_z"]),
            ],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        let s = find(&sa, "op_y", 1, "A", 2, "B").unwrap();
        assert_eq!(s.class, Classification::Strong);
    }

    /// The paper's ctrl-style member: defined at the end of one activation,
    /// used at the start of the next — still Strong.
    #[test]
    fn member_cross_activation_pairs_are_found_strong() {
        let src = "\
void M::processing()
{
    if (ip_go) {
        if (m_state == 1) { op_y = 1; m_state = 0; }
        else { m_state = 1; }
    }
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_go")
                .output("op_y")
                .member("m_state", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_go"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        // def at 5 (else branch), use at 4 (next activation's condition):
        let a = find(&sa, "m_state", 5, "M", 4, "M").unwrap();
        assert_eq!(a.class, Classification::Strong);
        // def at 4 (then branch), use at 4 as well (next activation):
        let b = find(&sa, "m_state", 4, "M", 4, "M").unwrap();
        assert_eq!(b.class, Classification::Strong);
    }

    #[test]
    fn member_cross_activation_firm_when_redefined_before_use() {
        // m is unconditionally redefined at the top of the activation, so a
        // def surviving from the previous activation only feeds the line-3
        // use; the cross pair def(5) -> use(4) must not exist... but the
        // use at line 3 (before redefinition) pairs with def 5 and is
        // upward-exposed. The redefinition at line 3 kills everything else.
        let src = "\
void M::processing()
{
    double t = m_s;
    m_s = ip_in;
    op_y = m_s + t;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_in")
                .output("op_y")
                .member("m_s", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_in"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        // Cross-activation: def(4) -> use(3) exists and is Strong (no other
        // defs of m_s anywhere on def->exit or entry->use segments).
        let a = find(&sa, "m_s", 4, "M", 3, "M").unwrap();
        assert_eq!(a.class, Classification::Strong);
        // Same-activation def(4) -> use(5) Strong as well.
        let b = find(&sa, "m_s", 4, "M", 5, "M").unwrap();
        assert_eq!(b.class, Classification::Strong);
        // The use at 5 is NOT upward-exposed (killed at 4): no pair with a
        // def from a previous activation — there is only one def anyway.
        assert_eq!(
            sa.associations
                .iter()
                .filter(|c| c.assoc.var == "m_s")
                .count(),
            2
        );
    }

    #[test]
    fn lints_flag_dead_defs_and_unused_ports() {
        let src = "\
void M::processing()
{
    double dead = 1;
    double used = 2;
    op_y = used;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_never")
                .output("op_y")
                .output("op_never"),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_never"], &["op_y", "op_never"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        assert!(sa.lints.iter().any(|l| matches!(
            l,
            StaticLint::DeadLocalDef { var, .. } if var == "dead"
        )));
        assert!(sa.lints.iter().any(|l| matches!(
            l,
            StaticLint::UnusedInputPort { port, .. } if port == "ip_never"
        )));
        assert!(sa.lints.iter().any(|l| matches!(
            l,
            StaticLint::NeverWrittenOutput { port, .. } if port == "op_never"
        )));
    }

    #[test]
    fn open_input_gets_pseudo_def() {
        let src = "void M::processing() { op_y = ip_open; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new().input("ip_open").output("op_y"),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_open"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        assert!(find(&sa, "ip_open", 1, "M", 1, "M").is_some());
    }

    #[test]
    fn killed_port_def_does_not_escape() {
        let src = "\
void M::processing()
{
    op_y = 1;
    op_y = 2;
}
void N::processing() { op_z = ip_x; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("M", Interface::new().output("op_y")),
            TdfModelDef::new("N", Interface::new().input("ip_x").output("op_z")),
        ];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![bind("M", "op_y", "N", "ip_x")],
            modules: vec![user("M", &[], &["op_y"]), user("N", &["ip_x"], &["op_z"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        assert!(find(&sa, "op_y", 3, "M", 6, "N").is_none(), "killed def");
        assert!(find(&sa, "op_y", 4, "M", 6, "N").is_some());
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let d = pfirm_design();
        let baseline = analyse_with_threads(&d, 1);
        for threads in [2, 3, 8] {
            assert_eq!(analyse_with_threads(&d, threads), baseline);
        }
        assert_eq!(analyse(&d), baseline, "default path agrees too");
    }

    #[test]
    fn subsumption_reduces_nested_local_windows() {
        // (t,3 -> 5) subsumes (t,3 -> 4) and (u,4 -> 5): both leave the
        // frontier and appear in its implied set.
        let src = "\
void M::processing()
{
    double t = ip_in;
    double u = t;
    op_y = t + u;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new().input("ip_in").output("op_y"),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_in"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        let idx = |var: &str, dl: u32, ul: u32| {
            sa.associations
                .iter()
                .position(|c| c.assoc == Association::new(var, dl, "M", ul, "M"))
                .unwrap()
        };
        let t34 = idx("t", 3, 4);
        let t35 = idx("t", 3, 5);
        let u45 = idx("u", 4, 5);
        assert!(sa.subsumption.dropped.contains(t34));
        assert!(sa.subsumption.dropped.contains(u45));
        assert!(sa.subsumption.is_tracked(t35));
        assert_eq!(sa.subsumption.dropped_count(), 2);
        let (fi, implied) = sa
            .subsumption
            .implied_by
            .iter()
            .find(|(i, _)| *i as usize == t35)
            .expect("t35 implies the dropped pairs");
        assert_eq!(*fi as usize, t35);
        assert!(implied.contains(t34) && implied.contains(u45));
        // Port-level associations are never eligible, hence never dropped.
        for (i, c) in sa.associations.iter().enumerate() {
            if c.assoc.var.starts_with("ip_") || c.assoc.var.starts_with("op_") {
                assert!(sa.subsumption.is_tracked(i), "{} stays tracked", c.assoc);
            }
        }
    }

    #[test]
    fn every_dropped_association_is_implied_by_a_tracked_one() {
        let sa = analyse(&pfirm_design());
        for i in 0..sa.associations.len() {
            if sa.subsumption.is_tracked(i) {
                continue;
            }
            assert!(
                sa.subsumption
                    .implied_by
                    .iter()
                    .any(|(f, implied)| sa.subsumption.is_tracked(*f as usize)
                        && implied.contains(i)),
                "dropped {} has no tracked implier",
                sa.associations[i].assoc
            );
        }
    }

    #[test]
    fn member_cross_activation_tuples_stay_tracked() {
        // m_state tuples are emitted by both the intra-activation and the
        // cross-activation stage, so the one-to-one guard must keep every
        // one of them on the frontier.
        let src = "\
void M::processing()
{
    if (ip_go) {
        if (m_state == 1) { op_y = 1; m_state = 0; }
        else { m_state = 1; }
    }
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_go")
                .output("op_y")
                .member("m_state", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![user("M", &["ip_go"], &["op_y"])],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d);
        for (i, c) in sa.associations.iter().enumerate() {
            if c.assoc.var == "m_state" {
                assert!(sa.subsumption.is_tracked(i), "{} must stay", c.assoc);
            }
        }
    }

    #[test]
    fn associations_are_deduplicated_and_sorted_by_class() {
        let sa = analyse(&pfirm_design());
        let mut seen = HashSet::new();
        for c in &sa.associations {
            assert!(seen.insert(c.assoc.clone()), "duplicate {c}");
        }
        let classes: Vec<Classification> = sa.associations.iter().map(|c| c.class).collect();
        let mut sorted = classes.clone();
        sorted.sort();
        assert_eq!(classes, sorted, "grouped by classification");
    }
}

#[cfg(test)]
mod cycle_tests {
    use super::*;
    use crate::design::Design;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{ModuleInfo, NetBinding, Netlist};

    /// A pathological netlist where two gains feed each other in a loop and
    /// one of them also feeds a model: traversal must terminate and the
    /// input's upstream origin must resolve as external.
    #[test]
    fn component_only_cycles_terminate() {
        let src = "void M::processing() { op_y = ip_x; }";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new().input("ip_x").output("op_y"),
        )];
        let lib = |name: &str, line: u32| ModuleInfo {
            name: name.into(),
            class: ModuleClass::Redefining(DefSite::new("top", line)),
            in_ports: vec!["tdf_i".into()],
            out_ports: vec!["tdf_o".into()],
        };
        let bind = |fm: &str, fp: &str, tm: &str, tp: &str| NetBinding {
            from: PortRef::new(fm, fp),
            to: PortRef::new(tm, tp),
        };
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![
                // g1 <-> g2 loop, with g2 also feeding M and M feeding g1.
                bind("g1", "tdf_o", "g2", "tdf_i"),
                bind("g2", "tdf_o", "g1", "tdf_i"),
                bind("g2", "tdf_o", "M", "ip_x"),
                bind("M", "op_y", "g1", "tdf_i"),
            ],
            modules: vec![
                ModuleInfo {
                    name: "M".into(),
                    class: ModuleClass::UserCode,
                    in_ports: vec!["ip_x".into()],
                    out_ports: vec!["op_y".into()],
                },
                lib("g1", 10),
                lib("g2", 11),
            ],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let sa = analyse(&d); // must terminate
                              // M's own output loops back through g1/g2 into M: a purely
                              // redefined branch with g2's site.
        assert!(sa.associations.iter().any(|c| c.assoc.def_line == 11
            && c.assoc.def_model == "top"
            && c.class == Classification::PWeak));
    }

    #[test]
    fn upstream_origin_of_component_cycle_is_external() {
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![
                NetBinding {
                    from: PortRef::new("g1", "tdf_o"),
                    to: PortRef::new("M", "ip_x"),
                },
                NetBinding {
                    from: PortRef::new("g1", "tdf_o"),
                    to: PortRef::new("g1", "tdf_i"),
                },
            ],
            modules: vec![
                ModuleInfo {
                    name: "M".into(),
                    class: ModuleClass::UserCode,
                    in_ports: vec!["ip_x".into()],
                    out_ports: vec![],
                },
                ModuleInfo {
                    name: "g1".into(),
                    class: ModuleClass::Redefining(DefSite::new("top", 9)),
                    in_ports: vec!["tdf_i".into()],
                    out_ports: vec!["tdf_o".into()],
                },
            ],
        };
        assert_eq!(upstream_origin(&netlist, "M", "ip_x"), Origin::External);
    }
}

//! The design under verification: parsed sources + model interfaces +
//! cluster binding information, bundled for analysis.

use std::sync::Arc;

use minic::TranslationUnit;
use tdf_interp::{Interface, TdfModelDef, VarKind};
use tdf_sim::{Interner, ModuleClass, Netlist};

use crate::error::{DftError, Result};

/// Everything the static analysis needs about a DUV:
///
/// * the parsed minic sources (`tu`) — one `processing()` per user model;
/// * the declared interfaces of those models;
/// * the cluster netlist (bindings + module classes) extracted at
///   elaboration.
#[derive(Debug, Clone)]
pub struct Design {
    tu: TranslationUnit,
    models: Vec<TdfModelDef>,
    netlist: Netlist,
    /// Design-wide name interner, seeded at construction with every name
    /// the design declares (cluster, modules, ports, members). Shared —
    /// clones of the design keep interning into the same table, so
    /// [`Sym`](tdf_sim::Sym) ids agree across every cluster/session built
    /// from this design.
    interner: Arc<Interner>,
}

impl Design {
    /// Bundles and validates a design.
    ///
    /// # Errors
    ///
    /// * [`DftError::MissingSource`] — a netlist module classed
    ///   [`ModuleClass::UserCode`] has no `processing()` in `tu` or no
    ///   interface in `models`.
    pub fn new(tu: TranslationUnit, models: Vec<TdfModelDef>, netlist: Netlist) -> Result<Design> {
        for m in &netlist.modules {
            if m.class == ModuleClass::UserCode {
                if tu.processing(&m.name).is_none() {
                    return Err(DftError::MissingSource {
                        model: m.name.clone(),
                    });
                }
                if !models.iter().any(|d| d.model == m.name) {
                    return Err(DftError::MissingSource {
                        model: m.name.clone(),
                    });
                }
            }
        }
        let interner = Arc::new(Interner::new());
        interner.intern(&netlist.cluster);
        for m in &netlist.modules {
            interner.intern(&m.name);
            for p in m.in_ports.iter().chain(&m.out_ports) {
                interner.intern(p);
            }
        }
        for def in &models {
            interner.intern(&def.model);
            for p in def.interface.inputs.iter().chain(&def.interface.outputs) {
                interner.intern(&p.name);
            }
            for (member, _) in &def.interface.members {
                interner.intern(member);
            }
        }
        Ok(Design {
            tu,
            models,
            netlist,
            interner,
        })
    }

    /// The design-wide name interner (see the field docs): every cluster
    /// simulated under this design should carry it
    /// ([`Cluster::set_interner`](tdf_sim::Cluster::set_interner)) so
    /// compact event ids agree with the analysis tables.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// The parsed sources.
    pub fn tu(&self) -> &TranslationUnit {
        &self.tu
    }

    /// The model definitions.
    pub fn models(&self) -> &[TdfModelDef] {
        &self.models
    }

    /// The cluster netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The interface of `model`, if declared.
    pub fn interface(&self, model: &str) -> Option<&Interface> {
        self.models
            .iter()
            .find(|d| d.model == model)
            .map(|d| &d.interface)
    }

    /// Names of all user-code models present in both netlist and sources.
    pub fn user_models(&self) -> Vec<&str> {
        self.netlist
            .modules
            .iter()
            .filter(|m| m.class == ModuleClass::UserCode)
            .map(|m| m.name.as_str())
            .collect()
    }

    /// How `name` resolves inside `model` (ports/members from the
    /// interface; anything else is treated as a local).
    pub fn kind_of(&self, model: &str, name: &str) -> VarKind {
        self.interface(model)
            .and_then(|i| i.kind_of(name))
            .unwrap_or(VarKind::Local)
    }

    /// The source line on which `model::processing()` is declared — the
    /// pseudo-definition site assigned to externally-driven input ports
    /// ("the input ports are assigned the start location of their TDF
    /// model", §V).
    pub fn start_line(&self, model: &str) -> u32 {
        self.tu
            .processing(model)
            .map(|f| f.span.line())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_sim::{ModuleInfo, NetBinding, PortRef};

    fn netlist_with(modules: Vec<ModuleInfo>) -> Netlist {
        Netlist {
            cluster: "top".into(),
            bindings: vec![NetBinding {
                from: PortRef::new("A", "op_y"),
                to: PortRef::new("B", "ip_x"),
            }],
            modules,
        }
    }

    fn user(name: &str, ins: &[&str], outs: &[&str]) -> ModuleInfo {
        ModuleInfo {
            name: name.into(),
            class: ModuleClass::UserCode,
            in_ports: ins.iter().map(|s| s.to_string()).collect(),
            out_ports: outs.iter().map(|s| s.to_string()).collect(),
        }
    }

    const SRC: &str = "void A::processing() { op_y = 1; }\n\
                       void B::processing() { double v = ip_x; }";

    fn defs() -> Vec<TdfModelDef> {
        vec![
            TdfModelDef::new("A", Interface::new().output("op_y")),
            TdfModelDef::new("B", Interface::new().input("ip_x")),
        ]
    }

    #[test]
    fn builds_and_queries() {
        let tu = minic::parse(SRC).unwrap();
        let nl = netlist_with(vec![user("A", &[], &["op_y"]), user("B", &["ip_x"], &[])]);
        let d = Design::new(tu, defs(), nl).unwrap();
        assert_eq!(d.user_models(), vec!["A", "B"]);
        assert_eq!(d.kind_of("A", "op_y"), VarKind::OutPort(0));
        assert_eq!(d.kind_of("B", "ip_x"), VarKind::InPort(0));
        assert_eq!(d.kind_of("B", "v"), VarKind::Local);
        assert_eq!(d.start_line("A"), 1);
        assert_eq!(d.start_line("B"), 2);
        assert!(d.interface("A").is_some());
        assert!(d.interface("Z").is_none());
    }

    #[test]
    fn missing_source_rejected() {
        let tu = minic::parse("void A::processing() { op_y = 1; }").unwrap();
        let nl = netlist_with(vec![user("A", &[], &["op_y"]), user("B", &["ip_x"], &[])]);
        let err = Design::new(tu, defs(), nl).unwrap_err();
        assert!(matches!(err, DftError::MissingSource { model } if model == "B"));
    }

    #[test]
    fn missing_interface_rejected() {
        let tu = minic::parse(SRC).unwrap();
        let nl = netlist_with(vec![user("A", &[], &["op_y"]), user("B", &["ip_x"], &[])]);
        let only_a = vec![TdfModelDef::new("A", Interface::new().output("op_y"))];
        let err = Design::new(tu, only_a, nl).unwrap_err();
        assert!(matches!(err, DftError::MissingSource { model } if model == "B"));
    }

    #[test]
    fn library_modules_need_no_source() {
        let tu = minic::parse("void A::processing() { op_y = 1; }").unwrap();
        let mut lib = user("G", &["tdf_i"], &["tdf_o"]);
        lib.class = ModuleClass::Redefining(tdf_sim::DefSite::new("top", 7));
        let nl = netlist_with(vec![user("A", &[], &["op_y"]), lib]);
        let d = Design::new(
            tu,
            vec![TdfModelDef::new("A", Interface::new().output("op_y"))],
            nl,
        );
        assert!(d.is_ok());
    }
}

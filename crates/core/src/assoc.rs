//! Def-use associations `(v, d, dm, u, um)` and their TDF-specific
//! classification (Strong / Firm / PFirm / PWeak).

use std::fmt;

/// The four disjoint TDF-specific classifications of the paper, §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Classification {
    /// (a) output port with a du-path to the using model, or (b) local
    /// variable where *every* static path def→use is a du-path.
    Strong,
    /// Local variable with at least one non-du static path.
    Firm,
    /// Output port with both an original and a redefined branch reaching
    /// the same using model (at least one static path is not a du-path).
    PFirm,
    /// Output port whose every branch to the using model is redefined
    /// (no du-path at all).
    PWeak,
}

impl Classification {
    /// All classifications, table order.
    pub const ALL: [Classification; 4] = [
        Classification::Strong,
        Classification::Firm,
        Classification::PFirm,
        Classification::PWeak,
    ];
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Classification::Strong => "Strong",
            Classification::Firm => "Firm",
            Classification::PFirm => "PFirm",
            Classification::PWeak => "PWeak",
        };
        write!(f, "{s}")
    }
}

/// A def-use association: the ordered tuple `(v, d, dm, u, um)` of §IV-B.1 —
/// variable `v` defined at line `d` of model `dm` and used at line `u` of
/// model `um` with a redefinition-free static path in between.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Association {
    /// The variable (local, member or port) name `v`.
    pub var: String,
    /// Definition line `d`.
    pub def_line: u32,
    /// Defining model `dm`.
    pub def_model: String,
    /// Use line `u`.
    pub use_line: u32,
    /// Using model `um`.
    pub use_model: String,
}

impl Association {
    /// Creates an association tuple.
    pub fn new(
        var: impl Into<String>,
        def_line: u32,
        def_model: impl Into<String>,
        use_line: u32,
        use_model: impl Into<String>,
    ) -> Self {
        Association {
            var: var.into(),
            def_line,
            def_model: def_model.into(),
            use_line,
            use_model: use_model.into(),
        }
    }

    /// Whether definition and use live in the same model.
    pub fn is_intra_model(&self) -> bool {
        self.def_model == self.use_model
    }

    /// The definition coordinate `(v, d, dm)` — the unit of the `all-defs`
    /// criterion.
    pub fn def_coord(&self) -> (&str, u32, &str) {
        (&self.var, self.def_line, &self.def_model)
    }
}

impl fmt::Display for Association {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {}, {})",
            self.var, self.def_line, self.def_model, self.use_line, self.use_model
        )
    }
}

/// An association together with its static classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedAssoc {
    /// The tuple.
    pub assoc: Association,
    /// Its disjoint class.
    pub class: Classification,
}

impl fmt::Display for ClassifiedAssoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.assoc, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let a = Association::new("tmpr", 4, "TS", 9, "TS");
        assert_eq!(a.to_string(), "(tmpr, 4, TS, 9, TS)");
        let c = ClassifiedAssoc {
            assoc: a,
            class: Classification::Strong,
        };
        assert_eq!(c.to_string(), "(tmpr, 4, TS, 9, TS) [Strong]");
    }

    #[test]
    fn intra_vs_cross_model() {
        assert!(Association::new("x", 1, "M", 2, "M").is_intra_model());
        assert!(!Association::new("op", 14, "TS", 35, "AM").is_intra_model());
    }

    #[test]
    fn def_coord_groups_by_definition() {
        let a = Association::new("op_hold", 55, "ctrl", 7, "TS");
        let b = Association::new("op_hold", 55, "ctrl", 8, "TS");
        assert_eq!(a.def_coord(), b.def_coord());
        let c = Association::new("op_hold", 57, "ctrl", 7, "TS");
        assert_ne!(a.def_coord(), c.def_coord());
    }

    #[test]
    fn classification_order_and_display() {
        assert_eq!(Classification::ALL.len(), 4);
        assert!(Classification::Strong < Classification::PWeak);
        assert_eq!(Classification::PFirm.to_string(), "PFirm");
    }

    #[test]
    fn associations_are_hashable_keys() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Association::new("x", 1, "M", 2, "M"));
        assert!(s.contains(&Association::new("x", 1, "M", 2, "M")));
        assert!(!s.contains(&Association::new("x", 1, "M", 3, "M")));
    }
}

//! Machine-readable exports of analysis and coverage results (CSV), for
//! spreadsheet triage and CI trend tracking.

use std::fmt::Write as _;

use crate::coverage::{Coverage, TestcaseResult, UncoveredReason};
use crate::statics::StaticAnalysis;

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Exports the static association set as CSV:
/// `class,var,def_line,def_model,use_line,use_model`.
pub fn associations_to_csv(sa: &StaticAnalysis) -> String {
    let mut out = String::from("class,var,def_line,def_model,use_line,use_model\n");
    for c in &sa.associations {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            c.class,
            csv_escape(&c.assoc.var),
            c.assoc.def_line,
            csv_escape(&c.assoc.def_model),
            c.assoc.use_line,
            csv_escape(&c.assoc.use_model),
        );
    }
    out
}

/// Exports the subsumption reduction as CSV:
/// `class,association,role,implies` — `role` is `tracked` (frontier) or
/// `dropped` (reconstructed from an implying frontier row), `implies` is
/// the number of dropped associations a tracked row implies.
pub fn subsumption_to_csv(sa: &StaticAnalysis) -> String {
    let mut out = String::from("class,association,role,implies\n");
    for (i, c) in sa.associations.iter().enumerate() {
        let role = if sa.subsumption.is_tracked(i) {
            "tracked"
        } else {
            "dropped"
        };
        let implies = sa
            .subsumption
            .implied_by
            .iter()
            .find(|(f, _)| *f as usize == i)
            .map_or(0, |(_, s)| s.len());
        let _ = writeln!(
            out,
            "{},{},{},{}",
            c.class,
            csv_escape(&c.assoc.to_string()),
            role,
            implies
        );
    }
    out
}

/// Exports the coverage matrix as CSV: one row per association with a
/// column per testcase (`1` exercised / `0` not) plus a `covered` column.
pub fn coverage_to_csv(cov: &Coverage) -> String {
    let mut out = String::from("class,association,covered");
    for name in cov.testcase_names() {
        let _ = write!(out, ",{}", csv_escape(name));
    }
    out.push('\n');
    for (i, c) in cov.associations().iter().enumerate() {
        let _ = write!(
            out,
            "{},{},{}",
            c.class,
            csv_escape(&c.assoc.to_string()),
            u8::from(cov.is_covered(i))
        );
        for t in 0..cov.testcase_names().len() {
            let _ = write!(out, ",{}", u8::from(cov.is_covered_by(i, t)));
        }
        out.push('\n');
    }
    out
}

/// Exports the uncovered-pair triage as CSV:
/// `class,association,reason` (see [`Coverage::diagnose_uncovered`]).
pub fn diagnosis_to_csv(cov: &Coverage, runs: &[TestcaseResult]) -> String {
    let mut out = String::from("class,association,reason\n");
    for (c, reason) in cov.diagnose_uncovered(runs) {
        let reason_str = match reason {
            UncoveredReason::DefinitionNeverExecuted => "definition never executed",
            UncoveredReason::FlowNotObserved => "flow not observed",
        };
        let _ = writeln!(
            out,
            "{},{},{}",
            c.class,
            csv_escape(&c.assoc.to_string()),
            reason_str
        );
    }
    out
}

/// Exports per-testcase assertion verdicts as CSV:
/// `testcase,assertion,verdict,first_violation_fs` — the violation column
/// is empty for non-failing verdicts. Runs without verdicts contribute no
/// rows; with no verdicts anywhere the output is just the header.
pub fn verdicts_to_csv(runs: &[TestcaseResult]) -> String {
    use dft_monitor::Verdict;
    let mut out = String::from("testcase,assertion,verdict,first_violation_fs\n");
    for run in runs {
        for v in &run.verdicts {
            let (verdict, first) = match v.verdict {
                Verdict::Holds => ("holds", String::new()),
                Verdict::Fails {
                    first_violation_time,
                } => ("fails", first_violation_time.as_fs().to_string()),
                Verdict::Vacuous => ("vacuous", String::new()),
                Verdict::Inconclusive => ("inconclusive", String::new()),
            };
            let _ = writeln!(
                out,
                "{},{},{},{}",
                csv_escape(&run.name),
                csv_escape(&v.name),
                verdict,
                first
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::{Association, Classification, ClassifiedAssoc};

    fn statics() -> StaticAnalysis {
        StaticAnalysis {
            associations: vec![
                ClassifiedAssoc {
                    assoc: Association::new("tmpr", 4, "TS", 9, "TS"),
                    class: Classification::Strong,
                },
                ClassifiedAssoc {
                    assoc: Association::new("o", 5, "A", 6, "A"),
                    class: Classification::Firm,
                },
            ],
            lints: Vec::new(),
            subsumption: Default::default(),
        }
    }

    fn run_with(exercised: &[Association], defs: &[(&str, &str, u32)]) -> TestcaseResult {
        TestcaseResult {
            name: "TC1".into(),
            exercised: exercised.iter().cloned().collect(),
            defs_executed: defs
                .iter()
                .map(|(m, v, l)| (m.to_string(), v.to_string(), *l))
                .collect(),
            warnings: Vec::new(),
            ..TestcaseResult::default()
        }
    }

    #[test]
    fn associations_csv_has_header_and_rows() {
        let csv = associations_to_csv(&statics());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "class,var,def_line,def_model,use_line,use_model");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("Strong,tmpr,4,TS,9,TS"));
    }

    #[test]
    fn coverage_csv_marks_testcase_columns() {
        let runs = vec![run_with(&[Association::new("tmpr", 4, "TS", 9, "TS")], &[])];
        let cov = Coverage::evaluate(&statics(), &runs);
        let csv = coverage_to_csv(&cov);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "class,association,covered,TC1");
        assert!(lines[1].contains("\"(tmpr, 4, TS, 9, TS)\",1,1"));
        assert!(lines[2].ends_with(",0,0"));
    }

    #[test]
    fn verdicts_csv_rows_per_assertion() {
        use dft_monitor::{AssertionVerdict, Verdict};
        use tdf_sim::SimTime;
        let mut run = run_with(&[], &[]);
        run.verdicts = vec![
            AssertionVerdict {
                name: "overshoot".into(),
                verdict: Verdict::Fails {
                    first_violation_time: SimTime::from_us(7),
                },
            },
            AssertionVerdict {
                name: "settle, fast".into(),
                verdict: Verdict::Holds,
            },
        ];
        let csv = verdicts_to_csv(&[run, run_with(&[], &[])]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "testcase,assertion,verdict,first_violation_fs");
        assert_eq!(lines[1], "TC1,overshoot,fails,7000000000");
        assert_eq!(lines[2], "TC1,\"settle, fast\",holds,");
        assert_eq!(lines.len(), 3, "verdict-free runs contribute no rows");
    }

    /// Minimal RFC-4180 field parser used to prove escaping round-trips.
    fn csv_unescape(field: &str) -> String {
        if let Some(inner) = field
            .strip_prefix('"')
            .and_then(|rest| rest.strip_suffix('"'))
        {
            inner.replace("\"\"", "\"")
        } else {
            field.to_owned()
        }
    }

    #[test]
    fn csv_escape_round_trips_control_characters() {
        for raw in [
            "plain",
            "comma,field",
            "quote\"field",
            "newline\nfield",
            "carriage\rreturn",
            "crlf\r\nfield",
            "\r",
        ] {
            let escaped = csv_escape(raw);
            if raw.contains('\r') || raw.contains('\n') || raw.contains(',') || raw.contains('"') {
                assert!(
                    escaped.starts_with('"') && escaped.ends_with('"'),
                    "{raw:?} must be quoted, got {escaped:?}"
                );
            }
            assert_eq!(csv_unescape(&escaped), raw, "round-trip of {raw:?}");
        }
    }

    #[test]
    fn subsumption_csv_labels_roles_and_counts() {
        use crate::statics::SubsumptionInfo;
        use dataflow::BitSet;
        let mut st = statics();
        let mut dropped = BitSet::new(2);
        dropped.insert(1);
        let mut implied = BitSet::new(2);
        implied.insert(1);
        st.subsumption = SubsumptionInfo {
            dropped,
            implied_by: vec![(0, implied)],
        };
        let csv = subsumption_to_csv(&st);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "class,association,role,implies");
        assert!(lines[1].ends_with(",tracked,1"));
        assert!(lines[2].ends_with(",dropped,0"));
        // Default (empty) reduction: everything tracked, nothing implied.
        let csv0 = subsumption_to_csv(&statics());
        assert!(csv0.lines().skip(1).all(|l| l.ends_with(",tracked,0")));
    }

    #[test]
    fn diagnosis_distinguishes_reasons() {
        // The Firm pair's def ran but the flow never reached the use; the
        // Strong pair's def never ran at all.
        let runs = vec![run_with(&[], &[("A", "o", 5)])];
        let cov = Coverage::evaluate(&statics(), &runs);
        let csv = diagnosis_to_csv(&cov, &runs);
        assert!(csv.contains("(tmpr, 4, TS, 9, TS)\",definition never executed"));
        assert!(csv.contains("(o, 5, A, 6, A)\",flow not observed"));
    }
}

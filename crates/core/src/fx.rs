//! A minimal Fx-style hasher for integer-keyed maps on the matching hot
//! path. `std`'s default SipHash is DoS-resistant but costs ~10× more per
//! small integer key; the automaton's keys are interned ids we control,
//! so the cheap multiply-rotate mix is safe and measurably faster. No
//! external dependency (the build environment is offline).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The `FxHasher` multiply constant (from Firefox's hash — the same one
/// rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small fixed-size keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into std collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` hashed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_tuple_keys() {
        let mut m: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7), i % 13), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7), i % 13)), Some(&i));
        }
    }

    #[test]
    fn hashes_differ_for_nearby_keys() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let hash = |k: (u32, u32)| build.hash_one(k);
        assert_ne!(hash((0, 1)), hash((1, 0)));
        assert_ne!(hash((2, 3)), hash((3, 2)));
    }
}

//! # dft-core — data flow testing for SystemC-AMS TDF models
//!
//! Reproduction of the core contribution of *"Data Flow Testing for
//! SystemC-AMS Timed Data Flow Models"* (DATE 2019): TDF-specific def-use
//! coverage, computed automatically from a combination of static and
//! dynamic analysis.
//!
//! The pipeline mirrors Fig. 3 of the paper:
//!
//! 1. **Static analysis** ([`analyse`]) — over the minic sources and the
//!    cluster binding information, computing every def-use association
//!    `(v, d, dm, u, um)` and classifying it **Strong**, **Firm**,
//!    **PFirm** or **PWeak** ([`Classification`]).
//! 2. **Dynamic analysis** ([`analyse_events`]) — per testcase, matching
//!    the instrumentation event log (from `tdf-interp`) into *exercised*
//!    associations, and flagging uses without definitions.
//! 3. **Coverage evaluation** ([`Coverage`]) — combining both into
//!    per-class ratios and the adequacy criteria `all-Strong`, `all-Firm`,
//!    `all-PFirm`, `all-PWeak`, `all-defs` and `all-dataflow`
//!    ([`Criterion`]).
//!
//! [`DftSession`] drives all three stages; [`render_table1`] /
//! [`render_table2`] regenerate the paper's tables.

#![warn(missing_docs)]

mod assoc;
mod classical;
mod coverage;
mod design;
mod dynamic;
mod error;
mod explain;
mod export;
mod fx;
mod matcher;
mod par;
mod report;
mod session;
mod statics;
pub mod synth;

pub use assoc::{Association, Classification, ClassifiedAssoc};
pub use classical::classical_pairs;
pub use coverage::{Coverage, Criterion, RunOutcome, TestcaseResult, UncoveredReason};
pub use dataflow::BitSet;
pub use design::Design;
pub use dft_monitor::{
    AssertionExpr, AssertionSpec, AssertionVerdict, CountBound, MonitorBank, MonitorSink,
    SignalPred, ThresholdKind, Verdict,
};
pub use dynamic::{
    analyse_events, analyse_events_batch, analyse_events_batch_with_mode, analyse_events_with_mode,
    DynamicResult, DynamicWarning, MatchMode,
};
pub use error::{DftError, Result};
pub use explain::explain_association;
pub use export::{
    associations_to_csv, coverage_to_csv, diagnosis_to_csv, subsumption_to_csv, verdicts_to_csv,
};
pub use matcher::{subsume_enabled, MatchAutomaton, MatchCursor, Tracking};
pub use obs::{self, MetricsReport, TimerStat};
pub use par::thread_count;
pub use report::{
    render_subsumption, render_summary, render_table1, render_table2, render_verdicts, Table2Row,
};
pub use session::{
    DftSession, MatchStrategy, RetryAttempt, RetryPolicy, RetryReport, SessionArtifacts,
    SessionConfig, TestcaseSpec,
};
pub use statics::{
    analyse, analyse_with_threads, incremental_enabled, StaticAnalysis, StaticLint, SubsumptionInfo,
};

//! The three-stage DFT session of Fig. 3: static analysis once, then
//! dynamic analysis per testcase, then coverage evaluation — with the
//! uncovered-association work list driving the "tests addition" loop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use obs::MetricsReport;
use tdf_sim::{
    Cluster, CompactEvent, CompactRecordingSink, Event, EventSink, Interner, RunLimits, SimTime,
    Simulator, TdfError,
};

use crate::coverage::{Coverage, RunOutcome, TestcaseResult};
use crate::design::Design;
use crate::dynamic::MatchMode;
use crate::error::{panic_payload_str, DftError, Result};
use crate::matcher::MatchAutomaton;
use crate::statics::{analyse, StaticAnalysis};

/// One testcase prepared for [`DftSession::run_testcases`]: a freshly built
/// cluster plus its name and simulated duration.
#[derive(Debug)]
pub struct TestcaseSpec {
    /// Report name of the testcase.
    pub name: String,
    /// The elaboratable cluster (testcases differ in stimulus sources).
    pub cluster: Cluster,
    /// How long to simulate.
    pub duration: SimTime,
}

impl TestcaseSpec {
    /// Bundles a testcase.
    pub fn new(name: impl Into<String>, cluster: Cluster, duration: SimTime) -> TestcaseSpec {
        TestcaseSpec {
            name: name.into(),
            cluster,
            duration,
        }
    }
}

/// A data-flow-testing session over one design.
///
/// ```no_run
/// # fn design() -> dft_core::Design { unimplemented!() }
/// # fn build_cluster(_tc: &str) -> tdf_sim::Cluster { unimplemented!() }
/// use dft_core::DftSession;
/// use tdf_sim::SimTime;
///
/// let mut session = DftSession::new(design())?;
/// // Stage 1 ran at construction; stages 2+3 per testcase:
/// session.run_testcase("TC1", build_cluster("TC1"), SimTime::from_ms(1))?;
/// session.run_testcase("TC2", build_cluster("TC2"), SimTime::from_ms(1))?;
/// let cov = session.coverage();
/// println!("{}", dft_core::render_table1(&cov));
/// for missing in cov.uncovered() {
///     println!("add a testcase for {missing}");
/// }
/// # Ok::<(), dft_core::DftError>(())
/// ```
#[derive(Debug)]
pub struct DftSession {
    design: Design,
    statics: StaticAnalysis,
    /// Prebuilt matching tables over the design-wide interner (see
    /// [`MatchAutomaton`]); built once here, shared read-only by every
    /// log-matching worker.
    automaton: MatchAutomaton,
    runs: Vec<TestcaseResult>,
    /// Recycled event buffers: testcase simulations record into a pooled
    /// `Vec<CompactEvent>` (clear-and-reuse), so candidate evaluation
    /// loops stop reallocating megabyte-sized logs per testcase.
    pool: Vec<Vec<CompactEvent>>,
}

impl DftSession {
    /// Creates a session and runs the static stage.
    pub fn new(design: Design) -> Result<DftSession> {
        let statics = analyse(&design);
        let automaton = MatchAutomaton::new(&design, &statics);
        Ok(DftSession {
            design,
            statics,
            automaton,
            runs: Vec::new(),
            pool: Vec::new(),
        })
    }

    /// The design under verification.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The static-stage result (associations + lints).
    pub fn static_analysis(&self) -> &StaticAnalysis {
        &self.statics
    }

    /// Runs one testcase: elaborates `cluster`, simulates it for
    /// `duration` with instrumentation enabled, and matches the event log
    /// into exercised associations.
    ///
    /// The cluster must be freshly built per testcase (testcases differ in
    /// their stimulus sources).
    ///
    /// # Errors
    ///
    /// Propagates elaboration/simulation errors.
    pub fn run_testcase(
        &mut self,
        name: &str,
        cluster: Cluster,
        duration: SimTime,
    ) -> Result<&TestcaseResult> {
        let buffer = self.pool.pop().unwrap_or_default();
        let events = simulate_testcase(name, cluster, duration, self.design.interner(), buffer)?;
        let (result, bits) = self
            .automaton
            .analyse_with_coverage(&events, MatchMode::Strict);
        self.pool.push(recycled(events));
        self.runs.push(TestcaseResult {
            name: name.to_owned(),
            exercised: result.exercised,
            defs_executed: result.defs_executed,
            warnings: result.warnings,
            outcome: RunOutcome::Ok,
            exercised_idx: Some(bits),
        });
        Ok(self.runs.last().expect("just pushed"))
    }

    /// Runs a batch of testcases: simulation stays sequential (module state
    /// is not shared across threads), but the per-testcase event-log
    /// matching — the log-analysis half of stage 2 — fans out across
    /// [`crate::thread_count`] scoped workers. Results are appended in
    /// batch order, so reports are byte-identical to running
    /// [`DftSession::run_testcase`] once per entry.
    ///
    /// Unlike [`DftSession::run_testcase`], a failing testcase does **not**
    /// abort the batch: elaboration errors, simulation errors, tripped
    /// [`RunLimits`] budgets and even module panics are isolated to their
    /// testcase and recorded as a degraded [`RunOutcome`], and whatever the
    /// testcase logged before failing still contributes (partial) coverage.
    ///
    /// # Errors
    ///
    /// Never errors; the `Result` is kept for API stability. Per-testcase
    /// failures are reported via [`TestcaseResult::outcome`].
    pub fn run_testcases(&mut self, testcases: Vec<TestcaseSpec>) -> Result<&[TestcaseResult]> {
        Ok(self.run_testcases_with(testcases, RunLimits::none()))
    }

    /// [`DftSession::run_testcases`] with per-testcase [`RunLimits`]
    /// budgets. Each testcase is simulated under `limits`; a tripped budget
    /// degrades only that testcase ([`RunOutcome::TimedOut`]) while its
    /// partial event log is still matched. Event logs of degraded testcases
    /// are matched in [`MatchMode::Lenient`] — as are healthy ones, which
    /// is indistinguishable from strict matching on a well-formed log.
    pub fn run_testcases_with(
        &mut self,
        testcases: Vec<TestcaseSpec>,
        limits: RunLimits,
    ) -> &[TestcaseResult] {
        self.run_testcases_with_threads(testcases, limits, crate::thread_count())
    }

    /// [`DftSession::run_testcases_with`] with an explicit worker count
    /// for the log-matching fan-out, instead of the process-wide
    /// [`crate::thread_count`]. Results are byte-identical for every
    /// `threads` value (index-slot merge); an explicit count lets callers
    /// — the coverage-guided generator's determinism gates in particular
    /// — compare thread counts in-process without mutating `DFT_THREADS`.
    pub fn run_testcases_with_threads(
        &mut self,
        testcases: Vec<TestcaseSpec>,
        limits: RunLimits,
        threads: usize,
    ) -> &[TestcaseResult] {
        static DEGRADED: obs::Counter = obs::Counter::new("testcase.degraded");
        let mut names = Vec::with_capacity(testcases.len());
        let mut outcomes = Vec::with_capacity(testcases.len());
        let mut events = Vec::with_capacity(testcases.len());
        for tc in testcases {
            let buffer = self.pool.pop().unwrap_or_default();
            let (log, outcome) = simulate_testcase_isolated(
                &tc.name,
                tc.cluster,
                tc.duration,
                limits,
                self.design.interner(),
                buffer,
            );
            if outcome.is_degraded() {
                DEGRADED.add(1);
            }
            names.push(tc.name);
            outcomes.push(outcome);
            events.push(log);
        }
        let automaton = &self.automaton;
        let results = crate::par::par_map(&events, threads, |log| {
            automaton.analyse_with_coverage(log, MatchMode::Lenient)
        });
        self.pool.extend(events.into_iter().map(recycled));
        let start = self.runs.len();
        self.runs
            .extend(names.into_iter().zip(outcomes).zip(results).map(
                |((name, outcome), (r, bits))| TestcaseResult {
                    name,
                    exercised: r.exercised,
                    defs_executed: r.defs_executed,
                    warnings: r.warnings,
                    outcome,
                    exercised_idx: Some(bits),
                },
            ));
        &self.runs[start..]
    }

    /// All testcase results so far.
    pub fn runs(&self) -> &[TestcaseResult] {
        &self.runs
    }

    /// Evaluates coverage over all testcases run so far.
    pub fn coverage(&self) -> Coverage {
        Coverage::evaluate(&self.statics, &self.runs)
    }

    /// Drops all recorded runs (e.g. to replay a reduced testsuite).
    pub fn clear_runs(&mut self) {
        self.runs.clear();
    }

    /// Splits off and returns every run from index `start` on, leaving
    /// the session with its first `start` runs. This is the candidate
    /// protocol of coverage-guided generation: evaluate a batch
    /// ([`DftSession::run_testcases_with_threads`]), take the appended
    /// results for fitness scoring, and [`DftSession::push_run`] back
    /// only the accepted ones — the statics never re-run.
    ///
    /// # Panics
    ///
    /// Panics if `start > self.runs().len()`.
    pub fn take_runs_from(&mut self, start: usize) -> Vec<TestcaseResult> {
        self.runs.split_off(start)
    }

    /// Appends an already-computed run (one previously returned by
    /// [`DftSession::take_runs_from`]) without re-simulating anything.
    pub fn push_run(&mut self, run: TestcaseResult) {
        self.runs.push(run);
    }

    /// Snapshot of the observability registry: per-stage wall times
    /// (`stage.schedule` / `stage.simulate` / `stage.static` /
    /// `stage.match`), reachability-cache hit/miss counts
    /// (`cfg.reach_cache.*`), kernel counters (`sim.*`) and per-testcase
    /// series (`testcase.<name>.events` / `testcase.<name>.wall`).
    ///
    /// Empty unless the process runs with `DFT_METRICS=1` (or
    /// `DFT_TRACE=1`); render with [`MetricsReport::to_text`] or
    /// [`MetricsReport::to_json`]. The registry is process-global, so
    /// concurrent sessions aggregate into the same report.
    pub fn metrics(&self) -> MetricsReport {
        MetricsReport::capture()
    }
}

/// Clears a returned event buffer so the pool hands out empty, warm
/// allocations.
fn recycled(mut buffer: Vec<CompactEvent>) -> Vec<CompactEvent> {
    buffer.clear();
    buffer
}

/// Elaborates and simulates one testcase with instrumentation enabled,
/// recording its event count and wall time under `testcase.<name>.*`. The
/// cluster is re-keyed onto the design-wide `interner` so the recorded
/// compact events use the session's symbol ids; `buffer` is a pooled
/// allocation to record into.
fn simulate_testcase(
    name: &str,
    mut cluster: Cluster,
    duration: SimTime,
    interner: &Arc<Interner>,
    buffer: Vec<CompactEvent>,
) -> Result<Vec<CompactEvent>> {
    let started = obs::metrics_enabled().then(Instant::now);
    cluster.set_interner(Arc::clone(interner));
    let mut sim = Simulator::new(cluster)?;
    let mut sink = CompactRecordingSink::with_buffer(Arc::clone(interner), buffer);
    {
        let _span = obs::span("stage.simulate");
        sim.run(duration, &mut sink)?;
    }
    if let Some(t0) = started {
        obs::counter_add(&format!("testcase.{name}.events"), sink.events.len() as u64);
        obs::observe_duration(&format!("testcase.{name}.wall"), t0.elapsed());
    }
    Ok(sink.events)
}

/// An [`EventSink`] appending into a shared, mutex-guarded buffer that
/// outlives the simulation — so the event log survives a panicking module.
/// Compact events are pushed as-is; legacy string events (from fault sinks
/// and hand-instrumented modules) are interned on the way in.
struct SharedSink {
    buf: Arc<Mutex<Vec<CompactEvent>>>,
    interner: Arc<Interner>,
}

impl EventSink for SharedSink {
    fn record(&mut self, event: Event) {
        let event = CompactEvent::from_event(&event, &self.interner);
        // A poisoned lock only means some other holder panicked mid-append;
        // the Vec itself is never left in a torn state (push is the only
        // mutation), so recover the guard and keep recording.
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event);
    }

    fn record_compact(&mut self, event: CompactEvent, interner: &Interner) {
        debug_assert!(
            std::ptr::eq(&*self.interner, interner),
            "compact events recorded against a foreign interner"
        );
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event);
    }
}

/// Elaborates and simulates one testcase under `limits` with full failure
/// isolation: errors, tripped budgets and module panics degrade the
/// [`RunOutcome`] instead of propagating, and whatever was logged before
/// the failure is recovered.
///
/// Unwind-safety invariant (the reason `AssertUnwindSafe` is sound here):
/// the closure *owns* everything it mutates — the cluster, the simulator
/// built from it, and its `SharedSink` — so a panic can only tear state
/// that dies with the closure. The sole data crossing the unwind boundary
/// is the `Arc<Mutex<Vec<Event>>>` event buffer, which is append-only and
/// mutated one `push` at a time under the lock; an unwind can therefore at
/// worst *truncate* the log (a shorter but well-formed prefix), never
/// corrupt an entry. No bare `&mut` borrow is captured across the boundary.
fn simulate_testcase_isolated(
    name: &str,
    mut cluster: Cluster,
    duration: SimTime,
    limits: RunLimits,
    interner: &Arc<Interner>,
    buffer: Vec<CompactEvent>,
) -> (Vec<CompactEvent>, RunOutcome) {
    let started = obs::metrics_enabled().then(Instant::now);
    cluster.set_interner(Arc::clone(interner));
    let events: Arc<Mutex<Vec<CompactEvent>>> = Arc::new(Mutex::new(recycled(buffer)));
    let shared = SharedSink {
        buf: Arc::clone(&events),
        interner: Arc::clone(interner),
    };
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut sim = Simulator::new(cluster)?;
        let mut sink = shared;
        let _span = obs::span("stage.simulate");
        sim.run_with_limits(duration, &mut sink, &limits)?;
        Ok::<(), DftError>(())
    }));
    let outcome = match run {
        Ok(Ok(())) => RunOutcome::Ok,
        Ok(Err(DftError::Sim(
            e @ (TdfError::ActivationLimit { .. }
            | TdfError::EventLimit { .. }
            | TdfError::DeadlineExceeded { .. }),
        ))) => RunOutcome::TimedOut {
            reason: e.to_string(),
        },
        Ok(Err(e)) => RunOutcome::Failed {
            error: e.to_string(),
        },
        Err(payload) => RunOutcome::Panicked {
            payload: panic_payload_str(payload),
        },
    };
    let log = {
        let mut guard = events.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut *guard)
    };
    if let Some(t0) = started {
        obs::counter_add(&format!("testcase.{name}.events"), log.len() as u64);
        obs::observe_duration(&format!("testcase.{name}.wall"), t0.elapsed());
    }
    (log, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::Association;
    use tdf_interp::{Interface, InterpModule, TdfModelDef};
    use tdf_sim::{FnSource, Value};

    const SRC: &str = "\
void A::processing()
{
    double t = ip_in * 1000;
    double o = 0;
    if (t > 30) { o = t; }
    op_y = o;
}
void B::processing()
{
    double v = ip_x;
    op_z = v;
}";

    fn defs() -> Vec<TdfModelDef> {
        vec![
            TdfModelDef::new(
                "A",
                Interface::new()
                    .input("ip_in")
                    .output("op_y")
                    .timestep(SimTime::from_us(1)),
            ),
            TdfModelDef::new("B", Interface::new().input("ip_x").output("op_z")),
        ]
    }

    fn build_cluster(level: f64) -> (Cluster, Design) {
        let tu = minic::parse(SRC).unwrap();
        let mut cluster = Cluster::new("top");
        let src = cluster
            .add_module(Box::new(FnSource::new(
                "src",
                SimTime::from_us(1),
                move |_| Value::Double(level),
            )))
            .unwrap();
        let mut ids = Vec::new();
        for d in defs() {
            let m = InterpModule::new(&tu, &d.model, d.interface.clone()).unwrap();
            ids.push(cluster.add_module(Box::new(m)).unwrap());
        }
        cluster.connect(src, "op_out", ids[0], "ip_in").unwrap();
        cluster.connect(ids[0], "op_y", ids[1], "ip_x").unwrap();
        let design = Design::new(minic::parse(SRC).unwrap(), defs(), cluster.netlist()).unwrap();
        (cluster, design)
    }

    #[test]
    fn full_pipeline_covers_expected_pairs() {
        let (cluster, design) = build_cluster(0.1); // 100 mV -> above threshold
        let mut session = DftSession::new(design).unwrap();
        assert!(!session.static_analysis().is_empty());
        session
            .run_testcase("TC1", cluster, SimTime::from_us(3))
            .unwrap();
        let cov = session.coverage();
        // (t, 3, A, 5, A) exercised.
        let idx = cov
            .associations()
            .iter()
            .position(|c| c.assoc == Association::new("t", 3, "A", 5, "A"))
            .expect("static pair exists");
        assert!(cov.is_covered(idx));
        // Cross-model Strong pair: op_y def at 6 used in B line 10.
        let cross = cov
            .associations()
            .iter()
            .position(|c| c.assoc == Association::new("op_y", 6, "A", 10, "B"))
            .expect("cluster pair exists");
        assert!(cov.is_covered(cross));
    }

    #[test]
    fn below_threshold_misses_then_branch_pair() {
        let (cluster, design) = build_cluster(0.01); // 10 mV -> then-branch never taken
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcase("TC1", cluster, SimTime::from_us(3))
            .unwrap();
        let cov = session.coverage();
        let idx = cov
            .associations()
            .iter()
            .position(|c| c.assoc == Association::new("o", 5, "A", 6, "A"))
            .expect("redefinition pair exists");
        assert!(!cov.is_covered(idx), "o = t never executed");
        assert!(!cov.uncovered().is_empty());
    }

    #[test]
    fn batch_run_matches_sequential_runs() {
        let (c1, design) = build_cluster(0.01);
        let mut seq = DftSession::new(design).unwrap();
        seq.run_testcase("TC1", c1, SimTime::from_us(3)).unwrap();
        let (c2, _) = build_cluster(0.1);
        seq.run_testcase("TC2", c2, SimTime::from_us(3)).unwrap();

        let (b1, design) = build_cluster(0.01);
        let (b2, _) = build_cluster(0.1);
        let mut batch = DftSession::new(design).unwrap();
        let appended = batch
            .run_testcases(vec![
                TestcaseSpec::new("TC1", b1, SimTime::from_us(3)),
                TestcaseSpec::new("TC2", b2, SimTime::from_us(3)),
            ])
            .unwrap();
        assert_eq!(appended.len(), 2);

        assert_eq!(seq.runs().len(), batch.runs().len());
        for (s, b) in seq.runs().iter().zip(batch.runs()) {
            assert_eq!(s.name, b.name);
            assert_eq!(s.exercised, b.exercised);
            assert_eq!(s.defs_executed, b.defs_executed);
            assert_eq!(s.warnings, b.warnings);
        }
        assert_eq!(
            crate::render_table1(&seq.coverage()),
            crate::render_table1(&batch.coverage()),
            "reports byte-identical"
        );
    }

    #[test]
    fn take_and_push_runs_preserve_reports() {
        let (c1, design) = build_cluster(0.01);
        let (c2, _) = build_cluster(0.1);
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcases(vec![
                TestcaseSpec::new("TC1", c1, SimTime::from_us(3)),
                TestcaseSpec::new("TC2", c2, SimTime::from_us(3)),
            ])
            .unwrap();
        let before = crate::render_table1(&session.coverage());

        // Candidate protocol: take everything, push it back, same report.
        let taken = session.take_runs_from(0);
        assert_eq!(taken.len(), 2);
        assert_eq!(session.runs().len(), 0);
        for run in taken {
            session.push_run(run);
        }
        assert_eq!(crate::render_table1(&session.coverage()), before);

        // Dropping the tail keeps the head intact.
        let tail = session.take_runs_from(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(session.runs().len(), 1);
        assert_eq!(session.runs()[0].name, "TC1");
    }

    #[test]
    fn explicit_thread_counts_are_byte_identical() {
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let (c1, design) = build_cluster(0.01);
            let (c2, _) = build_cluster(0.1);
            let mut session = DftSession::new(design).unwrap();
            session.run_testcases_with_threads(
                vec![
                    TestcaseSpec::new("TC1", c1, SimTime::from_us(3)),
                    TestcaseSpec::new("TC2", c2, SimTime::from_us(3)),
                ],
                RunLimits::none(),
                threads,
            );
            reports.push(crate::render_table1(&session.coverage()));
        }
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn metrics_report_covers_all_pipeline_stages() {
        let was_on = obs::metrics_enabled();
        obs::set_metrics_enabled(true);

        let (cluster, design) = build_cluster(0.1);
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcase("TC_metrics_probe", cluster, SimTime::from_us(3))
            .unwrap();
        let report = session.metrics();
        obs::set_metrics_enabled(was_on);

        assert!(!report.is_empty());
        for stage in [
            "stage.schedule",
            "stage.simulate",
            "stage.static",
            "stage.match",
        ] {
            let t = report
                .timer(stage)
                .unwrap_or_else(|| panic!("{stage} missing"));
            assert!(t.count >= 1, "{stage} recorded no spans");
        }
        assert!(
            report.counter("testcase.TC_metrics_probe.events") > 0,
            "per-testcase event count missing"
        );
        assert!(
            report.timer("testcase.TC_metrics_probe.wall").is_some(),
            "per-testcase wall timer missing"
        );
        // Static analysis queries reachability repeatedly per Cfg: at least
        // one closure build (miss) and at least one reuse (hit).
        assert!(report.counter("cfg.reach_cache.miss") >= 1);
        assert!(report.counter("cfg.reach_cache.hit") >= 1);
        assert!(report.counter("match.events") > 0);
        // Both renderings include every stage row.
        let (text, json) = (report.to_text(), report.to_json());
        assert!(text.contains("stage.simulate"), "{text}");
        assert!(json.contains("\"stage.simulate\""), "{json}");
    }

    #[test]
    fn adding_testcases_grows_coverage_monotonically() {
        let (c1, design) = build_cluster(0.01);
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcase("TC1", c1, SimTime::from_us(3))
            .unwrap();
        let before = session.coverage().exercised_count();
        let (c2, _) = build_cluster(0.1);
        session
            .run_testcase("TC2", c2, SimTime::from_us(3))
            .unwrap();
        let after = session.coverage().exercised_count();
        assert!(
            after > before,
            "TC2 exercises the hot branch: {before} -> {after}"
        );
        assert_eq!(session.runs().len(), 2);
        session.clear_runs();
        assert_eq!(session.coverage().exercised_count(), 0);
    }
}

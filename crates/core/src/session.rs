//! The three-stage DFT session of Fig. 3: static analysis once, then
//! dynamic analysis per testcase, then coverage evaluation — with the
//! uncovered-association work list driving the "tests addition" loop.
//!
//! Since PR 6 the dynamic stage defaults to **streaming**: a
//! [`MatchCursor`] rides the simulation through a
//! [`MatchingSink`](tdf_sim::MatchingSink), so events are matched as the
//! kernel produces them and no per-testcase log is ever materialized —
//! peak memory is O(automaton state), which is what unlocks
//! long-/infinite-horizon runs. The buffered pipeline (record a pooled
//! `Vec<CompactEvent>`, then match, fanning the matching out across
//! `DFT_THREADS` workers) stays available behind
//! [`MatchStrategy::Buffered`] / `DFT_STREAM=0` and is gated byte-identical
//! to the streamed one in `tests/match_equiv.rs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dft_monitor::{AssertionSpec, AssertionVerdict, MonitorBank, MonitorSink};
use obs::MetricsReport;
use tdf_sim::{
    Cluster, CompactConsumer, CompactEvent, CompactRecordingSink, Event, EventSink, Interner,
    MatchingSink, RunLimits, SimTime, Simulator, TdfError,
};

use crate::coverage::{Coverage, RunOutcome, TestcaseResult};
use crate::design::Design;
use crate::dynamic::MatchMode;
use crate::error::{panic_payload_str, DftError, Result};
use crate::matcher::{subsume_enabled, MatchAutomaton, MatchCursor, Tracking};
use crate::statics::{
    analyse_build, incremental_enabled, ModelArtifactCache, StaticAnalysis, StaticBuild,
};

/// How a session turns simulation events into exercised associations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchStrategy {
    /// Match events as the simulation emits them (one pass, no
    /// materialized log). The default.
    Streamed,
    /// Record the full compact event log into a pooled buffer, then match
    /// it (the pre-PR-6 pipeline; batch matching fans out across
    /// `DFT_THREADS` workers).
    Buffered,
}

impl MatchStrategy {
    /// The strategy selected by the `DFT_STREAM` environment variable:
    /// `0` / `false` / `off` opt back into the buffered pipeline,
    /// anything else (including unset) streams.
    pub fn from_env() -> MatchStrategy {
        match std::env::var("DFT_STREAM") {
            Ok(v)
                if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off") =>
            {
                MatchStrategy::Buffered
            }
            _ => MatchStrategy::Streamed,
        }
    }
}

/// All pipeline knobs of one session, resolved **once** at construction.
///
/// The environment variables (`DFT_THREADS`, `DFT_STREAM`, `DFT_SUBSUME`)
/// are read exactly once, by [`SessionConfig::from_env`]; nothing on a
/// session's hot path touches the environment afterwards. That makes
/// per-request runs immune to concurrent `set_var` races and lets a
/// multi-tenant embedder (e.g. `dft-serve`) give every request its own
/// knob set over the same shared artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Worker count for the static-analysis and buffered log-matching
    /// fan-outs (the `DFT_THREADS` knob; reports are byte-identical for
    /// every value).
    pub threads: usize,
    /// How testcase events are matched (the `DFT_STREAM` knob).
    pub strategy: MatchStrategy,
    /// Which association rows the match automaton tracks on its hot path
    /// (the `DFT_SUBSUME` knob). An **artifact-build-time** knob: it is
    /// consumed when the [`SessionArtifacts`] are built and ignored by
    /// [`DftSession::from_artifacts`], which inherits the automaton it is
    /// given. Raw reports are byte-identical either way.
    pub tracking: Tracking,
    /// Whether the static stage may memoize per-model artifacts (the
    /// `DFT_INCR` knob): unchanged models resolve from the process-wide
    /// model-artifact cache — and, on
    /// [`SessionArtifacts::build_incremental`], from the previous build —
    /// instead of recomputing. Another artifact-build-time knob; reports
    /// are byte-identical either way, `false` is the exact cold path.
    pub incremental: bool,
}

impl SessionConfig {
    /// Resolves every knob from the environment — the configuration
    /// [`DftSession::new`] uses.
    pub fn from_env() -> SessionConfig {
        SessionConfig {
            threads: crate::thread_count(),
            strategy: MatchStrategy::from_env(),
            tracking: if subsume_enabled() {
                Tracking::Reduced
            } else {
                Tracking::Full
            },
            incremental: incremental_enabled(),
        }
    }

    /// Overrides the worker count (builder style).
    pub fn with_threads(mut self, threads: usize) -> SessionConfig {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the match strategy (builder style).
    pub fn with_strategy(mut self, strategy: MatchStrategy) -> SessionConfig {
        self.strategy = strategy;
        self
    }

    /// Overrides the tracking policy (builder style).
    pub fn with_tracking(mut self, tracking: Tracking) -> SessionConfig {
        self.tracking = tracking;
        self
    }

    /// Overrides the incremental-memoization policy (builder style).
    pub fn with_incremental(mut self, incremental: bool) -> SessionConfig {
        self.incremental = incremental;
        self
    }
}

impl Default for SessionConfig {
    /// Defaults to [`SessionConfig::from_env`] — the documented behaviour
    /// of a plain [`DftSession::new`].
    fn default() -> SessionConfig {
        SessionConfig::from_env()
    }
}

/// The frozen, immutable product of the static pipeline stage: the
/// [`Design`] (with its interner), the [`StaticAnalysis`] and the prebuilt
/// [`MatchAutomaton`]. Everything in here is read-only after construction
/// and `Sync`, so one `Arc<SessionArtifacts>` can back any number of
/// concurrent [`DftSession`]s — this is the unit a warm artifact cache
/// (e.g. `dft-serve`'s content-hash cache) stores, letting repeat analyses
/// of the same design skip elaboration and static analysis entirely.
#[derive(Debug)]
pub struct SessionArtifacts {
    design: Design,
    statics: StaticAnalysis,
    automaton: MatchAutomaton,
    tracking: Tracking,
    /// Per-model decomposition of the static stage, retained so a later
    /// [`SessionArtifacts::build_incremental`] can splice every unchanged
    /// model instead of recomputing it.
    static_build: StaticBuild,
    models_rebuilt: usize,
}

impl SessionArtifacts {
    /// Runs the static stage and freezes the artifacts with the
    /// environment-resolved configuration.
    pub fn build(design: Design) -> Arc<SessionArtifacts> {
        Self::build_with(design, &SessionConfig::from_env())
    }

    /// Runs the static stage on `config.threads` workers and freezes the
    /// artifacts with `config.tracking`.
    pub fn build_with(design: Design, config: &SessionConfig) -> Arc<SessionArtifacts> {
        Self::assemble(design, None, config)
    }

    /// Like [`SessionArtifacts::build_with`], but diffs `design`'s
    /// per-model content hashes against `prev` (a frozen build of an
    /// earlier revision, typically of the same design family) and splices
    /// every unchanged model's static artifact — and every cluster unit
    /// whose inputs are unchanged — into the fresh [`StaticAnalysis`] and
    /// [`MatchAutomaton`]. The result is byte-identical to a cold
    /// [`SessionArtifacts::build_with`] of the same design; only the work
    /// spent differs. With `config.incremental == false` this *is* the
    /// cold build.
    pub fn build_incremental(
        design: Design,
        prev: &SessionArtifacts,
        config: &SessionConfig,
    ) -> Arc<SessionArtifacts> {
        Self::assemble(design, Some(prev), config)
    }

    fn assemble(
        design: Design,
        prev: Option<&SessionArtifacts>,
        config: &SessionConfig,
    ) -> Arc<SessionArtifacts> {
        let cache = config.incremental.then(ModelArtifactCache::global);
        let prev_build = if config.incremental {
            prev.map(|p| &p.static_build)
        } else {
            None
        };
        let outcome = analyse_build(&design, config.threads, cache, prev_build);
        let automaton = MatchAutomaton::with_tracking(&design, &outcome.analysis, config.tracking);
        Arc::new(SessionArtifacts {
            design,
            statics: outcome.analysis,
            automaton,
            tracking: config.tracking,
            static_build: outcome.build,
            models_rebuilt: outcome.models_rebuilt,
        })
    }

    /// The design under verification.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The static-stage result (associations + lints).
    pub fn static_analysis(&self) -> &StaticAnalysis {
        &self.statics
    }

    /// The [`Tracking`] policy the automaton was built with.
    pub fn tracking(&self) -> Tracking {
        self.tracking
    }

    /// How many user models the static stage actually recomputed when
    /// these artifacts were built (the rest were spliced from the
    /// process-wide model cache or a previous build).
    pub fn models_rebuilt(&self) -> usize {
        self.models_rebuilt
    }

    /// Number of user models in the design.
    pub fn model_count(&self) -> usize {
        self.static_build.model_count()
    }

    /// Re-runs only the static stage of an edited `design` against these
    /// artifacts, without building a match automaton. Returns the fresh
    /// analysis and how many models were actually recomputed. This is the
    /// measurement target for the incremental-vs-cold benchmark: it
    /// isolates exactly the work [`build_incremental`] saves, independent
    /// of design construction and automaton cost.
    ///
    /// [`build_incremental`]: SessionArtifacts::build_incremental
    pub fn reanalyse(&self, design: &Design, config: &SessionConfig) -> (StaticAnalysis, usize) {
        let cache = config.incremental.then(ModelArtifactCache::global);
        let prev_build = config.incremental.then_some(&self.static_build);
        let outcome = analyse_build(design, config.threads, cache, prev_build);
        (outcome.analysis, outcome.models_rebuilt)
    }
}

/// Exponential-backoff retry policy for the per-testcase supervisor
/// ([`DftSession::run_testcase_retrying`]): transient failures —
/// [`RunOutcome::Panicked`] and [`RunOutcome::TimedOut`] — are rerun up to
/// [`max_retries`] times with escalating budgets, while
/// [`RunOutcome::Failed`] (a deterministic elaboration/simulation error)
/// is permanent immediately.
///
/// [`max_retries`]: RetryPolicy::max_retries
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reruns after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff slept before the first retry.
    pub backoff_base: Duration,
    /// Backoff multiplier per further retry (`base`, `base·m`, `base·m²`…).
    pub backoff_multiplier: u32,
    /// Factor applied to every finite [`RunLimits`] budget (activations,
    /// events, wall) per retry, so a run that timed out under a tight
    /// budget gets escalating headroom. Absolute deadlines are *not*
    /// escalated — a served request's deadline stays authoritative.
    pub budget_escalation: u32,
    /// Whether the supervisor actually sleeps its backoffs. Tests disable
    /// this and assert on the recorded schedule instead.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_multiplier: 2,
            budget_escalation: 2,
            sleep: true,
        }
    }
}

impl RetryPolicy {
    /// Never retries (a single supervised attempt).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff slept before retry number `retry` (1-based):
    /// `base · multiplier^(retry-1)`, saturating.
    pub fn backoff_before(&self, retry: u32) -> Duration {
        let factor = self
            .backoff_multiplier
            .checked_pow(retry.saturating_sub(1))
            .unwrap_or(u32::MAX);
        self.backoff_base.saturating_mul(factor)
    }

    /// `limits` with every finite budget escalated for attempt number
    /// `attempt` (0-based): factor `budget_escalation^attempt`, saturating.
    pub fn escalate(&self, limits: &RunLimits, attempt: u32) -> RunLimits {
        if attempt == 0 {
            return *limits;
        }
        let factor = self
            .budget_escalation
            .checked_pow(attempt)
            .unwrap_or(u32::MAX);
        let mut out = *limits;
        out.max_activations = limits
            .max_activations
            .map(|n| n.saturating_mul(u64::from(factor)));
        out.max_events = limits
            .max_events
            .map(|n| n.saturating_mul(u64::from(factor)));
        out.wall_budget = limits.wall_budget.map(|b| b.saturating_mul(factor));
        out
    }
}

/// One supervised attempt of a retried testcase.
#[derive(Debug, Clone)]
pub struct RetryAttempt {
    /// Attempt number (0 = the initial run).
    pub attempt: u32,
    /// How this attempt ended.
    pub outcome: RunOutcome,
    /// The (possibly escalated) budgets the attempt ran under.
    pub limits: RunLimits,
    /// The backoff scheduled after this attempt — `Some` exactly when a
    /// further attempt followed.
    pub backoff: Option<Duration>,
}

/// What [`DftSession::run_testcase_retrying`] did: every attempt with its
/// outcome, budgets and backoff. Only the **final** attempt's run is left
/// in the session — discarded attempts cannot contaminate the batch
/// report, so a testcase salvaged on retry reports byte-identically to one
/// that never failed.
#[derive(Debug, Clone)]
pub struct RetryReport {
    /// Testcase name.
    pub name: String,
    /// Every attempt, in order; never empty.
    pub attempts: Vec<RetryAttempt>,
}

impl RetryReport {
    /// The outcome of the final (kept) attempt.
    pub fn final_outcome(&self) -> &RunOutcome {
        &self.attempts.last().expect("never empty").outcome
    }

    /// True when earlier attempts degraded but the final one succeeded —
    /// coverage was salvaged from a flaky run.
    pub fn salvaged(&self) -> bool {
        self.attempts.len() > 1 && !self.final_outcome().is_degraded()
    }

    /// True when every attempt (including the kept one) degraded — the
    /// failure is classified permanent after the retry budget is spent.
    pub fn permanent_failure(&self) -> bool {
        self.final_outcome().is_degraded()
    }

    /// The backoffs slept between attempts, in order.
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        self.attempts.iter().filter_map(|a| a.backoff).collect()
    }
}

/// Most pooled event buffers a session retains between testcases; surplus
/// buffers returned by large batches are dropped instead of pinned for the
/// session lifetime.
const MAX_POOLED_BUFFERS: usize = 8;

/// Largest per-buffer capacity (in events) the pool keeps. A pathological
/// testcase that ballooned a log past this is freed rather than recycled,
/// so one outlier cannot pin megabytes until the session drops.
const MAX_POOLED_EVENTS: usize = 1 << 18;

/// One testcase prepared for [`DftSession::run_testcases`]: a freshly built
/// cluster plus its name and simulated duration.
#[derive(Debug)]
pub struct TestcaseSpec {
    /// Report name of the testcase.
    pub name: String,
    /// The elaboratable cluster (testcases differ in stimulus sources).
    pub cluster: Cluster,
    /// How long to simulate.
    pub duration: SimTime,
}

impl TestcaseSpec {
    /// Bundles a testcase.
    pub fn new(name: impl Into<String>, cluster: Cluster, duration: SimTime) -> TestcaseSpec {
        TestcaseSpec {
            name: name.into(),
            cluster,
            duration,
        }
    }
}

/// A data-flow-testing session over one design.
///
/// ```no_run
/// # fn design() -> dft_core::Design { unimplemented!() }
/// # fn build_cluster(_tc: &str) -> tdf_sim::Cluster { unimplemented!() }
/// use dft_core::DftSession;
/// use tdf_sim::SimTime;
///
/// let mut session = DftSession::new(design())?;
/// // Stage 1 ran at construction; stages 2+3 per testcase:
/// session.run_testcase("TC1", build_cluster("TC1"), SimTime::from_ms(1))?;
/// session.run_testcase("TC2", build_cluster("TC2"), SimTime::from_ms(1))?;
/// let cov = session.coverage();
/// println!("{}", dft_core::render_table1(&cov));
/// for missing in cov.uncovered() {
///     println!("add a testcase for {missing}");
/// }
/// # Ok::<(), dft_core::DftError>(())
/// ```
#[derive(Debug)]
pub struct DftSession {
    /// The frozen static-stage artifacts — design (with interner), static
    /// analysis and prebuilt [`MatchAutomaton`] — possibly shared with
    /// other sessions through an artifact cache.
    artifacts: Arc<SessionArtifacts>,
    /// Per-session knobs, resolved once at construction.
    config: SessionConfig,
    runs: Vec<TestcaseResult>,
    /// Recycled event buffers for the buffered strategy: testcase
    /// simulations record into a pooled `Vec<CompactEvent>`
    /// (clear-and-reuse), so candidate evaluation loops stop reallocating
    /// megabyte-sized logs per testcase. Bounded by
    /// [`MAX_POOLED_BUFFERS`] / [`MAX_POOLED_EVENTS`]; the streamed
    /// strategy never touches it.
    pool: Vec<Vec<CompactEvent>>,
    /// Assertions monitored alongside matching. Empty (the default) keeps
    /// the sample tap off and every run/report byte-identical to a
    /// session without monitor support.
    assertions: Vec<AssertionSpec>,
}

/// A monitor bank shared with the (possibly panicking) simulation pass.
type SharedBank = Arc<Mutex<MonitorBank>>;

impl DftSession {
    /// Creates a session and runs the static stage, with every knob
    /// resolved from the environment ([`SessionConfig::from_env`]).
    pub fn new(design: Design) -> Result<DftSession> {
        Self::with_config(design, SessionConfig::from_env())
    }

    /// Creates a session with explicit knobs: the static stage runs on
    /// `config.threads` workers and the automaton tracks
    /// `config.tracking`. Reports are byte-identical for every
    /// configuration.
    pub fn with_config(design: Design, config: SessionConfig) -> Result<DftSession> {
        Ok(Self::from_artifacts(
            SessionArtifacts::build_with(design, &config),
            config,
        ))
    }

    /// Creates a session over **already-frozen** artifacts — the warm
    /// path: elaboration and static analysis are skipped entirely, only
    /// per-session state (runs, pool) is allocated. This is what an
    /// artifact cache hit costs.
    ///
    /// `config.tracking` is ignored in favour of the tracking the shared
    /// automaton was actually built with (raw reports are byte-identical
    /// either way).
    pub fn from_artifacts(artifacts: Arc<SessionArtifacts>, config: SessionConfig) -> DftSession {
        let config = config.with_tracking(artifacts.tracking());
        DftSession {
            artifacts,
            config,
            runs: Vec::new(),
            pool: Vec::new(),
            assertions: Vec::new(),
        }
    }

    /// Attaches assertions to be monitored alongside matching (builder
    /// style): every subsequent testcase evaluates them over its sample
    /// streams in the same simulation pass and carries the per-assertion
    /// verdicts in [`TestcaseResult::verdicts`], in spec order. Verdicts
    /// are byte-identical across `DFT_THREADS` and [`MatchStrategy`]
    /// (simulation is sequential either way); with no assertions the
    /// sample tap stays off and reports are byte-identical to a session
    /// without monitor support.
    pub fn with_assertions(mut self, assertions: Vec<AssertionSpec>) -> DftSession {
        self.assertions = assertions;
        self
    }

    /// Replaces the monitored assertions for subsequent testcases (the
    /// mutator twin of [`DftSession::with_assertions`]).
    pub fn set_assertions(&mut self, assertions: Vec<AssertionSpec>) {
        self.assertions = assertions;
    }

    /// The assertions currently monitored.
    pub fn assertions(&self) -> &[AssertionSpec] {
        &self.assertions
    }

    /// A fresh per-testcase monitor bank, `None` when no assertions are
    /// attached (keeping the kernel's sample tap disabled).
    fn monitor_bank(&self) -> Option<SharedBank> {
        if self.assertions.is_empty() {
            return None;
        }
        Some(Arc::new(Mutex::new(MonitorBank::compile(
            &self.assertions,
            self.design().interner(),
        ))))
    }

    /// The frozen artifacts backing this session (shareable with further
    /// sessions via [`DftSession::from_artifacts`]).
    pub fn artifacts(&self) -> &Arc<SessionArtifacts> {
        &self.artifacts
    }

    /// The session's resolved configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The design under verification.
    pub fn design(&self) -> &Design {
        self.artifacts.design()
    }

    /// The static-stage result (associations + lints).
    pub fn static_analysis(&self) -> &StaticAnalysis {
        self.artifacts.static_analysis()
    }

    /// The prebuilt match automaton shared by this session's runs.
    fn automaton(&self) -> &MatchAutomaton {
        &self.artifacts.automaton
    }

    /// The active [`MatchStrategy`].
    pub fn match_strategy(&self) -> MatchStrategy {
        self.config.strategy
    }

    /// Overrides the [`MatchStrategy`] for subsequent testcases (builder
    /// style mutator; both strategies produce byte-identical reports).
    pub fn set_match_strategy(&mut self, strategy: MatchStrategy) {
        self.config.strategy = strategy;
    }

    /// Number of recycled event buffers currently pooled. The streamed
    /// strategy materializes no logs, so it leaves this at zero; exposed
    /// so tests can assert both that invariant and the pool bound.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Returns a drained event buffer to the pool, enforcing the count
    /// and per-buffer-capacity bounds.
    fn recycle(&mut self, mut buffer: Vec<CompactEvent>) {
        buffer.clear();
        if self.pool.len() < MAX_POOLED_BUFFERS && buffer.capacity() <= MAX_POOLED_EVENTS {
            self.pool.push(buffer);
        }
    }

    /// Runs one testcase: elaborates `cluster`, simulates it for
    /// `duration` with instrumentation enabled, and matches its def/use
    /// events into exercised associations — in one pass under the
    /// streamed strategy, or log-then-match under the buffered one.
    ///
    /// Events are matched in [`MatchMode::Lenient`], the same mode as the
    /// batch runners, so a batch of one reports identically to a single
    /// run even on malformed logs (lenient and strict matching are
    /// indistinguishable on well-formed ones).
    ///
    /// The cluster must be freshly built per testcase (testcases differ in
    /// their stimulus sources).
    ///
    /// # Errors
    ///
    /// Propagates elaboration/simulation errors.
    pub fn run_testcase(
        &mut self,
        name: &str,
        cluster: Cluster,
        duration: SimTime,
    ) -> Result<&TestcaseResult> {
        let monitor = self.monitor_bank();
        let (result, bits) = match self.config.strategy {
            MatchStrategy::Streamed => {
                let mut cursor = self.automaton().cursor(MatchMode::Lenient);
                stream_testcase(
                    name,
                    cluster,
                    duration,
                    self.design().interner(),
                    &mut cursor,
                    monitor.as_ref(),
                )?;
                let _span = obs::span("stage.match");
                cursor.finish()
            }
            MatchStrategy::Buffered => {
                let buffer = self.pool.pop().unwrap_or_default();
                let events = match simulate_testcase(
                    name,
                    cluster,
                    duration,
                    self.design().interner(),
                    buffer,
                    monitor.as_ref(),
                ) {
                    Ok(events) => events,
                    Err((error, buffer)) => {
                        // The pooled buffer must survive the failure —
                        // dropping it here leaked warm allocations from
                        // the pool one failing testcase at a time.
                        self.recycle(buffer);
                        return Err(error);
                    }
                };
                let out = self
                    .automaton()
                    .analyse_with_coverage(&events, MatchMode::Lenient);
                self.recycle(events);
                out
            }
        };
        self.runs.push(TestcaseResult {
            name: name.to_owned(),
            exercised: result.exercised,
            defs_executed: result.defs_executed,
            warnings: result.warnings,
            outcome: RunOutcome::Ok,
            exercised_idx: Some(bits),
            verdicts: finalize_bank(monitor, duration, false),
        });
        Ok(self.runs.last().expect("just pushed"))
    }

    /// Runs a batch of testcases: simulation stays sequential (module state
    /// is not shared across threads), but the per-testcase event-log
    /// matching — the log-analysis half of stage 2 — fans out across
    /// [`crate::thread_count`] scoped workers. Results are appended in
    /// batch order, so reports are byte-identical to running
    /// [`DftSession::run_testcase`] once per entry.
    ///
    /// Unlike [`DftSession::run_testcase`], a failing testcase does **not**
    /// abort the batch: elaboration errors, simulation errors, tripped
    /// [`RunLimits`] budgets and even module panics are isolated to their
    /// testcase and recorded as a degraded [`RunOutcome`], and whatever the
    /// testcase logged before failing still contributes (partial) coverage.
    ///
    /// # Errors
    ///
    /// Never errors; the `Result` is kept for API stability. Per-testcase
    /// failures are reported via [`TestcaseResult::outcome`].
    pub fn run_testcases(&mut self, testcases: Vec<TestcaseSpec>) -> Result<&[TestcaseResult]> {
        Ok(self.run_testcases_with(testcases, RunLimits::none()))
    }

    /// [`DftSession::run_testcases`] with per-testcase [`RunLimits`]
    /// budgets. Each testcase is simulated under `limits`; a tripped budget
    /// degrades only that testcase ([`RunOutcome::TimedOut`]) while its
    /// partial event log is still matched. Event logs of degraded testcases
    /// are matched in [`MatchMode::Lenient`] — as are healthy ones, which
    /// is indistinguishable from strict matching on a well-formed log.
    pub fn run_testcases_with(
        &mut self,
        testcases: Vec<TestcaseSpec>,
        limits: RunLimits,
    ) -> &[TestcaseResult] {
        self.run_testcases_with_threads(testcases, limits, self.config.threads)
    }

    /// [`DftSession::run_testcases_with`] with an explicit worker count
    /// for the log-matching fan-out, instead of the process-wide
    /// [`crate::thread_count`]. Results are byte-identical for every
    /// `threads` value (index-slot merge); an explicit count lets callers
    /// — the coverage-guided generator's determinism gates in particular
    /// — compare thread counts in-process without mutating `DFT_THREADS`.
    pub fn run_testcases_with_threads(
        &mut self,
        testcases: Vec<TestcaseSpec>,
        limits: RunLimits,
        threads: usize,
    ) -> &[TestcaseResult] {
        static DEGRADED: obs::Counter = obs::Counter::new("testcase.degraded");
        let entries: Vec<TestcaseResult> = match self.config.strategy {
            MatchStrategy::Streamed => {
                // Matching already happened inside the simulation pass, so
                // there is no log-analysis fan-out left to thread; the
                // `threads` knob only affects the buffered strategy (and
                // reports are byte-identical either way).
                let _ = threads;
                let mut entries = Vec::with_capacity(testcases.len());
                for tc in testcases {
                    let monitor = self.monitor_bank();
                    let cell = Arc::new(Mutex::new(Some(
                        self.automaton().cursor(MatchMode::Lenient),
                    )));
                    let outcome = stream_testcase_isolated(
                        &tc.name,
                        tc.cluster,
                        tc.duration,
                        limits,
                        self.design().interner(),
                        &cell,
                        monitor.clone(),
                    );
                    if outcome.is_degraded() {
                        DEGRADED.add(1);
                    }
                    let cursor = cell
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .expect("cursor is only harvested once");
                    let (r, bits) = {
                        let _span = obs::span("stage.match");
                        cursor.finish()
                    };
                    let verdicts = finalize_bank(monitor, tc.duration, outcome.is_degraded());
                    entries.push(TestcaseResult {
                        name: tc.name,
                        exercised: r.exercised,
                        defs_executed: r.defs_executed,
                        warnings: r.warnings,
                        outcome,
                        exercised_idx: Some(bits),
                        verdicts,
                    });
                }
                entries
            }
            MatchStrategy::Buffered => {
                let mut names = Vec::with_capacity(testcases.len());
                let mut outcomes = Vec::with_capacity(testcases.len());
                let mut events = Vec::with_capacity(testcases.len());
                let mut verdicts = Vec::with_capacity(testcases.len());
                for tc in testcases {
                    let monitor = self.monitor_bank();
                    let buffer = self.pool.pop().unwrap_or_default();
                    let (log, outcome) = simulate_testcase_isolated(
                        &tc.name,
                        tc.cluster,
                        tc.duration,
                        limits,
                        self.design().interner(),
                        buffer,
                        monitor.clone(),
                    );
                    if outcome.is_degraded() {
                        DEGRADED.add(1);
                    }
                    // Verdicts come straight off the simulation pass —
                    // they never depend on the deferred log matching, so
                    // finalize here, per testcase, exactly as the
                    // streamed branch does.
                    verdicts.push(finalize_bank(monitor, tc.duration, outcome.is_degraded()));
                    names.push(tc.name);
                    outcomes.push(outcome);
                    events.push(log);
                }
                let automaton = self.automaton();
                let results = crate::par::par_map(&events, threads, |log| {
                    automaton.analyse_with_coverage(log, MatchMode::Lenient)
                });
                for buffer in events {
                    self.recycle(buffer);
                }
                names
                    .into_iter()
                    .zip(outcomes)
                    .zip(results)
                    .zip(verdicts)
                    .map(|(((name, outcome), (r, bits)), verdicts)| TestcaseResult {
                        name,
                        exercised: r.exercised,
                        defs_executed: r.defs_executed,
                        warnings: r.warnings,
                        outcome,
                        exercised_idx: Some(bits),
                        verdicts,
                    })
                    .collect()
            }
        };
        let start = self.runs.len();
        self.runs.extend(entries);
        &self.runs[start..]
    }

    /// Runs one testcase under a retry supervisor: transient failures
    /// ([`RunOutcome::Panicked`] / [`RunOutcome::TimedOut`]) are rerun up
    /// to `policy.max_retries` times with exponential backoff and
    /// escalating budgets, salvaging full coverage from flaky runs, while
    /// deterministic failures ([`RunOutcome::Failed`]) are permanent
    /// immediately.
    ///
    /// `build_cluster` is invoked once per attempt (clusters are consumed
    /// by elaboration) with the 0-based attempt number. Failure isolation
    /// is the same as [`DftSession::run_testcases_with`] — a panicking or
    /// stalling module degrades the attempt, never the session.
    ///
    /// Exactly one run is appended to the session: the final attempt's.
    /// Discarded attempts leave no trace in the batch report, so a
    /// salvaged testcase reports byte-identically to one that never
    /// failed; when the retry budget is spent, the last degraded run (and
    /// its partial coverage) is kept.
    pub fn run_testcase_retrying(
        &mut self,
        name: &str,
        mut build_cluster: impl FnMut(u32) -> Result<Cluster>,
        duration: SimTime,
        limits: RunLimits,
        policy: &RetryPolicy,
    ) -> RetryReport {
        static RETRIES: obs::Counter = obs::Counter::new("retry.reruns");
        static SALVAGED: obs::Counter = obs::Counter::new("retry.salvaged");
        static PERMANENT: obs::Counter = obs::Counter::new("retry.permanent_failures");
        let mut attempts = Vec::new();
        let mut attempt = 0u32;
        loop {
            let eff = policy.escalate(&limits, attempt);
            let outcome = match build_cluster(attempt) {
                Ok(cluster) => {
                    let spec = TestcaseSpec::new(name, cluster, duration);
                    self.run_testcases_with(vec![spec], eff);
                    self.runs.last().expect("batch of one").outcome.clone()
                }
                Err(e) => {
                    // Nothing simulated, so nothing was appended: record a
                    // placeholder run so the batch report names the failure.
                    let outcome = RunOutcome::Failed {
                        error: e.to_string(),
                    };
                    self.runs.push(TestcaseResult {
                        name: name.to_owned(),
                        outcome: outcome.clone(),
                        ..TestcaseResult::default()
                    });
                    outcome
                }
            };
            let transient = matches!(
                outcome,
                RunOutcome::Panicked { .. } | RunOutcome::TimedOut { .. }
            );
            if transient && attempt < policy.max_retries {
                // Drop the degraded run: its partial coverage (and the
                // degradation footer) must not survive a later success.
                self.runs.truncate(self.runs.len() - 1);
                let backoff = policy.backoff_before(attempt + 1);
                attempts.push(RetryAttempt {
                    attempt,
                    outcome,
                    limits: eff,
                    backoff: Some(backoff),
                });
                RETRIES.add(1);
                if policy.sleep && backoff > Duration::ZERO {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
                continue;
            }
            attempts.push(RetryAttempt {
                attempt,
                outcome,
                limits: eff,
                backoff: None,
            });
            break;
        }
        let report = RetryReport {
            name: name.to_owned(),
            attempts,
        };
        if report.salvaged() {
            SALVAGED.add(1);
        } else if report.attempts.len() > 1 && report.permanent_failure() {
            PERMANENT.add(1);
        }
        report
    }

    /// All testcase results so far.
    pub fn runs(&self) -> &[TestcaseResult] {
        &self.runs
    }

    /// Evaluates coverage over all testcases run so far.
    pub fn coverage(&self) -> Coverage {
        Coverage::evaluate(self.static_analysis(), &self.runs)
    }

    /// Drops all recorded runs (e.g. to replay a reduced testsuite).
    pub fn clear_runs(&mut self) {
        self.runs.clear();
    }

    /// Splits off and returns every run from index `start` on, leaving
    /// the session with its first `start` runs. This is the candidate
    /// protocol of coverage-guided generation: evaluate a batch
    /// ([`DftSession::run_testcases_with_threads`]), take the appended
    /// results for fitness scoring, and [`DftSession::push_run`] back
    /// only the accepted ones — the statics never re-run.
    ///
    /// # Panics
    ///
    /// Panics if `start > self.runs().len()`.
    pub fn take_runs_from(&mut self, start: usize) -> Vec<TestcaseResult> {
        self.runs.split_off(start)
    }

    /// Appends an already-computed run (one previously returned by
    /// [`DftSession::take_runs_from`]) without re-simulating anything.
    pub fn push_run(&mut self, run: TestcaseResult) {
        self.runs.push(run);
    }

    /// Snapshot of the observability registry: per-stage wall times
    /// (`stage.schedule` / `stage.simulate` / `stage.static` /
    /// `stage.match`), reachability-cache hit/miss counts
    /// (`cfg.reach_cache.*`), kernel counters (`sim.*`) and per-testcase
    /// series (`testcase.<name>.events` / `testcase.<name>.wall`).
    ///
    /// Empty unless the process runs with `DFT_METRICS=1` (or
    /// `DFT_TRACE=1`); render with [`MetricsReport::to_text`] or
    /// [`MetricsReport::to_json`]. The registry is process-global, so
    /// concurrent sessions aggregate into the same report.
    pub fn metrics(&self) -> MetricsReport {
        MetricsReport::capture()
    }
}

/// Clears a returned event buffer so the pool hands out empty, warm
/// allocations.
fn recycled(mut buffer: Vec<CompactEvent>) -> Vec<CompactEvent> {
    buffer.clear();
    buffer
}

/// Resolves a testcase's monitor bank into verdicts: `end` is the
/// requested run duration, `degraded` whether the simulation actually
/// reached it (a truncated trace keeps observed violations but never
/// reports a pass). `None` — no assertions attached — yields no verdicts.
fn finalize_bank(bank: Option<SharedBank>, end: SimTime, degraded: bool) -> Vec<AssertionVerdict> {
    match bank {
        Some(bank) => {
            let _span = obs::span("stage.monitor");
            bank.lock()
                .unwrap_or_else(|p| p.into_inner())
                .finalize(end, degraded)
        }
        None => Vec::new(),
    }
}

/// Elaborates and simulates one testcase with instrumentation enabled,
/// recording its event count and wall time under `testcase.<name>.*`. The
/// cluster is re-keyed onto the design-wide `interner` so the recorded
/// compact events use the session's symbol ids; `buffer` is a pooled
/// allocation to record into — and it rides along in the error variant so
/// the caller can recycle it instead of leaking it from the pool.
#[allow(clippy::result_large_err)]
fn simulate_testcase(
    name: &str,
    mut cluster: Cluster,
    duration: SimTime,
    interner: &Arc<Interner>,
    buffer: Vec<CompactEvent>,
    monitor: Option<&SharedBank>,
) -> std::result::Result<Vec<CompactEvent>, (DftError, Vec<CompactEvent>)> {
    let started = obs::metrics_enabled().then(Instant::now);
    cluster.set_interner(Arc::clone(interner));
    let mut sink = CompactRecordingSink::with_buffer(Arc::clone(interner), buffer);
    let mut sim = match Simulator::new(cluster) {
        Ok(sim) => sim,
        Err(e) => return Err((e.into(), sink.events)),
    };
    let run = {
        let _span = obs::span("stage.simulate");
        match monitor {
            Some(bank) => {
                let mut monitored = MonitorSink::new(&mut sink, Arc::clone(bank));
                sim.run(duration, &mut monitored)
            }
            None => sim.run(duration, &mut sink),
        }
    };
    if let Some(t0) = started {
        obs::counter_add(&format!("testcase.{name}.events"), sink.events.len() as u64);
        obs::observe_duration(&format!("testcase.{name}.wall"), t0.elapsed());
    }
    match run {
        Ok(_) => Ok(sink.events),
        Err(e) => Err((e.into(), sink.events)),
    }
}

/// Streamed counterpart of [`simulate_testcase`]: elaborates and
/// simulates one testcase with a [`MatchingSink`] feeding `cursor`
/// event-by-event, so matching finishes the moment the simulation does
/// and no log is materialized.
fn stream_testcase(
    name: &str,
    mut cluster: Cluster,
    duration: SimTime,
    interner: &Arc<Interner>,
    cursor: &mut MatchCursor<'_>,
    monitor: Option<&SharedBank>,
) -> Result<()> {
    let started = obs::metrics_enabled().then(Instant::now);
    cluster.set_interner(Arc::clone(interner));
    let mut sim = Simulator::new(cluster)?;
    {
        let mut sink = MatchingSink::new(cursor, Arc::clone(interner));
        let _span = obs::span("stage.simulate");
        match monitor {
            Some(bank) => {
                let mut monitored = MonitorSink::new(&mut sink, Arc::clone(bank));
                sim.run(duration, &mut monitored)?;
            }
            None => {
                sim.run(duration, &mut sink)?;
            }
        }
    }
    if let Some(t0) = started {
        obs::counter_add(&format!("testcase.{name}.events"), cursor.events_fed());
        obs::observe_duration(&format!("testcase.{name}.wall"), t0.elapsed());
    }
    Ok(())
}

/// A [`CompactConsumer`] feeding a shared, mutex-guarded cursor — the
/// streaming analog of [`SharedSink`], so the partially-fed cursor
/// survives a panicking module.
struct CursorCell<'a> {
    cell: Arc<Mutex<Option<MatchCursor<'a>>>>,
}

impl CompactConsumer for CursorCell<'_> {
    fn consume(&mut self, event: &CompactEvent) {
        // Poison recovery mirrors `SharedSink`: `feed` applies one event
        // at a time and any partially-applied final event only ever
        // *under*-reports coverage for that event, matching the truncated
        // log the buffered isolated path would have recovered.
        if let Some(cursor) = self.cell.lock().unwrap_or_else(|p| p.into_inner()).as_mut() {
            cursor.feed(event);
        }
    }
}

/// Streamed counterpart of [`simulate_testcase_isolated`]: simulates one
/// testcase under `limits` with full failure isolation while feeding the
/// shared cursor in `cell`. Errors, tripped budgets and module panics
/// degrade the [`RunOutcome`]; whatever was streamed before the failure
/// already sits in the cursor as (partial) coverage.
///
/// Unwind-safety: as in [`simulate_testcase_isolated`], the closure owns
/// everything it mutates except the `Arc<Mutex<Option<MatchCursor>>>`,
/// which is fed one event at a time under the lock — an unwind can at
/// worst lose the tail of the stream (a well-formed prefix was matched),
/// never corrupt the cursor's tables.
fn stream_testcase_isolated<'a>(
    name: &str,
    mut cluster: Cluster,
    duration: SimTime,
    limits: RunLimits,
    interner: &Arc<Interner>,
    cell: &Arc<Mutex<Option<MatchCursor<'a>>>>,
    monitor: Option<SharedBank>,
) -> RunOutcome {
    let started = obs::metrics_enabled().then(Instant::now);
    cluster.set_interner(Arc::clone(interner));
    let mut consumer = CursorCell {
        cell: Arc::clone(cell),
    };
    let sink_interner = Arc::clone(interner);
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut sim = Simulator::new(cluster)?;
        let mut sink = MatchingSink::new(&mut consumer, sink_interner);
        let _span = obs::span("stage.simulate");
        // The bank crosses the unwind boundary the same way the cursor
        // does: fed one sample at a time under its mutex, so a panic can
        // at worst lose the tail of the stream — and a panicked run is
        // finalized as degraded anyway.
        match monitor {
            Some(bank) => {
                let mut monitored = MonitorSink::new(&mut sink, bank);
                sim.run_with_limits(duration, &mut monitored, &limits)?;
            }
            None => {
                sim.run_with_limits(duration, &mut sink, &limits)?;
            }
        }
        Ok::<(), DftError>(())
    }));
    let outcome = outcome_of(run);
    if let Some(t0) = started {
        let fed = cell
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .map_or(0, MatchCursor::events_fed);
        obs::counter_add(&format!("testcase.{name}.events"), fed);
        obs::observe_duration(&format!("testcase.{name}.wall"), t0.elapsed());
    }
    outcome
}

/// Maps an isolated run's `catch_unwind` result onto the degraded
/// [`RunOutcome`] taxonomy shared by both pipeline strategies.
fn outcome_of(run: std::thread::Result<std::result::Result<(), DftError>>) -> RunOutcome {
    match run {
        Ok(Ok(())) => RunOutcome::Ok,
        Ok(Err(DftError::Sim(
            e @ (TdfError::ActivationLimit { .. }
            | TdfError::EventLimit { .. }
            | TdfError::DeadlineExceeded { .. }),
        ))) => RunOutcome::TimedOut {
            reason: e.to_string(),
        },
        Ok(Err(e)) => RunOutcome::Failed {
            error: e.to_string(),
        },
        Err(payload) => RunOutcome::Panicked {
            payload: panic_payload_str(payload),
        },
    }
}

/// An [`EventSink`] appending into a shared, mutex-guarded buffer that
/// outlives the simulation — so the event log survives a panicking module.
/// Compact events are pushed as-is; legacy string events (from fault sinks
/// and hand-instrumented modules) are interned on the way in.
struct SharedSink {
    buf: Arc<Mutex<Vec<CompactEvent>>>,
    interner: Arc<Interner>,
}

impl EventSink for SharedSink {
    fn record(&mut self, event: Event) {
        let event = CompactEvent::from_event(&event, &self.interner);
        // A poisoned lock only means some other holder panicked mid-append;
        // the Vec itself is never left in a torn state (push is the only
        // mutation), so recover the guard and keep recording.
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event);
    }

    fn record_compact(&mut self, event: CompactEvent, interner: &Interner) {
        debug_assert!(
            std::ptr::eq(&*self.interner, interner),
            "compact events recorded against a foreign interner"
        );
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event);
    }
}

/// Elaborates and simulates one testcase under `limits` with full failure
/// isolation: errors, tripped budgets and module panics degrade the
/// [`RunOutcome`] instead of propagating, and whatever was logged before
/// the failure is recovered.
///
/// Unwind-safety invariant (the reason `AssertUnwindSafe` is sound here):
/// the closure *owns* everything it mutates — the cluster, the simulator
/// built from it, and its `SharedSink` — so a panic can only tear state
/// that dies with the closure. The sole data crossing the unwind boundary
/// is the `Arc<Mutex<Vec<Event>>>` event buffer, which is append-only and
/// mutated one `push` at a time under the lock; an unwind can therefore at
/// worst *truncate* the log (a shorter but well-formed prefix), never
/// corrupt an entry. No bare `&mut` borrow is captured across the boundary.
fn simulate_testcase_isolated(
    name: &str,
    mut cluster: Cluster,
    duration: SimTime,
    limits: RunLimits,
    interner: &Arc<Interner>,
    buffer: Vec<CompactEvent>,
    monitor: Option<SharedBank>,
) -> (Vec<CompactEvent>, RunOutcome) {
    let started = obs::metrics_enabled().then(Instant::now);
    cluster.set_interner(Arc::clone(interner));
    let events: Arc<Mutex<Vec<CompactEvent>>> = Arc::new(Mutex::new(recycled(buffer)));
    let shared = SharedSink {
        buf: Arc::clone(&events),
        interner: Arc::clone(interner),
    };
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut sim = Simulator::new(cluster)?;
        let mut sink = shared;
        let _span = obs::span("stage.simulate");
        match monitor {
            Some(bank) => {
                let mut monitored = MonitorSink::new(&mut sink, bank);
                sim.run_with_limits(duration, &mut monitored, &limits)?;
            }
            None => {
                sim.run_with_limits(duration, &mut sink, &limits)?;
            }
        }
        Ok::<(), DftError>(())
    }));
    let outcome = outcome_of(run);
    let log = {
        let mut guard = events.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut *guard)
    };
    if let Some(t0) = started {
        obs::counter_add(&format!("testcase.{name}.events"), log.len() as u64);
        obs::observe_duration(&format!("testcase.{name}.wall"), t0.elapsed());
    }
    (log, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::Association;
    use tdf_interp::{Interface, InterpModule, TdfModelDef};
    use tdf_sim::{FaultPlan, FaultyEvents, FnSource, Value};

    const SRC: &str = "\
void A::processing()
{
    double t = ip_in * 1000;
    double o = 0;
    if (t > 30) { o = t; }
    op_y = o;
}
void B::processing()
{
    double v = ip_x;
    op_z = v;
}";

    fn defs() -> Vec<TdfModelDef> {
        vec![
            TdfModelDef::new(
                "A",
                Interface::new()
                    .input("ip_in")
                    .output("op_y")
                    .timestep(SimTime::from_us(1)),
            ),
            TdfModelDef::new("B", Interface::new().input("ip_x").output("op_z")),
        ]
    }

    fn build_cluster(level: f64) -> (Cluster, Design) {
        let tu = minic::parse(SRC).unwrap();
        let mut cluster = Cluster::new("top");
        let src = cluster
            .add_module(Box::new(FnSource::new(
                "src",
                SimTime::from_us(1),
                move |_| Value::Double(level),
            )))
            .unwrap();
        let mut ids = Vec::new();
        for d in defs() {
            let m = InterpModule::new(&tu, &d.model, d.interface.clone()).unwrap();
            ids.push(cluster.add_module(Box::new(m)).unwrap());
        }
        cluster.connect(src, "op_out", ids[0], "ip_in").unwrap();
        cluster.connect(ids[0], "op_y", ids[1], "ip_x").unwrap();
        let design = Design::new(minic::parse(SRC).unwrap(), defs(), cluster.netlist()).unwrap();
        (cluster, design)
    }

    /// Like `build_cluster`, but module A's event stream passes through a
    /// deterministic fault tap that garbles events — the malformed-log
    /// scenario where match-mode choices become visible.
    fn build_faulty_cluster(level: f64, plan: FaultPlan) -> (Cluster, Design) {
        let tu = minic::parse(SRC).unwrap();
        let mut cluster = Cluster::new("top");
        let src = cluster
            .add_module(Box::new(FnSource::new(
                "src",
                SimTime::from_us(1),
                move |_| Value::Double(level),
            )))
            .unwrap();
        let mut ids = Vec::new();
        for (i, d) in defs().into_iter().enumerate() {
            let m = InterpModule::new(&tu, &d.model, d.interface.clone()).unwrap();
            let boxed: Box<dyn tdf_sim::TdfModule> = if i == 0 {
                Box::new(FaultyEvents::new(Box::new(m), plan.clone()))
            } else {
                Box::new(m)
            };
            ids.push(cluster.add_module(boxed).unwrap());
        }
        cluster.connect(src, "op_out", ids[0], "ip_in").unwrap();
        cluster.connect(ids[0], "op_y", ids[1], "ip_x").unwrap();
        let design = Design::new(minic::parse(SRC).unwrap(), defs(), cluster.netlist()).unwrap();
        (cluster, design)
    }

    #[test]
    fn full_pipeline_covers_expected_pairs() {
        let (cluster, design) = build_cluster(0.1); // 100 mV -> above threshold
        let mut session = DftSession::new(design).unwrap();
        assert!(!session.static_analysis().is_empty());
        session
            .run_testcase("TC1", cluster, SimTime::from_us(3))
            .unwrap();
        let cov = session.coverage();
        // (t, 3, A, 5, A) exercised.
        let idx = cov
            .associations()
            .iter()
            .position(|c| c.assoc == Association::new("t", 3, "A", 5, "A"))
            .expect("static pair exists");
        assert!(cov.is_covered(idx));
        // Cross-model Strong pair: op_y def at 6 used in B line 10.
        let cross = cov
            .associations()
            .iter()
            .position(|c| c.assoc == Association::new("op_y", 6, "A", 10, "B"))
            .expect("cluster pair exists");
        assert!(cov.is_covered(cross));
    }

    #[test]
    fn below_threshold_misses_then_branch_pair() {
        let (cluster, design) = build_cluster(0.01); // 10 mV -> then-branch never taken
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcase("TC1", cluster, SimTime::from_us(3))
            .unwrap();
        let cov = session.coverage();
        let idx = cov
            .associations()
            .iter()
            .position(|c| c.assoc == Association::new("o", 5, "A", 6, "A"))
            .expect("redefinition pair exists");
        assert!(!cov.is_covered(idx), "o = t never executed");
        assert!(!cov.uncovered().is_empty());
    }

    #[test]
    fn batch_run_matches_sequential_runs() {
        let (c1, design) = build_cluster(0.01);
        let mut seq = DftSession::new(design).unwrap();
        seq.run_testcase("TC1", c1, SimTime::from_us(3)).unwrap();
        let (c2, _) = build_cluster(0.1);
        seq.run_testcase("TC2", c2, SimTime::from_us(3)).unwrap();

        let (b1, design) = build_cluster(0.01);
        let (b2, _) = build_cluster(0.1);
        let mut batch = DftSession::new(design).unwrap();
        let appended = batch
            .run_testcases(vec![
                TestcaseSpec::new("TC1", b1, SimTime::from_us(3)),
                TestcaseSpec::new("TC2", b2, SimTime::from_us(3)),
            ])
            .unwrap();
        assert_eq!(appended.len(), 2);

        assert_eq!(seq.runs().len(), batch.runs().len());
        for (s, b) in seq.runs().iter().zip(batch.runs()) {
            assert_eq!(s.name, b.name);
            assert_eq!(s.exercised, b.exercised);
            assert_eq!(s.defs_executed, b.defs_executed);
            assert_eq!(s.warnings, b.warnings);
        }
        assert_eq!(
            crate::render_table1(&seq.coverage()),
            crate::render_table1(&batch.coverage()),
            "reports byte-identical"
        );
    }

    #[test]
    fn take_and_push_runs_preserve_reports() {
        let (c1, design) = build_cluster(0.01);
        let (c2, _) = build_cluster(0.1);
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcases(vec![
                TestcaseSpec::new("TC1", c1, SimTime::from_us(3)),
                TestcaseSpec::new("TC2", c2, SimTime::from_us(3)),
            ])
            .unwrap();
        let before = crate::render_table1(&session.coverage());

        // Candidate protocol: take everything, push it back, same report.
        let taken = session.take_runs_from(0);
        assert_eq!(taken.len(), 2);
        assert_eq!(session.runs().len(), 0);
        for run in taken {
            session.push_run(run);
        }
        assert_eq!(crate::render_table1(&session.coverage()), before);

        // Dropping the tail keeps the head intact.
        let tail = session.take_runs_from(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(session.runs().len(), 1);
        assert_eq!(session.runs()[0].name, "TC1");
    }

    #[test]
    fn assertions_evaluate_in_one_pass_across_strategies() {
        use dft_monitor::{AssertionExpr, Verdict};
        // level 0.1 -> t = 100 > 30 -> op_y = 100 from the first activation.
        let specs = vec![
            AssertionSpec::new("cap", AssertionExpr::never_above("A.op_y", 50.0)),
            AssertionSpec::new("floor", AssertionExpr::never_below("A.op_y", -1.0)),
        ];
        let mut per_strategy = Vec::new();
        for strategy in [MatchStrategy::Streamed, MatchStrategy::Buffered] {
            let (cluster, design) = build_cluster(0.1);
            let mut session = DftSession::new(design)
                .unwrap()
                .with_assertions(specs.clone());
            session.set_match_strategy(strategy);
            session
                .run_testcase("TC1", cluster, SimTime::from_us(3))
                .unwrap();
            // Coverage and verdicts both came out of the same run.
            assert!(!session.runs()[0].exercised.is_empty());
            per_strategy.push(session.runs()[0].verdicts.clone());
        }
        assert_eq!(per_strategy[0], per_strategy[1], "strategies agree");
        assert_eq!(per_strategy[0][0].name, "cap");
        assert_eq!(
            per_strategy[0][0].verdict,
            Verdict::Fails {
                first_violation_time: SimTime::ZERO
            },
            "op_y jumps to 100 at the very first activation"
        );
        assert_eq!(per_strategy[0][1].verdict, Verdict::Holds);
    }

    #[test]
    fn batch_verdicts_match_single_runs_and_degrade_to_inconclusive() {
        use dft_monitor::{AssertionExpr, Verdict};
        let specs = vec![
            AssertionSpec::new("cap", AssertionExpr::never_above("A.op_y", 50.0)),
            AssertionSpec::new("floor", AssertionExpr::never_below("A.op_y", -1.0)),
        ];
        let (c1, design) = build_cluster(0.1);
        let mut single = DftSession::new(design)
            .unwrap()
            .with_assertions(specs.clone());
        single.run_testcase("TC1", c1, SimTime::from_us(3)).unwrap();

        let (b1, design) = build_cluster(0.1);
        let mut batch = DftSession::new(design)
            .unwrap()
            .with_assertions(specs.clone());
        let _ = batch.run_testcases(vec![TestcaseSpec::new("TC1", b1, SimTime::from_us(3))]);
        assert_eq!(single.runs()[0].verdicts, batch.runs()[0].verdicts);

        // A tripped activation budget degrades the run: the latched
        // violation survives, the would-be pass is forced inconclusive.
        let (c2, design) = build_cluster(0.1);
        let mut degraded = DftSession::new(design).unwrap().with_assertions(specs);
        degraded.run_testcases_with(
            vec![TestcaseSpec::new("TC1", c2, SimTime::from_us(3))],
            RunLimits::none().with_max_activations(2),
        );
        let run = &degraded.runs()[0];
        assert!(run.outcome.is_degraded());
        assert!(run.verdicts[0].verdict.is_fail());
        assert_eq!(run.verdicts[1].verdict, Verdict::Inconclusive);
    }

    #[test]
    fn sessions_without_assertions_carry_no_verdicts() {
        let (cluster, design) = build_cluster(0.1);
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcase("TC1", cluster, SimTime::from_us(3))
            .unwrap();
        assert!(session.runs()[0].verdicts.is_empty());
        assert_eq!(crate::render_verdicts(session.runs()), "");
    }

    #[test]
    fn explicit_thread_counts_are_byte_identical() {
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let (c1, design) = build_cluster(0.01);
            let (c2, _) = build_cluster(0.1);
            let mut session = DftSession::new(design).unwrap();
            session.run_testcases_with_threads(
                vec![
                    TestcaseSpec::new("TC1", c1, SimTime::from_us(3)),
                    TestcaseSpec::new("TC2", c2, SimTime::from_us(3)),
                ],
                RunLimits::none(),
                threads,
            );
            reports.push(crate::render_table1(&session.coverage()));
        }
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn metrics_report_covers_all_pipeline_stages() {
        let was_on = obs::metrics_enabled();
        obs::set_metrics_enabled(true);

        let (cluster, design) = build_cluster(0.1);
        // Force a cold static build: with memoization on, another test's
        // build of the same design could leave the model artifacts (and
        // their warmed reachability caches) resident, and the
        // reach-cache-miss assertion below would race test order.
        let config = SessionConfig::from_env().with_incremental(false);
        let artifacts = SessionArtifacts::build_with(design, &config);
        let mut session = DftSession::from_artifacts(artifacts, config);
        session
            .run_testcase("TC_metrics_probe", cluster, SimTime::from_us(3))
            .unwrap();
        let report = session.metrics();
        obs::set_metrics_enabled(was_on);

        assert!(!report.is_empty());
        for stage in [
            "stage.schedule",
            "stage.simulate",
            "stage.static",
            "stage.match",
        ] {
            let t = report
                .timer(stage)
                .unwrap_or_else(|| panic!("{stage} missing"));
            assert!(t.count >= 1, "{stage} recorded no spans");
        }
        assert!(
            report.counter("testcase.TC_metrics_probe.events") > 0,
            "per-testcase event count missing"
        );
        assert!(
            report.timer("testcase.TC_metrics_probe.wall").is_some(),
            "per-testcase wall timer missing"
        );
        // Static analysis queries reachability repeatedly per Cfg: at least
        // one closure build (miss) and at least one reuse (hit).
        assert!(report.counter("cfg.reach_cache.miss") >= 1);
        assert!(report.counter("cfg.reach_cache.hit") >= 1);
        assert!(report.counter("match.events") > 0);
        // Both renderings include every stage row.
        let (text, json) = (report.to_text(), report.to_json());
        assert!(text.contains("stage.simulate"), "{text}");
        assert!(json.contains("\"stage.simulate\""), "{json}");
    }

    #[test]
    fn failing_testcases_do_not_leak_pooled_buffers() {
        let (warm, design) = build_cluster(0.1);
        let mut session = DftSession::new(design).unwrap();
        session.set_match_strategy(MatchStrategy::Buffered);
        // Seed the pool with one warm buffer.
        session
            .run_testcase("warm", warm, SimTime::from_us(3))
            .unwrap();
        assert_eq!(session.pool_len(), 1);
        // Elaboration of a timestep-less cluster fails before any event
        // is recorded; the popped buffer must return to the pool anyway.
        for i in 0..4 {
            let tu = minic::parse(SRC).unwrap();
            let mut broken = Cluster::new("broken");
            let b =
                InterpModule::new(&tu, "B", Interface::new().input("ip_x").output("op_z")).unwrap();
            broken.add_module(Box::new(b)).unwrap();
            let run = session.run_testcase(&format!("bad{i}"), broken, SimTime::from_us(1));
            assert!(run.is_err(), "empty cluster must not elaborate");
            assert_eq!(
                session.pool_len(),
                1,
                "error path must recycle the pooled buffer"
            );
        }
    }

    #[test]
    fn single_and_batch_of_one_agree_on_malformed_logs() {
        // Ghost models/vars and warped timestamps in the event stream:
        // before the mode unification, a single run (Strict) reported
        // differently from a batch of one (Lenient) on exactly this input.
        let plan = FaultPlan::new().with_seed(11).with_corrupt_events(0.5);
        for strategy in [MatchStrategy::Streamed, MatchStrategy::Buffered] {
            let (c_single, design) = build_faulty_cluster(0.1, plan.clone());
            let mut single = DftSession::new(design).unwrap();
            single.set_match_strategy(strategy);
            single
                .run_testcase("TC", c_single, SimTime::from_us(5))
                .unwrap();

            let (c_batch, design) = build_faulty_cluster(0.1, plan.clone());
            let mut batch = DftSession::new(design).unwrap();
            batch.set_match_strategy(strategy);
            batch
                .run_testcases(vec![TestcaseSpec::new("TC", c_batch, SimTime::from_us(5))])
                .unwrap();

            let s = &single.runs()[0];
            let b = &batch.runs()[0];
            assert_eq!(s.exercised, b.exercised, "{strategy:?}");
            assert_eq!(s.defs_executed, b.defs_executed, "{strategy:?}");
            assert_eq!(s.warnings, b.warnings, "{strategy:?}");
            assert_eq!(
                crate::render_table1(&single.coverage()),
                crate::render_table1(&batch.coverage()),
                "{strategy:?}: batch-of-one must report like a single run"
            );
        }
    }

    #[test]
    fn pool_is_bounded_after_large_batches() {
        let (_c, design) = build_cluster(0.1);
        let mut session = DftSession::new(design).unwrap();
        session.set_match_strategy(MatchStrategy::Buffered);
        let specs: Vec<TestcaseSpec> = (0..MAX_POOLED_BUFFERS + 4)
            .map(|i| {
                let (c, _) = build_cluster(0.1);
                TestcaseSpec::new(format!("TC{i}"), c, SimTime::from_us(3))
            })
            .collect();
        session.run_testcases(specs).unwrap();
        assert!(
            session.pool_len() <= MAX_POOLED_BUFFERS,
            "pool grew to {} (cap {MAX_POOLED_BUFFERS})",
            session.pool_len()
        );
    }

    #[test]
    fn recycle_enforces_count_and_capacity_bounds() {
        let (_c, design) = build_cluster(0.1);
        let mut session = DftSession::new(design).unwrap();
        // An over-capacity buffer is freed, not pooled.
        session.recycle(Vec::with_capacity(MAX_POOLED_EVENTS + 1));
        assert_eq!(session.pool_len(), 0);
        // Surplus buffers beyond the count cap are dropped.
        for _ in 0..MAX_POOLED_BUFFERS + 5 {
            session.recycle(Vec::with_capacity(16));
        }
        assert_eq!(session.pool_len(), MAX_POOLED_BUFFERS);
    }

    #[test]
    fn streamed_and_buffered_strategies_agree() {
        let mut reports = Vec::new();
        for strategy in [MatchStrategy::Streamed, MatchStrategy::Buffered] {
            let (c1, design) = build_cluster(0.01);
            let (c2, _) = build_cluster(0.1);
            let mut session = DftSession::new(design).unwrap();
            session.set_match_strategy(strategy);
            assert_eq!(session.match_strategy(), strategy);
            session
                .run_testcase("TC1", c1, SimTime::from_us(3))
                .unwrap();
            session
                .run_testcases(vec![TestcaseSpec::new("TC2", c2, SimTime::from_us(3))])
                .unwrap();
            if strategy == MatchStrategy::Streamed {
                assert_eq!(
                    session.pool_len(),
                    0,
                    "streamed runs must not materialize pooled logs"
                );
            }
            reports.push(crate::render_table1(&session.coverage()));
        }
        assert_eq!(reports[0], reports[1], "strategies must be byte-identical");
    }

    #[test]
    fn adding_testcases_grows_coverage_monotonically() {
        let (c1, design) = build_cluster(0.01);
        let mut session = DftSession::new(design).unwrap();
        session
            .run_testcase("TC1", c1, SimTime::from_us(3))
            .unwrap();
        let before = session.coverage().exercised_count();
        let (c2, _) = build_cluster(0.1);
        session
            .run_testcase("TC2", c2, SimTime::from_us(3))
            .unwrap();
        let after = session.coverage().exercised_count();
        assert!(
            after > before,
            "TC2 exercises the hot branch: {before} -> {after}"
        );
        assert_eq!(session.runs().len(), 2);
        session.clear_runs();
        assert_eq!(session.coverage().exercised_count(), 0);
    }
}

//! Stage 3 of Fig. 3: coverage evaluation — combining the static
//! association set with per-testcase exercised sets into a coverage result
//! and the test-adequacy criteria of §IV-B.2.
//!
//! This stage only sees exercised [`BitSet`]s, so it is agnostic to how
//! stage 2 produced them — buffered log analysis or the streamed
//! [`crate::MatchCursor`] yield bit-identical inputs here.

use std::collections::HashSet;

use dataflow::BitSet;
use dft_monitor::AssertionVerdict;

use crate::assoc::{Association, Classification, ClassifiedAssoc};
use crate::dynamic::DynamicWarning;
use crate::statics::StaticAnalysis;

/// The test-adequacy criteria of §IV-B.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// All Strong associations covered.
    AllStrong,
    /// All Firm associations covered.
    AllFirm,
    /// All PFirm associations covered.
    AllPFirm,
    /// All PWeak associations covered.
    AllPWeak,
    /// At least one association covered per definition.
    AllDefs,
    /// Every association covered once — the classical all-uses criterion
    /// (each definition reaches each of its uses).
    AllUses,
    /// All of the above.
    AllDataflow,
}

impl std::fmt::Display for Criterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Criterion::AllStrong => "all-Strong",
            Criterion::AllFirm => "all-Firm",
            Criterion::AllPFirm => "all-PFirm",
            Criterion::AllPWeak => "all-PWeak",
            Criterion::AllDefs => "all-defs",
            Criterion::AllUses => "all-uses",
            Criterion::AllDataflow => "all-dataflow",
        };
        write!(f, "{s}")
    }
}

/// How one testcase's simulation ended. Anything but [`RunOutcome::Ok`]
/// means the event log is partial: whatever was recorded before the
/// failure still contributes to coverage, and reports annotate the
/// degradation ([`crate::render_table1`] appends a footer naming the
/// degraded testcases).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum RunOutcome {
    /// Simulation covered the full requested duration.
    #[default]
    Ok,
    /// Elaboration or simulation returned an error.
    Failed {
        /// The rendered error.
        error: String,
    },
    /// A [`tdf_sim::RunLimits`] budget tripped (activations, events or
    /// wall clock) before the duration was covered.
    TimedOut {
        /// Which budget tripped, rendered.
        reason: String,
    },
    /// A module panicked mid-simulation; the panic was caught and
    /// isolated to this testcase.
    Panicked {
        /// The panic payload (message), when it was a string.
        payload: String,
    },
}

impl RunOutcome {
    /// True for every outcome except [`RunOutcome::Ok`].
    pub fn is_degraded(&self) -> bool {
        !matches!(self, RunOutcome::Ok)
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Ok => write!(f, "ok"),
            RunOutcome::Failed { error } => write!(f, "failed: {error}"),
            RunOutcome::TimedOut { reason } => write!(f, "timed out: {reason}"),
            RunOutcome::Panicked { payload } => write!(f, "panicked: {payload}"),
        }
    }
}

/// One executed testcase: its name and what it exercised.
#[derive(Debug, Clone, Default)]
pub struct TestcaseResult {
    /// Testcase name (e.g. `TC1`).
    pub name: String,
    /// Associations exercised by this testcase (static or not).
    pub exercised: HashSet<Association>,
    /// Definition sites `(model, var, line)` that executed at least once.
    pub defs_executed: HashSet<(String, String, u32)>,
    /// Runtime warnings raised during the run.
    pub warnings: Vec<DynamicWarning>,
    /// How the simulation ended; a degraded outcome means `exercised` was
    /// computed from a partial event log.
    pub outcome: RunOutcome,
    /// Exercised static associations as a bitset over
    /// [`StaticAnalysis::associations`] indices, when the run was matched
    /// by a [`MatchAutomaton`](crate::MatchAutomaton). Must agree with
    /// `exercised` restricted to the static set; [`Coverage::evaluate`]
    /// uses it to skip the per-association hash probes. `None` (e.g. a
    /// hand-built result) falls back to probing `exercised`.
    pub exercised_idx: Option<BitSet>,
    /// Per-assertion verdicts, in spec order, when the session ran with
    /// assertions attached ([`DftSession::with_assertions`]); empty
    /// otherwise. Degraded runs keep observed `Fails` verdicts but report
    /// everything else `Inconclusive`.
    ///
    /// [`DftSession::with_assertions`]: crate::DftSession::with_assertions
    pub verdicts: Vec<AssertionVerdict>,
}

/// Why an uncovered association was missed (see
/// [`Coverage::diagnose_uncovered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncoveredReason {
    /// No testcase ever executed the definition statement — steer control
    /// flow to the def first (or the def is dead/infeasible code).
    DefinitionNeverExecuted,
    /// The definition executed, but its value never flowed to this use —
    /// a path/redefinition problem between def and use.
    FlowNotObserved,
}

impl std::fmt::Display for UncoveredReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UncoveredReason::DefinitionNeverExecuted => {
                write!(f, "definition never executed")
            }
            UncoveredReason::FlowNotObserved => write!(f, "flow not observed"),
        }
    }
}

/// The combined coverage result over a testsuite.
#[derive(Debug, Clone)]
pub struct Coverage {
    associations: Vec<ClassifiedAssoc>,
    /// One bitset per testcase over association indices: bit `i` of
    /// `covered[t]` means association `i` was exercised by testcase `t`.
    covered: Vec<BitSet>,
    /// Union of all testcase columns (bit `i`: covered by any testcase).
    any: BitSet,
    tc_names: Vec<String>,
    /// Per-testcase run outcomes, column order (same indexing as
    /// `tc_names`).
    outcomes: Vec<RunOutcome>,
}

impl Coverage {
    /// Evaluates `runs` against the static association set.
    ///
    /// Exercised associations that the static stage did not predict (static
    /// analysis is an over- *and* under-approximation at the boundaries,
    /// e.g. member initial values) are ignored, as in the paper's tool.
    /// Runs carrying a valid [`TestcaseResult::exercised_idx`] bitset are
    /// adopted wholesale; the rest are probed association by association.
    pub fn evaluate(statics: &StaticAnalysis, runs: &[TestcaseResult]) -> Coverage {
        let associations = statics.associations.clone();
        let n = associations.len();
        let covered: Vec<BitSet> = runs
            .iter()
            .map(|r| match &r.exercised_idx {
                Some(bits) if bits.capacity() == n => bits.clone(),
                _ => {
                    let mut bits = BitSet::new(n);
                    for (i, c) in associations.iter().enumerate() {
                        if r.exercised.contains(&c.assoc) {
                            bits.insert(i);
                        }
                    }
                    bits
                }
            })
            .collect();
        let mut any = BitSet::new(n);
        for bits in &covered {
            any.union_with(bits);
        }
        Coverage {
            associations,
            covered,
            any,
            tc_names: runs.iter().map(|r| r.name.clone()).collect(),
            outcomes: runs.iter().map(|r| r.outcome.clone()).collect(),
        }
    }

    /// The classified associations, report order.
    pub fn associations(&self) -> &[ClassifiedAssoc] {
        &self.associations
    }

    /// Testcase names, column order.
    pub fn testcase_names(&self) -> &[String] {
        &self.tc_names
    }

    /// Per-testcase run outcomes, column order (parallel to
    /// [`Coverage::testcase_names`]).
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }

    /// `(name, outcome)` of every testcase that did not finish cleanly —
    /// their coverage columns were computed from partial event logs.
    pub fn degraded(&self) -> Vec<(&str, &RunOutcome)> {
        self.tc_names
            .iter()
            .zip(&self.outcomes)
            .filter(|(_, o)| o.is_degraded())
            .map(|(n, o)| (n.as_str(), o))
            .collect()
    }

    /// Whether association `i` was exercised by any testcase.
    pub fn is_covered(&self, i: usize) -> bool {
        assert!(
            i < self.associations.len(),
            "association index out of range"
        );
        self.any.contains(i)
    }

    /// Whether association `i` was exercised by testcase `t`.
    pub fn is_covered_by(&self, i: usize, t: usize) -> bool {
        assert!(
            i < self.associations.len(),
            "association index out of range"
        );
        self.covered[t].contains(i)
    }

    /// `(covered, total)` for one classification.
    pub fn class_ratio(&self, class: Classification) -> (usize, usize) {
        let mut covered = 0;
        let mut total = 0;
        for (i, c) in self.associations.iter().enumerate() {
            if c.class == class {
                total += 1;
                if self.is_covered(i) {
                    covered += 1;
                }
            }
        }
        (covered, total)
    }

    /// Coverage percentage of one classification (`None` when the class has
    /// no associations, like PFirm in the paper's window lifter study).
    pub fn class_percent(&self, class: Classification) -> Option<f64> {
        let (c, t) = self.class_ratio(class);
        if t == 0 {
            None
        } else {
            Some(100.0 * c as f64 / t as f64)
        }
    }

    /// `(covered, total)` over all associations.
    pub fn total_ratio(&self) -> (usize, usize) {
        let covered = (0..self.associations.len())
            .filter(|&i| self.is_covered(i))
            .count();
        (covered, self.associations.len())
    }

    /// Overall coverage percentage.
    pub fn total_percent(&self) -> f64 {
        let (c, t) = self.total_ratio();
        if t == 0 {
            100.0
        } else {
            100.0 * c as f64 / t as f64
        }
    }

    /// Number of distinct static associations exercised (the paper's
    /// "Dynamic (#)" column of Table II).
    pub fn exercised_count(&self) -> usize {
        self.total_ratio().0
    }

    /// Associations exercised by `self` but not by `earlier` — the
    /// newly-exercised set a refinement iteration contributed.
    ///
    /// Both results must come from the same static stage (the association
    /// vectors are compared index-wise, never rescanned per element), so
    /// fitness scoring over many candidate coverages is `O(associations)`
    /// per candidate instead of `O(associations²)`.
    ///
    /// # Panics
    ///
    /// Panics if the two coverages have different static association sets.
    pub fn delta(&self, earlier: &Coverage) -> Vec<&ClassifiedAssoc> {
        assert_eq!(
            self.associations.len(),
            earlier.associations.len(),
            "delta requires coverages over the same static analysis"
        );
        debug_assert!(self
            .associations
            .iter()
            .zip(&earlier.associations)
            .all(|(a, b)| a.assoc == b.assoc));
        self.associations
            .iter()
            .enumerate()
            .filter(|(i, _)| self.is_covered(*i) && !earlier.is_covered(*i))
            .map(|(_, c)| c)
            .collect()
    }

    /// Associations never exercised — the work list guiding testcase
    /// addition ("tests addition" loop of Fig. 3).
    pub fn uncovered(&self) -> Vec<&ClassifiedAssoc> {
        self.associations
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.is_covered(*i))
            .map(|(_, c)| c)
            .collect()
    }

    /// Whether `criterion` is satisfied. Class criteria are vacuously
    /// satisfied when the class is empty.
    pub fn satisfies(&self, criterion: Criterion) -> bool {
        match criterion {
            Criterion::AllStrong => self.class_satisfied(Classification::Strong),
            Criterion::AllFirm => self.class_satisfied(Classification::Firm),
            Criterion::AllPFirm => self.class_satisfied(Classification::PFirm),
            Criterion::AllPWeak => self.class_satisfied(Classification::PWeak),
            Criterion::AllDefs => self.all_defs_satisfied(),
            Criterion::AllUses => {
                let (c, t) = self.total_ratio();
                c == t
            }
            Criterion::AllDataflow => {
                Classification::ALL
                    .into_iter()
                    .all(|c| self.class_satisfied(c))
                    && self.all_defs_satisfied()
            }
        }
    }

    fn class_satisfied(&self, class: Classification) -> bool {
        let (c, t) = self.class_ratio(class);
        c == t
    }

    /// Triages every uncovered association per the paper's §IV-A: "an
    /// association can be missed due to 1) the testsuite is insufficient to
    /// cover it ... 2) the association is infeasible". The runtime def log
    /// splits the first case further: if the definition never executed, a
    /// testcase steering control flow to the *def* is needed; if it did,
    /// the def→use flow itself was never observed.
    pub fn diagnose_uncovered<'a>(
        &'a self,
        runs: &[TestcaseResult],
    ) -> Vec<(&'a ClassifiedAssoc, UncoveredReason)> {
        self.associations
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.is_covered(*i))
            .map(|(_, c)| {
                let coord = (
                    c.assoc.def_model.clone(),
                    c.assoc.var.clone(),
                    c.assoc.def_line,
                );
                let def_ran = runs.iter().any(|r| r.defs_executed.contains(&coord));
                let reason = if def_ran {
                    UncoveredReason::FlowNotObserved
                } else {
                    UncoveredReason::DefinitionNeverExecuted
                };
                (c, reason)
            })
            .collect()
    }

    fn all_defs_satisfied(&self) -> bool {
        let mut coords: Vec<(&str, u32, &str)> = Vec::new();
        for c in &self.associations {
            let coord = c.assoc.def_coord();
            if !coords.contains(&coord) {
                coords.push(coord);
            }
        }
        coords.iter().all(|coord| {
            self.associations
                .iter()
                .enumerate()
                .any(|(i, c)| c.assoc.def_coord() == *coord && self.is_covered(i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn statics_with(assocs: Vec<(Association, Classification)>) -> StaticAnalysis {
        StaticAnalysis {
            associations: assocs
                .into_iter()
                .map(|(assoc, class)| ClassifiedAssoc { assoc, class })
                .collect(),
            lints: Vec::new(),
            subsumption: Default::default(),
        }
    }

    fn run(name: &str, exercised: &[Association]) -> TestcaseResult {
        TestcaseResult {
            name: name.into(),
            exercised: exercised.iter().cloned().collect(),
            ..TestcaseResult::default()
        }
    }

    fn a(var: &str, d: u32, u: u32) -> Association {
        Association::new(var, d, "M", u, "M")
    }

    #[test]
    fn ratios_and_percentages() {
        let st = statics_with(vec![
            (a("x", 1, 2), Classification::Strong),
            (a("x", 1, 3), Classification::Strong),
            (a("y", 4, 5), Classification::Firm),
        ]);
        let cov = Coverage::evaluate(&st, &[run("TC1", &[a("x", 1, 2)])]);
        assert_eq!(cov.class_ratio(Classification::Strong), (1, 2));
        assert_eq!(cov.class_ratio(Classification::Firm), (0, 1));
        assert_eq!(cov.class_percent(Classification::Strong), Some(50.0));
        assert_eq!(cov.class_percent(Classification::PWeak), None);
        assert_eq!(cov.total_ratio(), (1, 3));
        assert_eq!(cov.exercised_count(), 1);
        assert_eq!(cov.uncovered().len(), 2);
    }

    #[test]
    fn multiple_testcases_union() {
        let st = statics_with(vec![
            (a("x", 1, 2), Classification::Strong),
            (a("y", 4, 5), Classification::Firm),
        ]);
        let cov = Coverage::evaluate(
            &st,
            &[run("TC1", &[a("x", 1, 2)]), run("TC2", &[a("y", 4, 5)])],
        );
        assert!(cov.is_covered(0) && cov.is_covered(1));
        assert!(cov.is_covered_by(0, 0) && !cov.is_covered_by(0, 1));
        assert!(cov.satisfies(Criterion::AllStrong));
        assert!(cov.satisfies(Criterion::AllFirm));
        assert!(cov.satisfies(Criterion::AllDataflow));
        assert_eq!(
            cov.testcase_names(),
            &["TC1".to_string(), "TC2".to_string()]
        );
    }

    #[test]
    fn exercised_outside_static_set_ignored() {
        let st = statics_with(vec![(a("x", 1, 2), Classification::Strong)]);
        let cov = Coverage::evaluate(&st, &[run("TC1", &[a("ghost", 9, 9)])]);
        assert_eq!(cov.total_ratio(), (0, 1));
    }

    #[test]
    fn all_defs_requires_one_use_per_def() {
        let st = statics_with(vec![
            (a("x", 1, 2), Classification::Strong),
            (a("x", 1, 3), Classification::Strong),
            (a("x", 7, 8), Classification::Strong),
        ]);
        // Covering one use of def@1 but nothing of def@7.
        let cov = Coverage::evaluate(&st, &[run("TC1", &[a("x", 1, 3)])]);
        assert!(!cov.satisfies(Criterion::AllDefs));
        let cov2 = Coverage::evaluate(&st, &[run("TC1", &[a("x", 1, 3), a("x", 7, 8)])]);
        assert!(cov2.satisfies(Criterion::AllDefs));
        assert!(
            !cov2.satisfies(Criterion::AllStrong),
            "x@1->2 still missing"
        );
        assert!(!cov2.satisfies(Criterion::AllDataflow));
    }

    #[test]
    fn empty_class_is_vacuously_satisfied() {
        let st = statics_with(vec![(a("x", 1, 2), Classification::Strong)]);
        let cov = Coverage::evaluate(&st, &[run("TC1", &[a("x", 1, 2)])]);
        assert!(cov.satisfies(Criterion::AllPFirm));
        assert!(cov.satisfies(Criterion::AllPWeak));
        assert!(cov.satisfies(Criterion::AllDataflow));
    }

    #[test]
    fn delta_agrees_with_exercised_count() {
        let st = statics_with(vec![
            (a("x", 1, 2), Classification::Strong),
            (a("x", 1, 3), Classification::Strong),
            (a("y", 4, 5), Classification::Firm),
        ]);
        let earlier = Coverage::evaluate(&st, &[run("TC1", &[a("x", 1, 2)])]);
        let later = Coverage::evaluate(
            &st,
            &[
                run("TC1", &[a("x", 1, 2)]),
                run("TC2", &[a("x", 1, 3), a("y", 4, 5)]),
            ],
        );
        let delta = later.delta(&earlier);
        // Pinned against exercised_count(): a superset run's delta length
        // is exactly the exercised-count difference.
        assert_eq!(
            delta.len(),
            later.exercised_count() - earlier.exercised_count()
        );
        let names: Vec<String> = delta.iter().map(|c| c.assoc.to_string()).collect();
        assert_eq!(names.len(), 2);
        assert!(delta.iter().all(|c| {
            let i = later
                .associations()
                .iter()
                .position(|x| x.assoc == c.assoc)
                .unwrap();
            later.is_covered(i) && !earlier.is_covered(i)
        }));
        // Identical coverages have an empty delta.
        assert!(later.delta(&later).is_empty());
        assert!(earlier.delta(&later).is_empty(), "no regression possible");
    }

    #[test]
    #[should_panic]
    fn delta_rejects_mismatched_static_sets() {
        let st1 = statics_with(vec![(a("x", 1, 2), Classification::Strong)]);
        let st2 = statics_with(vec![
            (a("x", 1, 2), Classification::Strong),
            (a("y", 4, 5), Classification::Firm),
        ]);
        let c1 = Coverage::evaluate(&st1, &[]);
        let c2 = Coverage::evaluate(&st2, &[]);
        let _ = c2.delta(&c1);
    }

    #[test]
    fn criterion_display() {
        assert_eq!(Criterion::AllDataflow.to_string(), "all-dataflow");
        assert_eq!(Criterion::AllPFirm.to_string(), "all-PFirm");
    }

    #[test]
    fn empty_static_set_is_fully_covered() {
        let st = statics_with(vec![]);
        let cov = Coverage::evaluate(&st, &[]);
        assert_eq!(cov.total_percent(), 100.0);
        assert!(cov.satisfies(Criterion::AllDataflow));
    }
}

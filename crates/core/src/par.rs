//! Deterministic fan-out over `std::thread::scope` for the per-model and
//! per-testcase stages of the pipeline. No work-stealing, no extra
//! dependencies: the items are split into contiguous chunks, one scoped
//! worker per chunk, and every result lands in the slot of its input index
//! — so the merged output order is identical to the sequential one
//! regardless of thread count or scheduling.

/// Worker count for the parallel pipeline stages: the `DFT_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism. `DFT_THREADS=1` forces the sequential
/// path (useful for timing baselines and for byte-stability checks).
pub fn thread_count() -> usize {
    match std::env::var("DFT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning the
/// results in input order.
pub(crate) fn par_map<'a, T, R, F>(items: &'a [T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        for (chunk_items, chunk_slots) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in chunk_items.iter().zip(chunk_slots) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every chunk worker fills its slots"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |&i| i * i), expected);
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}

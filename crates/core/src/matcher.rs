//! A prebuilt match automaton over interned symbols — the fast path of the
//! dynamic analysis.
//!
//! [`analyse_events_with_mode`](crate::analyse_events_with_mode) re-derives
//! everything it needs (per-model vocabularies, member seeds, string-keyed
//! last-def tables) from the [`Design`] on every call and hashes two heap
//! `String`s per event. A [`MatchAutomaton`] hoists all of that into dense
//! tables indexed by the design-wide interned ids
//! ([`Sym`](tdf_sim::Sym)) once per session:
//!
//! * `model_row` maps a model symbol to a compact row id; per-row tables
//!   hold the start line, the lenient-mode vocabulary, and the set of input
//!   ports (the only [`VarKind`](tdf_interp::VarKind) distinction matching
//!   cares about);
//! * `assoc_bits` maps a fully-interned association key straight to its
//!   index in [`StaticAnalysis::associations`], so coverage is a bitset OR
//!   instead of a `HashSet<Association>` probe.
//!
//! Per-event work is then two array lookups plus integer-keyed set
//! operations; `String`s are only materialised on the *first* occurrence of
//! a site (warnings, `defs_executed`, `exercised`). Results are
//! byte-identical to the legacy matcher — the equivalence is enforced by
//! the unit tests below and by `tests/match_equiv.rs`.
//!
//! The automaton is immutable after construction ([`Sync`]), so one
//! instance is shared read-only across all `DFT_THREADS` workers; per-log
//! mutable state lives on the worker's stack.
//!
//! Symbols interned *after* construction (fault-injected ghost names) are
//! `>= frozen` and deliberately fall off every dense table: they are
//! unknown models / out-of-vocabulary variables, exactly as the legacy
//! matcher classifies never-declared strings.

use std::collections::HashSet;
use std::sync::Arc;

use dataflow::{BitSet, Cfg};
use tdf_interp::VarKind;
use tdf_sim::{CompactEvent, EventKind, Interner, ProvId, Sym};

use crate::assoc::Association;
use crate::design::Design;
use crate::dynamic::{DynamicResult, DynamicWarning, MatchMode};
use crate::fx::{FxHashMap, FxHashSet};
use crate::statics::StaticAnalysis;

/// Which association rows a [`MatchAutomaton`] tracks on its hot path.
///
/// Either way the raw results are byte-identical: with [`Reduced`]
/// tracking, the bits of subsumed associations are reconstructed exactly
/// at [`MatchCursor::finish`] by probing the seen-pair set the cursor
/// maintains for *every* first-seen key — the dynamic probe does not
/// trust the static subsumption relation, so fault-injected or truncated
/// logs cannot produce divergent coverage.
///
/// [`Reduced`]: Tracking::Reduced
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tracking {
    /// Every association has a hot-path row (pre-subsumption behaviour).
    Full,
    /// Only the unsubsumed frontier is tracked per event; dropped bits
    /// are reconstructed at finish time.
    Reduced,
}

/// Whether subsumption-reduced tracking is enabled (the default).
/// `DFT_SUBSUME=0` / `false` / `off` opts out, mirroring `DFT_STREAM`.
pub fn subsume_enabled() -> bool {
    !matches!(
        std::env::var("DFT_SUBSUME"),
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off")
    )
}

/// Fully-interned association key: `(var, def_line, def_model, use_line,
/// use_model)`.
type AssocKey = (u32, u32, u32, u32, u32);

/// Sentinel for "this symbol is not a known model".
const NO_ROW: u32 = u32::MAX;

/// Sentinel for "no pending definition" in the dense last-def table.
const NO_DEF: u32 = u32::MAX;

/// Precomputed matching tables for one design + static analysis (see the
/// module docs). Build once per [`DftSession`](crate::DftSession); share
/// by reference across worker threads.
#[derive(Debug)]
pub struct MatchAutomaton {
    interner: Arc<Interner>,
    /// Number of interned names at build time. Symbols `>= frozen` were
    /// interned later (runtime ghosts) and are never known/in-vocabulary.
    frozen: usize,
    /// `Sym -> row` for every known model (declared interface, netlist
    /// module, or the cluster itself); `NO_ROW` otherwise.
    model_row: Vec<u32>,
    n_rows: usize,
    /// `processing()` declaration line per row (0 for sourceless models) —
    /// the pseudo-definition site of externally-driven input ports.
    row_start_line: Vec<u32>,
    /// Whether the row's model has a declared interface (and therefore a
    /// lenient-mode vocabulary entry).
    row_has_vocab: Vec<bool>,
    /// Per-row vocabulary as a bitset over name symbols (< frozen).
    row_vocab: Vec<BitSet>,
    /// Per-row input-port names as a bitset over name symbols.
    row_inport: Vec<BitSet>,
    /// `(row, var_sym, start_line)` seeds for elaboration-initialised
    /// members, in declaration order (later duplicates overwrite).
    member_seeds: Vec<(u32, u32, u32)>,
    /// Fully-interned association key -> indices into
    /// [`StaticAnalysis::associations`].
    assoc_bits: FxHashMap<AssocKey, Vec<u32>>,
    /// Associations left out of `assoc_bits` under [`Tracking::Reduced`]:
    /// their bits are reconstructed at finish time by probing the
    /// seen-pair set with the stored key.
    dropped_keys: Vec<(AssocKey, u32)>,
    n_assocs: usize,
}

/// Per-log mutable matching state — everything integer-keyed. Lives on the
/// calling worker's stack so the automaton itself stays shared and
/// immutable.
#[derive(Debug)]
struct LogState {
    /// Dense `row * frozen + var_sym -> last def line` (`NO_DEF` = none).
    last_def: Vec<u32>,
    /// Overflow last-def entries: unknown models (strict mode) and ghost
    /// variable symbols `>= frozen`.
    last_def_extra: FxHashMap<(u32, u32), u32>,
    /// Per-row latest observed timestamp (lenient mode).
    last_time: Vec<Option<tdf_sim::SimTime>>,
    /// Once-per-site gates, mirroring the legacy warning sets.
    warned: FxHashSet<(u32, u32, u32)>,
    warned_models: FxHashSet<u32>,
    warned_times: FxHashSet<u32>,
    warned_vars: FxHashSet<(u32, u32)>,
    /// First-occurrence gates for the materialised outputs.
    seen_def: FxHashSet<(u32, u32, u32)>,
    seen_pair: FxHashSet<AssocKey>,
    /// Provenance ids resolved once per log.
    prov_cache: FxHashMap<u32, (Sym, u32, Sym)>,
}

impl MatchAutomaton {
    /// Builds the automaton for `design` + `statics` with the tracking
    /// policy taken from the environment ([`subsume_enabled`]).
    pub fn new(design: &Design, statics: &StaticAnalysis) -> MatchAutomaton {
        let tracking = if subsume_enabled() {
            Tracking::Reduced
        } else {
            Tracking::Full
        };
        Self::with_tracking(design, statics, tracking)
    }

    /// Builds the automaton for `design` + `statics` with an explicit
    /// [`Tracking`] policy, interning every name either can mention and
    /// freezing the id space.
    pub fn with_tracking(
        design: &Design,
        statics: &StaticAnalysis,
        tracking: Tracking,
    ) -> MatchAutomaton {
        let interner = design.interner().clone();

        // Defensively intern everything the tables index by, so every
        // "known" name is guaranteed a stable id below `frozen`. Design
        // construction already interned declarations; re-interning is an
        // idempotent lookup.
        interner.intern(&design.netlist().cluster);
        for m in &design.netlist().modules {
            interner.intern(&m.name);
            for p in m.in_ports.iter().chain(&m.out_ports) {
                interner.intern(p);
            }
        }
        for def in design.models() {
            interner.intern(&def.model);
            for p in def.interface.inputs.iter().chain(&def.interface.outputs) {
                interner.intern(&p.name);
            }
            for (member, _) in &def.interface.members {
                interner.intern(member);
            }
            if let Some(f) = design.tu().processing(&def.model) {
                let cfg = Cfg::from_function(f);
                for node in cfg.nodes() {
                    for d in &node.def_use.defs {
                        interner.intern(&d.name);
                    }
                    for u in &node.def_use.uses {
                        interner.intern(&u.name);
                    }
                }
            }
        }
        for ca in &statics.associations {
            interner.intern(&ca.assoc.var);
            interner.intern(&ca.assoc.def_model);
            interner.intern(&ca.assoc.use_model);
        }
        let frozen = interner.len();

        // Rows: one per known model, in declared-then-netlist-then-cluster
        // order (the order is irrelevant to results; only membership is).
        let mut model_row = vec![NO_ROW; frozen];
        let mut row_names: Vec<Sym> = Vec::new();
        let mut add_row = |sym: Sym| {
            let slot = &mut model_row[sym.0 as usize];
            if *slot == NO_ROW {
                *slot = row_names.len() as u32;
                row_names.push(sym);
            }
        };
        for def in design.models() {
            add_row(interner.intern(&def.model));
        }
        for m in &design.netlist().modules {
            add_row(interner.intern(&m.name));
        }
        add_row(interner.intern(&design.netlist().cluster));
        let n_rows = row_names.len();

        let mut row_start_line = vec![0u32; n_rows];
        let mut row_has_vocab = vec![false; n_rows];
        let mut row_vocab: Vec<BitSet> = (0..n_rows).map(|_| BitSet::new(frozen)).collect();
        let mut row_inport: Vec<BitSet> = (0..n_rows).map(|_| BitSet::new(frozen)).collect();
        for (r, &sym) in row_names.iter().enumerate() {
            let name = interner.resolve(sym);
            row_start_line[r] = design.start_line(&name);
            // `kind_of` consults the *first* matching interface, exactly
            // like the legacy strict path.
            if let Some(iface) = design.interface(&name) {
                for p in &iface.inputs {
                    if matches!(design.kind_of(&name, &p.name), VarKind::InPort(_)) {
                        row_inport[r].insert(interner.intern(&p.name).0 as usize);
                    }
                }
            }
        }
        // Vocabulary mirrors `known_variables`: iterate the model list in
        // order so a duplicate definition overwrites (HashMap::insert
        // semantics).
        for def in design.models() {
            let r = model_row[interner.intern(&def.model).0 as usize] as usize;
            let vocab = &mut row_vocab[r];
            vocab.clear();
            row_has_vocab[r] = true;
            for p in def.interface.inputs.iter().chain(&def.interface.outputs) {
                vocab.insert(interner.intern(&p.name).0 as usize);
            }
            for (member, _) in &def.interface.members {
                vocab.insert(interner.intern(member).0 as usize);
            }
            if let Some(f) = design.tu().processing(&def.model) {
                let cfg = Cfg::from_function(f);
                for node in cfg.nodes() {
                    for d in &node.def_use.defs {
                        vocab.insert(interner.intern(&d.name).0 as usize);
                    }
                    for u in &node.def_use.uses {
                        vocab.insert(interner.intern(&u.name).0 as usize);
                    }
                }
            }
        }

        let mut member_seeds = Vec::new();
        for def in design.models() {
            let r = model_row[interner.intern(&def.model).0 as usize];
            let line = design.start_line(&def.model);
            for (member, _) in &def.interface.members {
                member_seeds.push((r, interner.intern(member).0, line));
            }
        }

        let mut assoc_bits: FxHashMap<AssocKey, Vec<u32>> = FxHashMap::default();
        let mut dropped_keys: Vec<(AssocKey, u32)> = Vec::new();
        for (i, ca) in statics.associations.iter().enumerate() {
            let key = (
                interner.intern(&ca.assoc.var).0,
                ca.assoc.def_line,
                interner.intern(&ca.assoc.def_model).0,
                ca.assoc.use_line,
                interner.intern(&ca.assoc.use_model).0,
            );
            if tracking == Tracking::Reduced && statics.subsumption.dropped.contains(i) {
                dropped_keys.push((key, i as u32));
            } else {
                assoc_bits.entry(key).or_default().push(i as u32);
            }
        }

        MatchAutomaton {
            interner,
            frozen,
            model_row,
            n_rows,
            row_start_line,
            row_has_vocab,
            row_vocab,
            row_inport,
            member_seeds,
            assoc_bits,
            dropped_keys,
            n_assocs: statics.associations.len(),
        }
    }

    /// The design-wide interner the automaton's ids refer to.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Number of static associations — the capacity of every coverage
    /// bitset this automaton produces.
    pub fn n_associations(&self) -> usize {
        self.n_assocs
    }

    #[inline]
    fn row_of(&self, model: Sym) -> Option<usize> {
        let i = model.0 as usize;
        if i < self.frozen {
            let r = self.model_row[i];
            if r != NO_ROW {
                return Some(r as usize);
            }
        }
        None
    }

    #[inline]
    fn name(&self, sym: Sym) -> String {
        self.interner.resolve(sym).to_string()
    }

    fn prov_of(&self, id: ProvId, cache: &mut FxHashMap<u32, (Sym, u32, Sym)>) -> (Sym, u32, Sym) {
        *cache.entry(id.0).or_insert_with(|| {
            self.interner
                .prov(id)
                .expect("provenance id from a foreign interner")
        })
    }

    /// Records the def site `(var, def_line, def_model)` paired with the
    /// use site `(use_line, use_model)`: sets its coverage bit(s) and
    /// materialises the [`Association`] on first occurrence.
    fn exercise(
        &self,
        (var, def_line, def_model): (Sym, u32, Sym),
        (use_line, use_model): (u32, Sym),
        state: &mut LogState,
        exercised: &mut HashSet<Association>,
        bits: &mut BitSet,
    ) {
        let key = (var.0, def_line, def_model.0, use_line, use_model.0);
        if !state.seen_pair.insert(key) {
            return;
        }
        if let Some(indices) = self.assoc_bits.get(&key) {
            for &i in indices {
                bits.insert(i as usize);
            }
        }
        exercised.insert(Association::new(
            self.name(var),
            def_line,
            self.name(def_model),
            use_line,
            self.name(use_model),
        ));
    }

    /// Matches a compact event log; results are byte-identical to
    /// [`analyse_events_with_mode`](crate::analyse_events_with_mode) on the
    /// equivalent string log.
    pub fn analyse(&self, events: &[CompactEvent], mode: MatchMode) -> DynamicResult {
        self.analyse_with_coverage(events, mode).0
    }

    /// Starts an incremental matching pass: the returned [`MatchCursor`]
    /// consumes events one at a time ([`MatchCursor::feed`]) and yields the
    /// same `(DynamicResult, BitSet)` as [`Self::analyse_with_coverage`]
    /// when [`MatchCursor::finish`]ed — the streaming half of the
    /// simulate-and-match pipeline, holding only O(automaton state).
    pub fn cursor(&self, mode: MatchMode) -> MatchCursor<'_> {
        let frozen = self.frozen;
        let mut st = LogState {
            last_def: vec![NO_DEF; self.n_rows * frozen],
            last_def_extra: FxHashMap::default(),
            last_time: vec![None; self.n_rows],
            warned: FxHashSet::default(),
            warned_models: FxHashSet::default(),
            warned_times: FxHashSet::default(),
            warned_vars: FxHashSet::default(),
            seen_def: FxHashSet::default(),
            seen_pair: FxHashSet::default(),
            prov_cache: FxHashMap::default(),
        };
        for &(row, var, line) in &self.member_seeds {
            st.last_def[row as usize * frozen + var as usize] = line;
        }
        MatchCursor {
            automaton: self,
            mode,
            st,
            bits: BitSet::new(self.n_assocs),
            exercised: HashSet::new(),
            defs_executed: HashSet::new(),
            warnings: Vec::new(),
            quarantined: 0,
            events: 0,
        }
    }

    /// [`Self::analyse`] plus the coverage bitset over
    /// [`StaticAnalysis::associations`] indices: bit `i` is set iff
    /// `associations[i]` is in the returned `exercised` set.
    ///
    /// This is the *buffered* entry point — a [`MatchCursor`] fed from a
    /// fully materialized log. The streaming pipeline drives the same
    /// cursor event by event instead (see [`Self::cursor`]), so the two
    /// paths are byte-identical by construction.
    pub fn analyse_with_coverage(
        &self,
        events: &[CompactEvent],
        mode: MatchMode,
    ) -> (DynamicResult, BitSet) {
        let _span = obs::span("stage.match");
        let mut cursor = self.cursor(mode);
        for ev in events {
            cursor.feed(ev);
        }
        cursor.finish()
    }
}

/// Incremental matching state over one event stream: the per-run mutable
/// half of [`MatchAutomaton::analyse_with_coverage`], split out so the
/// simulator can feed events as it produces them (via
/// [`tdf_sim::MatchingSink`]) with no materialized log. Memory is
/// O(automaton state) — last-def tables, once-sets and the coverage
/// bitset — independent of how many events are fed.
#[derive(Debug)]
pub struct MatchCursor<'a> {
    automaton: &'a MatchAutomaton,
    mode: MatchMode,
    st: LogState,
    bits: BitSet,
    exercised: HashSet<Association>,
    defs_executed: HashSet<(String, String, u32)>,
    warnings: Vec<DynamicWarning>,
    quarantined: u64,
    events: u64,
}

impl MatchCursor<'_> {
    /// Number of events fed so far.
    pub fn events_fed(&self) -> u64 {
        self.events
    }

    /// The match mode this cursor validates with.
    pub fn mode(&self) -> MatchMode {
        self.mode
    }

    /// Consumes one event, updating the incremental state exactly as the
    /// corresponding iteration of the buffered loop would.
    pub fn feed(&mut self, ev: &CompactEvent) {
        self.events += 1;
        let automaton = self.automaton;
        let frozen = automaton.frozen;
        let st = &mut self.st;
        {
            let row = automaton.row_of(ev.model);
            if self.mode == MatchMode::Lenient {
                // `Some(w)` quarantines the event; the inner option is the
                // warning to record (None once a site already warned).
                let quarantine_reason: Option<Option<DynamicWarning>> = match row {
                    None => Some(st.warned_models.insert(ev.model.0).then(|| {
                        DynamicWarning::UnknownModel {
                            model: automaton.name(ev.model),
                            time: ev.time,
                        }
                    })),
                    Some(r) => {
                        if let Some(last) = st.last_time[r].filter(|&last| ev.time < last) {
                            Some(st.warned_times.insert(ev.model.0).then(|| {
                                DynamicWarning::NonMonotoneTimestamp {
                                    model: automaton.name(ev.model),
                                    time: ev.time,
                                    last,
                                }
                            }))
                        } else if automaton.row_has_vocab[r]
                            && !automaton.row_vocab[r].contains(ev.var.0 as usize)
                        {
                            Some(st.warned_vars.insert((ev.model.0, ev.var.0)).then(|| {
                                DynamicWarning::UnknownVariable {
                                    model: automaton.name(ev.model),
                                    var: automaton.name(ev.var),
                                    time: ev.time,
                                }
                            }))
                        } else if ev.kind == EventKind::Use && !ev.prov.is_none() {
                            // Provenance must also name a real model, else
                            // the pair it would exercise is fabricated.
                            let (_, _, pm) = automaton.prov_of(ev.prov, &mut st.prov_cache);
                            automaton.row_of(pm).is_none().then(|| {
                                st.warned_models.insert(pm.0).then(|| {
                                    DynamicWarning::UnknownModel {
                                        model: automaton.name(pm),
                                        time: ev.time,
                                    }
                                })
                            })
                        } else {
                            None
                        }
                    }
                };
                if let Some(warning) = quarantine_reason {
                    self.quarantined += 1;
                    if let Some(w) = warning {
                        self.warnings.push(w);
                    }
                    // Poison the pending definition: a quarantined def must
                    // not let later uses pair with a stale older one.
                    if ev.kind == EventKind::Def {
                        st.remove_last_def(row, frozen, ev.model, ev.var);
                    }
                    return;
                }
                st.last_time[row.expect("known model passed validation")] = Some(ev.time);
            }
            match ev.kind {
                EventKind::Def => {
                    st.set_last_def(row, frozen, ev.model, ev.var, ev.line);
                    if st.seen_def.insert((ev.model.0, ev.var.0, ev.line)) {
                        self.defs_executed.insert((
                            automaton.name(ev.model),
                            automaton.name(ev.var),
                            ev.line,
                        ));
                    }
                }
                EventKind::Use => {
                    if !ev.prov.is_none() {
                        let (pv, pl, pm) = automaton.prov_of(ev.prov, &mut st.prov_cache);
                        if st.seen_def.insert((pm.0, pv.0, pl)) {
                            self.defs_executed
                                .insert((automaton.name(pm), automaton.name(pv), pl));
                        }
                        automaton.exercise(
                            (pv, pl, pm),
                            (ev.line, ev.model),
                            st,
                            &mut self.exercised,
                            &mut self.bits,
                        );
                        return;
                    }
                    let inport =
                        row.is_some_and(|r| automaton.row_inport[r].contains(ev.var.0 as usize));
                    if inport {
                        let r = row.expect("inport implies a row");
                        if ev.defined {
                            let dline = automaton.row_start_line[r];
                            automaton.exercise(
                                (ev.var, dline, ev.model),
                                (ev.line, ev.model),
                                st,
                                &mut self.exercised,
                                &mut self.bits,
                            );
                        } else if st.warned.insert((ev.model.0, ev.var.0, ev.line)) {
                            self.warnings.push(DynamicWarning::UndefinedSampleRead {
                                model: automaton.name(ev.model),
                                var: automaton.name(ev.var),
                                line: ev.line,
                                time: ev.time,
                            });
                        }
                    } else {
                        match st.get_last_def(row, frozen, ev.model, ev.var) {
                            Some(dline) => {
                                automaton.exercise(
                                    (ev.var, dline, ev.model),
                                    (ev.line, ev.model),
                                    st,
                                    &mut self.exercised,
                                    &mut self.bits,
                                );
                            }
                            None => {
                                if st.warned.insert((ev.model.0, ev.var.0, ev.line)) {
                                    self.warnings.push(DynamicWarning::UseWithoutDef {
                                        model: automaton.name(ev.model),
                                        var: automaton.name(ev.var),
                                        line: ev.line,
                                        time: ev.time,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Finalizes the pass: records the aggregate `match.*` counters and
    /// returns the result plus coverage bitset — byte-identical to the
    /// buffered [`MatchAutomaton::analyse_with_coverage`] over the same
    /// event sequence.
    pub fn finish(mut self) -> (DynamicResult, BitSet) {
        static EVENTS_MATCHED: obs::Counter = obs::Counter::new("match.events");
        static ASSOC_EXERCISED: obs::Counter = obs::Counter::new("match.associations_exercised");
        static QUARANTINED: obs::Counter = obs::Counter::new("match.quarantined_events");
        // Reconstruct the bits of associations reduced off the hot path:
        // the seen-pair set records every first-seen key regardless of
        // tracking policy, so probing it here is exact on any log — the
        // static subsumption relation is never trusted for coverage.
        for &(key, idx) in &self.automaton.dropped_keys {
            if self.st.seen_pair.contains(&key) {
                self.bits.insert(idx as usize);
            }
        }
        EVENTS_MATCHED.add(self.events);
        ASSOC_EXERCISED.add(self.exercised.len() as u64);
        QUARANTINED.add(self.quarantined);
        (
            DynamicResult {
                exercised: self.exercised,
                defs_executed: self.defs_executed,
                warnings: self.warnings,
                quarantined: self.quarantined,
            },
            self.bits,
        )
    }
}

impl tdf_sim::CompactConsumer for MatchCursor<'_> {
    fn consume(&mut self, event: &CompactEvent) {
        self.feed(event);
    }
}

impl LogState {
    /// Dense slot for `(row, var)` when the variable symbol predates the
    /// freeze; `None` routes to the overflow map.
    #[inline]
    fn slot(row: Option<usize>, frozen: usize, var: Sym) -> Option<usize> {
        match row {
            Some(r) if (var.0 as usize) < frozen => Some(r * frozen + var.0 as usize),
            _ => None,
        }
    }

    #[inline]
    fn get_last_def(&self, row: Option<usize>, frozen: usize, model: Sym, var: Sym) -> Option<u32> {
        match Self::slot(row, frozen, var) {
            Some(s) => {
                let line = self.last_def[s];
                (line != NO_DEF).then_some(line)
            }
            None => self.last_def_extra.get(&(model.0, var.0)).copied(),
        }
    }

    #[inline]
    fn set_last_def(&mut self, row: Option<usize>, frozen: usize, model: Sym, var: Sym, line: u32) {
        match Self::slot(row, frozen, var) {
            Some(s) => self.last_def[s] = line,
            None => {
                self.last_def_extra.insert((model.0, var.0), line);
            }
        }
    }

    #[inline]
    fn remove_last_def(&mut self, row: Option<usize>, frozen: usize, model: Sym, var: Sym) {
        match Self::slot(row, frozen, var) {
            Some(s) => self.last_def[s] = NO_DEF,
            None => {
                self.last_def_extra.remove(&(model.0, var.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::analyse_events_with_mode;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{Event, ModuleClass, ModuleInfo, Netlist, Provenance, SimTime};

    fn design() -> Design {
        let src = "void M::processing()\n{\n    double t = ip_x;\n    op_y = t;\n}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_x")
                .output("op_y")
                .member("m_s", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![ModuleInfo {
                name: "M".into(),
                class: ModuleClass::UserCode,
                in_ports: vec!["ip_x".into()],
                out_ports: vec!["op_y".into()],
            }],
        };
        Design::new(tu, models, netlist).unwrap()
    }

    fn def_at(model: &str, var: &str, line: u32, us: u64) -> Event {
        Event::Def {
            time: SimTime::from_us(us),
            model: model.into(),
            var: var.into(),
            line,
        }
    }

    fn use_at(model: &str, var: &str, line: u32, us: u64) -> Event {
        Event::Use {
            time: SimTime::from_us(us),
            model: model.into(),
            var: var.into(),
            line,
            feeding: None,
            defined: true,
        }
    }

    fn fed(model: &str, var: &str, line: u32, prov: Provenance) -> Event {
        Event::Use {
            time: SimTime::ZERO,
            model: model.into(),
            var: var.into(),
            line,
            feeding: Some(prov),
            defined: true,
        }
    }

    /// Runs `events` through both matchers in `mode` and asserts the
    /// results are identical field by field; returns the automaton pair
    /// for extra assertions.
    fn assert_equiv(design: &Design, events: &[Event], mode: MatchMode) -> (DynamicResult, BitSet) {
        let statics = crate::statics::analyse(design);
        let automaton = MatchAutomaton::new(design, &statics);
        let compact: Vec<CompactEvent> = events
            .iter()
            .map(|e| CompactEvent::from_event(e, automaton.interner()))
            .collect();
        let legacy = analyse_events_with_mode(design, events, mode);
        let (fast, bits) = automaton.analyse_with_coverage(&compact, mode);
        assert_eq!(fast.exercised, legacy.exercised);
        assert_eq!(fast.defs_executed, legacy.defs_executed);
        assert_eq!(fast.warnings, legacy.warnings);
        assert_eq!(fast.quarantined, legacy.quarantined);
        // Bit i set iff associations[i] was exercised.
        for (i, ca) in statics.associations.iter().enumerate() {
            assert_eq!(
                bits.contains(i),
                fast.exercised.contains(&ca.assoc),
                "bit {i} disagrees with the exercised set for {}",
                ca.assoc
            );
        }
        (fast, bits)
    }

    #[test]
    fn matches_legacy_on_a_healthy_log_in_both_modes() {
        let d = design();
        let events = vec![
            def_at("M", "t", 3, 0),
            use_at("M", "t", 4, 0),
            def_at("M", "m_s", 7, 1),
            use_at("M", "m_s", 3, 2),
            use_at("M", "ip_x", 3, 2),
            fed("M", "ip_x", 3, Provenance::new("op_y", 4, "M")),
            fed("M", "ip_x", 3, Provenance::new("op_out", 14, "top")),
        ];
        let (strict, _) = assert_equiv(&d, &events, MatchMode::Strict);
        assert!(strict
            .exercised
            .contains(&Association::new("t", 3, "M", 4, "M")));
        assert!(strict
            .exercised
            .contains(&Association::new("ip_x", 1, "M", 3, "M")));
        assert!(strict
            .exercised
            .contains(&Association::new("op_out", 14, "top", 3, "M")));
        assert_equiv(&d, &events, MatchMode::Lenient);
    }

    #[test]
    fn matches_legacy_on_unknown_models_in_strict_mode() {
        // Strict mode matches events of models the design never declared
        // (their symbols may even be interned post-freeze): they take the
        // overflow last-def path.
        let d = design();
        let events = vec![
            def_at("TS", "x", 5, 0),
            use_at("TS", "x", 6, 0),
            fed("M", "ip_x", 3, Provenance::new("op_out", 14, "TS")),
            use_at("TS", "y", 7, 0), // use without def in an unknown model
        ];
        let (strict, _) = assert_equiv(&d, &events, MatchMode::Strict);
        assert!(strict
            .exercised
            .contains(&Association::new("x", 5, "TS", 6, "TS")));
        assert!(strict
            .exercised
            .contains(&Association::new("op_out", 14, "TS", 3, "M")));
    }

    #[test]
    fn matches_legacy_on_ghost_corruption_in_lenient_mode() {
        let d = design();
        let events = vec![
            use_at("__ghost_model_0", "t", 4, 0),
            use_at("__ghost_model_0", "t", 4, 1),
            use_at("M", "__ghost_var_0", 4, 0),
            fed(
                "M",
                "ip_x",
                3,
                Provenance::new("op_out", 14, "__ghost_model_2"),
            ),
            def_at("M", "t", 3, 0),
            use_at("M", "t", 4, 0),
        ];
        let (lenient, _) = assert_equiv(&d, &events, MatchMode::Lenient);
        assert_eq!(lenient.quarantined, 4);
        // Ghost events also behave like legacy when strict mode trusts them.
        assert_equiv(&d, &events, MatchMode::Strict);
    }

    #[test]
    fn matches_legacy_on_backward_time_def_poisoning() {
        let d = design();
        let events = vec![
            def_at("M", "t", 3, 10),
            def_at("M", "t", 9, 0), // warped backwards: quarantined, poisons
            use_at("M", "t", 10, 10),
        ];
        let (lenient, bits) = assert_equiv(&d, &events, MatchMode::Lenient);
        assert_eq!(lenient.quarantined, 1);
        assert!(lenient.exercised.is_empty());
        assert!(bits.is_empty());
    }

    #[test]
    fn reduced_tracking_reconstructs_full_coverage_bits() {
        // Three local pairs where (t,3 -> 5) subsumes both (t,3 -> 4) and
        // (u,4 -> 5), so the statics drop two rows from the frontier.
        let src = "void M::processing()\n{\n    double t = ip_x;\n    double u = t;\n    op_y = t + u;\n}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new().input("ip_x").output("op_y"),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![ModuleInfo {
                name: "M".into(),
                class: ModuleClass::UserCode,
                in_ports: vec!["ip_x".into()],
                out_ports: vec!["op_y".into()],
            }],
        };
        let d = Design::new(tu, models, netlist).unwrap();
        let statics = crate::statics::analyse(&d);
        assert!(
            statics.subsumption.dropped_count() >= 1,
            "fixture must reduce at least one association"
        );
        let full = MatchAutomaton::with_tracking(&d, &statics, Tracking::Full);
        let reduced = MatchAutomaton::with_tracking(&d, &statics, Tracking::Reduced);
        // A complete activation, and a truncated log that exercises a
        // *dropped* pair without its subsumer — reconstruction must not
        // trust the static relation.
        let complete = vec![
            def_at("M", "t", 3, 0),
            use_at("M", "t", 4, 0),
            def_at("M", "u", 4, 0),
            use_at("M", "t", 5, 0),
            use_at("M", "u", 5, 0),
        ];
        let truncated = vec![def_at("M", "t", 3, 0), use_at("M", "t", 4, 0)];
        for events in [&complete, &truncated] {
            let compact: Vec<CompactEvent> = events
                .iter()
                .map(|e| CompactEvent::from_event(e, full.interner()))
                .collect();
            for mode in [MatchMode::Strict, MatchMode::Lenient] {
                let (rf, bf) = full.analyse_with_coverage(&compact, mode);
                let (rr, br) = reduced.analyse_with_coverage(&compact, mode);
                assert_eq!(rf.exercised, rr.exercised);
                assert_eq!(rf.defs_executed, rr.defs_executed);
                assert_eq!(rf.warnings, rr.warnings);
                assert_eq!(rf.quarantined, rr.quarantined);
                assert_eq!(bf, br, "coverage bits must be byte-identical");
            }
        }
        // The truncated log's only pair is a dropped one; its bit is set.
        let compact: Vec<CompactEvent> = truncated
            .iter()
            .map(|e| CompactEvent::from_event(e, full.interner()))
            .collect();
        let (_, bits) = reduced.analyse_with_coverage(&compact, MatchMode::Strict);
        let i = statics
            .associations
            .iter()
            .position(|c| c.assoc == Association::new("t", 3, "M", 4, "M"))
            .unwrap();
        assert!(statics.subsumption.dropped.contains(i));
        assert!(
            bits.contains(i),
            "dropped bit reconstructed from seen-pairs"
        );
    }

    #[test]
    fn coverage_bits_index_the_static_association_list() {
        let d = design();
        let statics = crate::statics::analyse(&d);
        assert!(
            !statics.associations.is_empty(),
            "test design must yield associations"
        );
        let automaton = MatchAutomaton::new(&d, &statics);
        assert_eq!(automaton.n_associations(), statics.associations.len());
        // Exercise every static association directly by synthesising the
        // event that closes it.
        let events: Vec<Event> = statics
            .associations
            .iter()
            .map(|ca| {
                fed(
                    &ca.assoc.use_model,
                    "ip_x",
                    ca.assoc.use_line,
                    Provenance::new(&ca.assoc.var, ca.assoc.def_line, &ca.assoc.def_model),
                )
            })
            .collect();
        let compact: Vec<CompactEvent> = events
            .iter()
            .map(|e| CompactEvent::from_event(e, automaton.interner()))
            .collect();
        let (_, bits) = automaton.analyse_with_coverage(&compact, MatchMode::Strict);
        assert_eq!(bits.len(), statics.associations.len());
    }
}

//! Error type of the DFT core.

use std::error::Error;
use std::fmt;

/// Errors raised by the data-flow-testing pipeline.
#[derive(Debug)]
pub enum DftError {
    /// A model listed in the netlist as user code has no source in the
    /// translation unit.
    MissingSource {
        /// The model name.
        model: String,
    },
    /// A model definition exists but the netlist does not contain it.
    NotInNetlist {
        /// The model name.
        model: String,
    },
    /// Source failed to parse.
    Parse(minic::MinicError),
    /// Simulation failed.
    Sim(tdf_sim::TdfError),
    /// Interpreter binding failed.
    Interp(tdf_interp::InterpError),
}

impl fmt::Display for DftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DftError::MissingSource { model } => {
                write!(f, "no processing() source for user-code model `{model}`")
            }
            DftError::NotInNetlist { model } => {
                write!(
                    f,
                    "model `{model}` has a definition but is not in the netlist"
                )
            }
            DftError::Parse(e) => write!(f, "{e}"),
            DftError::Sim(e) => write!(f, "{e}"),
            DftError::Interp(e) => write!(f, "{e}"),
        }
    }
}

impl Error for DftError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DftError::Parse(e) => Some(e),
            DftError::Sim(e) => Some(e),
            DftError::Interp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<minic::MinicError> for DftError {
    fn from(e: minic::MinicError) -> Self {
        DftError::Parse(e)
    }
}

impl From<tdf_sim::TdfError> for DftError {
    fn from(e: tdf_sim::TdfError) -> Self {
        DftError::Sim(e)
    }
}

impl From<tdf_interp::InterpError> for DftError {
    fn from(e: tdf_interp::InterpError) -> Self {
        DftError::Interp(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DftError>;

/// Render a `catch_unwind` payload as a message. Panics raised via
/// `panic!("…")` carry `&str` or `String`; anything else gets a
/// placeholder rather than being re-thrown.
pub(crate) fn panic_payload_str(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = DftError::from(tdf_sim::TdfError::UnknownModule { name: "x".into() });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("unknown module"));
    }

    #[test]
    fn missing_source_message() {
        let e = DftError::MissingSource { model: "TS".into() };
        assert!(e.to_string().contains("TS"));
        assert!(e.source().is_none());
    }
}

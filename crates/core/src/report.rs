//! Report rendering: the paper's Table I (per-association coverage matrix)
//! and Table II (case-study iteration summaries) as text tables, plus the
//! subsumption-reduction summary (raw vs frontier numbers).
//!
//! Table I/II always report the *raw* association set — their output is
//! byte-identical whether the matcher tracked every row or only the
//! unsubsumed frontier. [`render_subsumption`] is the additive view that
//! shows how much the frontier reduction saved.

use std::fmt::Write as _;

use crate::assoc::Classification;
use crate::coverage::{Coverage, TestcaseResult};
use crate::statics::StaticAnalysis;

/// Renders a Table-I-style matrix: associations grouped by classification,
/// one column per testcase, `x` = exercised / `-` = not exercised.
///
/// ```text
/// Strong
///   (tmpr, 4, TS, 9, TS)                       x  x  -
///   ...
/// PFirm
///   (op_signal_out, 74, sense_top, 36, AM)     -  x  -
/// ```
pub fn render_table1(cov: &Coverage) -> String {
    let mut out = String::new();
    let width = cov
        .associations()
        .iter()
        .map(|c| c.assoc.to_string().len())
        .max()
        .unwrap_or(20)
        + 2;
    let _ = write!(out, "{:width$}", "Static Pairs");
    for name in cov.testcase_names() {
        let _ = write!(out, " {name:>4}");
    }
    out.push('\n');
    for class in Classification::ALL {
        let rows: Vec<usize> = cov
            .associations()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.class == class)
            .map(|(i, _)| i)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{class}");
        for i in rows {
            let tuple = cov.associations()[i].assoc.to_string();
            let _ = write!(out, "  {tuple:<w$}", w = width - 2);
            for t in 0..cov.testcase_names().len() {
                let mark = if cov.is_covered_by(i, t) { "x" } else { "-" };
                let _ = write!(out, " {mark:>4}");
            }
            out.push('\n');
        }
    }
    // Only degraded runs get a footer: a healthy testsuite renders
    // byte-identically to a report without outcome tracking.
    let degraded = cov.degraded();
    if !degraded.is_empty() {
        let _ = writeln!(out, "Degraded testcases (partial coverage)");
        for (name, outcome) in degraded {
            let _ = writeln!(out, "  {name}: {outcome}");
        }
    }
    out
}

/// One row of a Table-II-style case-study summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Case-study (AMS system) name.
    pub system: String,
    /// Iteration number (0 = initial testbench).
    pub iteration: usize,
    /// Testsuite size at this iteration.
    pub tests: usize,
    /// Statically identified associations.
    pub static_count: usize,
    /// Associations exercised dynamically.
    pub dynamic_count: usize,
    /// Coverage percentage per class; `None` when the class is empty.
    pub strong_pct: Option<f64>,
    /// Firm coverage percentage.
    pub firm_pct: Option<f64>,
    /// PFirm coverage percentage.
    pub pfirm_pct: Option<f64>,
    /// PWeak coverage percentage.
    pub pweak_pct: Option<f64>,
}

impl Table2Row {
    /// Builds a row from a coverage result.
    pub fn from_coverage(system: &str, iteration: usize, tests: usize, cov: &Coverage) -> Self {
        Table2Row {
            system: system.to_owned(),
            iteration,
            tests,
            static_count: cov.associations().len(),
            dynamic_count: cov.exercised_count(),
            strong_pct: cov.class_percent(Classification::Strong),
            firm_pct: cov.class_percent(Classification::Firm),
            pfirm_pct: cov.class_percent(Classification::PFirm),
            pweak_pct: cov.class_percent(Classification::PWeak),
        }
    }
}

fn pct(v: Option<f64>) -> String {
    match v {
        Some(p) => format!("{p:.0}"),
        None => "0".to_owned(), // the paper prints 0 for empty classes
    }
}

/// Renders Table II: one row per (system, iteration).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>5} {:>6} {:>8} {:>8} {:>6} {:>6} {:>6} {:>6}",
        "AMS System", "Iter.", "Tests", "Static", "Dynamic", "S(%)", "F(%)", "PF(%)", "PW(%)"
    );
    let mut last_system = "";
    for r in rows {
        let system = if r.system == last_system {
            ""
        } else {
            &r.system
        };
        last_system = &r.system;
        let _ = writeln!(
            out,
            "{:<24} {:>5} {:>6} {:>8} {:>8} {:>6} {:>6} {:>6} {:>6}",
            system,
            r.iteration,
            r.tests,
            r.static_count,
            r.dynamic_count,
            pct(r.strong_pct),
            pct(r.firm_pct),
            pct(r.pfirm_pct),
            pct(r.pweak_pct),
        );
    }
    out
}

/// Renders a short coverage summary with criteria verdicts.
pub fn render_summary(cov: &Coverage) -> String {
    use crate::coverage::Criterion;
    let mut out = String::new();
    let (c, t) = cov.total_ratio();
    let _ = writeln!(
        out,
        "data flow coverage: {c}/{t} ({:.1}%)",
        cov.total_percent()
    );
    let degraded = cov.degraded();
    if !degraded.is_empty() {
        let _ = writeln!(
            out,
            "  ({} of {} testcases degraded; coverage is partial)",
            degraded.len(),
            cov.testcase_names().len()
        );
    }
    for class in Classification::ALL {
        let (cc, ct) = cov.class_ratio(class);
        if ct > 0 {
            let _ = writeln!(out, "  {class:<7} {cc}/{ct}");
        } else {
            let _ = writeln!(out, "  {class:<7} none identified");
        }
    }
    for crit in [
        Criterion::AllStrong,
        Criterion::AllFirm,
        Criterion::AllPFirm,
        Criterion::AllPWeak,
        Criterion::AllDefs,
        Criterion::AllUses,
        Criterion::AllDataflow,
    ] {
        let verdict = if cov.satisfies(crit) {
            "satisfied"
        } else {
            "NOT satisfied"
        };
        let _ = writeln!(out, "  {crit:<13} {verdict}");
    }
    out
}

/// Renders the per-testcase assertion-verdict table:
///
/// ```text
/// Assertion verdicts
///   TC1
///     overshoot   holds
///     settle      FAILS @ 1.2ms
/// ```
///
/// Returns the empty string when no run carries verdicts, so a session
/// without assertions renders byte-identically to one predating monitor
/// support.
pub fn render_verdicts(runs: &[TestcaseResult]) -> String {
    if runs.iter().all(|r| r.verdicts.is_empty()) {
        return String::new();
    }
    let width = runs
        .iter()
        .flat_map(|r| r.verdicts.iter())
        .map(|v| v.name.len())
        .max()
        .unwrap_or(0)
        + 2;
    let mut out = String::new();
    let _ = writeln!(out, "Assertion verdicts");
    for run in runs {
        if run.verdicts.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  {}", run.name);
        for v in &run.verdicts {
            let _ = writeln!(out, "    {:<width$} {}", v.name, v.verdict);
        }
    }
    out
}

/// Renders the subsumption-reduction summary: raw vs frontier association
/// counts (total and per class) and both coverage views. `cov` must have
/// been evaluated against the same `statics` (indices align).
///
/// The *raw* numbers here equal Table I/II exactly; the *frontier* view
/// counts only the associations the matcher tracks on its hot path.
pub fn render_subsumption(statics: &StaticAnalysis, cov: &Coverage) -> String {
    let sub = &statics.subsumption;
    let n = statics.associations.len();
    let tracked = n - sub.dropped_count();
    let mut out = String::new();
    let _ = writeln!(out, "subsumption-reduced tracking");
    let _ = writeln!(out, "  raw associations:     {n}");
    let reduction = if n > 0 {
        100.0 * sub.dropped_count() as f64 / n as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  frontier (tracked):   {tracked} ({} reduced away, {reduction:.1}%)",
        sub.dropped_count()
    );
    let _ = writeln!(out, "  per class (raw -> frontier):");
    for class in Classification::ALL {
        let raw = statics
            .associations
            .iter()
            .filter(|c| c.class == class)
            .count();
        if raw == 0 {
            continue;
        }
        let kept = statics
            .associations
            .iter()
            .enumerate()
            .filter(|(i, c)| c.class == class && sub.is_tracked(*i))
            .count();
        let _ = writeln!(out, "    {class:<7} {raw} -> {kept}");
    }
    let (c, t) = cov.total_ratio();
    let frontier_covered = (0..n)
        .filter(|&i| sub.is_tracked(i) && cov.is_covered(i))
        .count();
    let raw_pct = if t > 0 {
        100.0 * c as f64 / t as f64
    } else {
        0.0
    };
    let frontier_pct = if tracked > 0 {
        100.0 * frontier_covered as f64 / tracked as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  coverage: raw {c}/{t} ({raw_pct:.1}%), frontier {frontier_covered}/{tracked} ({frontier_pct:.1}%)"
    );
    let implied_total: usize = sub.implied_by.iter().map(|(_, s)| s.len()).sum();
    let _ = writeln!(
        out,
        "  implied reconstruction: {implied_total} implication(s) from {} frontier row(s)",
        sub.implied_by.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::{Association, ClassifiedAssoc};
    use crate::coverage::TestcaseResult;

    fn coverage() -> Coverage {
        let st = StaticAnalysis {
            associations: vec![
                ClassifiedAssoc {
                    assoc: Association::new("tmpr", 4, "TS", 9, "TS"),
                    class: Classification::Strong,
                },
                ClassifiedAssoc {
                    assoc: Association::new("out_tmpr", 5, "TS", 14, "TS"),
                    class: Classification::Firm,
                },
                ClassifiedAssoc {
                    assoc: Association::new("op_mux_out", 77, "sense_top", 79, "sense_top"),
                    class: Classification::PWeak,
                },
            ],
            lints: Vec::new(),
            subsumption: Default::default(),
        };
        let tc1 = TestcaseResult {
            name: "TC1".into(),
            exercised: [Association::new("tmpr", 4, "TS", 9, "TS")]
                .into_iter()
                .collect(),
            ..TestcaseResult::default()
        };
        let tc2 = TestcaseResult {
            name: "TC2".into(),
            exercised: [
                Association::new("tmpr", 4, "TS", 9, "TS"),
                Association::new("op_mux_out", 77, "sense_top", 79, "sense_top"),
            ]
            .into_iter()
            .collect(),
            ..TestcaseResult::default()
        };
        Coverage::evaluate(&st, &[tc1, tc2])
    }

    #[test]
    fn table1_shape() {
        let t = render_table1(&coverage());
        assert!(t.contains("Strong\n"));
        assert!(t.contains("Firm\n"));
        assert!(t.contains("PWeak\n"));
        assert!(!t.contains("PFirm\n"), "empty classes are skipped");
        let tmpr_line = t.lines().find(|l| l.contains("tmpr, 4")).unwrap();
        assert!(tmpr_line.trim_end().ends_with("x    x"));
        let firm_line = t.lines().find(|l| l.contains("out_tmpr")).unwrap();
        assert!(firm_line.contains('-'));
    }

    #[test]
    fn table2_rows_render() {
        let cov = coverage();
        let row = Table2Row::from_coverage("Sensor System", 0, 3, &cov);
        assert_eq!(row.static_count, 3);
        assert_eq!(row.dynamic_count, 2);
        assert_eq!(row.strong_pct, Some(100.0));
        assert_eq!(row.firm_pct, Some(0.0));
        assert_eq!(row.pfirm_pct, None);
        let text = render_table2(&[
            row.clone(),
            Table2Row {
                iteration: 1,
                ..row
            },
        ]);
        assert!(text.contains("Sensor System"));
        assert!(text.contains("Static"));
        // Repeated system name suppressed on the second row.
        assert_eq!(text.matches("Sensor System").count(), 1);
    }

    #[test]
    fn subsumption_report_shows_raw_and_frontier_views() {
        use crate::statics::SubsumptionInfo;
        use dataflow::BitSet;
        // Same associations as `coverage()`, but pretend index 1 (the
        // uncovered Firm pair) was reduced away, implied by index 0.
        let mut st = StaticAnalysis {
            associations: vec![
                ClassifiedAssoc {
                    assoc: Association::new("tmpr", 4, "TS", 9, "TS"),
                    class: Classification::Strong,
                },
                ClassifiedAssoc {
                    assoc: Association::new("out_tmpr", 5, "TS", 14, "TS"),
                    class: Classification::Firm,
                },
                ClassifiedAssoc {
                    assoc: Association::new("op_mux_out", 77, "sense_top", 79, "sense_top"),
                    class: Classification::PWeak,
                },
            ],
            lints: Vec::new(),
            subsumption: Default::default(),
        };
        let mut dropped = BitSet::new(3);
        dropped.insert(1);
        let mut implied = BitSet::new(3);
        implied.insert(1);
        st.subsumption = SubsumptionInfo {
            dropped,
            implied_by: vec![(0, implied)],
        };
        let tc = TestcaseResult {
            name: "TC1".into(),
            exercised: [Association::new("tmpr", 4, "TS", 9, "TS")]
                .into_iter()
                .collect(),
            ..TestcaseResult::default()
        };
        let cov = Coverage::evaluate(&st, &[tc]);
        let s = render_subsumption(&st, &cov);
        assert!(s.contains("raw associations:     3"));
        assert!(s.contains("frontier (tracked):   2 (1 reduced away, 33.3%)"));
        assert!(s.contains("Strong 1 -> 1"));
        assert!(s.contains("Firm 1 -> 0"));
        assert!(s.contains("PWeak 1 -> 1"));
        assert!(s.contains("coverage: raw 1/3 (33.3%), frontier 1/2 (50.0%)"));
        assert!(s.contains("1 implication(s) from 1 frontier row(s)"));
        // A default (empty) reduction renders trivially.
        let cov0 = coverage();
        let st0 = StaticAnalysis {
            associations: cov0.associations().to_vec(),
            lints: Vec::new(),
            subsumption: Default::default(),
        };
        let s0 = render_subsumption(&st0, &cov0);
        assert!(s0.contains("frontier (tracked):   3 (0 reduced away, 0.0%)"));
    }

    #[test]
    fn summary_mentions_criteria() {
        let s = render_summary(&coverage());
        assert!(s.contains("all-dataflow"));
        assert!(s.contains("NOT satisfied"));
        assert!(
            s.contains("none identified"),
            "empty PFirm class called out"
        );
    }
}

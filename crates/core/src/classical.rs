//! The classical (TDF-unaware) def-use baseline, used by the ablation
//! benchmark: plain all-du pairs within each `processing()` function, no
//! port/cluster reasoning, no Strong/Firm/PFirm/PWeak split.
//!
//! §IV-B.3 of the paper argues this baseline is insufficient for
//! SystemC-AMS designs — it is blind to every signal that crosses a model
//! boundary, so interface bugs (like the saturating-ADC one) cannot be
//! expressed as uncovered associations at all.

use dataflow::{Cfg, ReachingDefs};

use crate::assoc::Association;
use crate::design::Design;

/// Computes the classical intra-procedural def-use pairs of every user
/// model: exactly what an off-the-shelf software DFT tool would report.
pub fn classical_pairs(design: &Design) -> Vec<Association> {
    let mut out = Vec::new();
    for model in design.user_models() {
        let f = design
            .tu()
            .processing(model)
            .expect("validated by Design::new");
        let cfg = Cfg::from_function(f);
        let rd = ReachingDefs::compute(&cfg);
        for pair in rd.pairs() {
            out.push(Association::new(
                pair.var.clone(),
                rd.def(pair.def).line,
                model,
                pair.use_line,
                model,
            ));
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::analyse;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{ModuleClass, ModuleInfo, NetBinding, Netlist, PortRef};

    fn design() -> Design {
        let src = "\
void A::processing()
{
    double t = ip_in;
    op_y = t;
}
void B::processing()
{
    double v = ip_x;
    op_z = v;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("A", Interface::new().input("ip_in").output("op_y")),
            TdfModelDef::new("B", Interface::new().input("ip_x").output("op_z")),
        ];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![NetBinding {
                from: PortRef::new("A", "op_y"),
                to: PortRef::new("B", "ip_x"),
            }],
            modules: vec![
                ModuleInfo {
                    name: "A".into(),
                    class: ModuleClass::UserCode,
                    in_ports: vec!["ip_in".into()],
                    out_ports: vec!["op_y".into()],
                },
                ModuleInfo {
                    name: "B".into(),
                    class: ModuleClass::UserCode,
                    in_ports: vec!["ip_x".into()],
                    out_ports: vec!["op_z".into()],
                },
            ],
        };
        Design::new(tu, models, netlist).unwrap()
    }

    #[test]
    fn classical_sees_only_intra_model_pairs() {
        let d = design();
        let classical = classical_pairs(&d);
        assert!(classical.iter().all(|a| a.is_intra_model()));
        // t and v pairs exist...
        assert!(classical.contains(&Association::new("t", 3, "A", 4, "A")));
        assert!(classical.contains(&Association::new("v", 8, "B", 9, "B")));
        // ...but the cross-model op_y flow is invisible.
        assert!(!classical.iter().any(|a| !a.is_intra_model()));
    }

    #[test]
    fn tdf_aware_analysis_strictly_dominates() {
        let d = design();
        let classical = classical_pairs(&d);
        let tdf = analyse(&d);
        let cross = tdf
            .associations
            .iter()
            .filter(|c| !c.assoc.is_intra_model())
            .count();
        assert!(cross > 0, "TDF-aware analysis finds cluster pairs");
        assert!(tdf.associations.len() > classical.len());
    }
}

//! Synthetic design generation for the scalability benchmarks (ablation A2
//! in DESIGN.md): parameterised chains of TDF models with branching bodies,
//! buildable both as a [`Design`] (for static analysis) and as a
//! [`Cluster`] (for end-to-end runs).

use tdf_interp::{Interface, InterpModule, TdfModelDef};
use tdf_sim::{Cluster, DefSite, FnSource, Gain, SimTime, Value};

use crate::design::Design;
use crate::error::Result;

/// A generated synthetic design: sources + interfaces, with builders for
/// both analysis and simulation.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// The generated minic source of all models.
    pub source: String,
    /// Per-model interfaces.
    pub models: Vec<TdfModelDef>,
    /// Number of chained models.
    pub length: usize,
    /// Whether every other link goes through a redefining gain element.
    pub with_gains: bool,
}

/// Generates a chain of `length` models `m0 -> m1 -> … -> m{n-1}`, each
/// with a small branching body (one Firm-shaped local, one member, one
/// output). With `with_gains`, every second link passes through a
/// redefining gain, producing PWeak cluster pairs.
pub fn synthetic_chain(length: usize, with_gains: bool) -> SynthSpec {
    assert!(length >= 1, "chain needs at least one model");
    let mut source = String::new();
    let mut models = Vec::new();
    for i in 0..length {
        let name = format!("m{i}");
        source.push_str(&format!(
            "void {name}::processing()\n\
             {{\n\
                 double x = ip_in * 2;\n\
                 double acc = 0;\n\
                 if (x > 1) {{ acc = x; }}\n\
                 m_state = m_state + acc;\n\
                 if (m_state > 100) {{ m_state = 0; }}\n\
                 op_out = acc + m_state;\n\
             }}\n"
        ));
        models.push(TdfModelDef::new(
            &name,
            Interface::new()
                .input("ip_in")
                .output("op_out")
                .member("m_state", 0.0)
                .timestep(SimTime::from_us(1)),
        ));
    }
    SynthSpec {
        source,
        models,
        length,
        with_gains,
    }
}

impl SynthSpec {
    /// Builds a fresh simulation cluster (a stimulus source feeding the
    /// chain head; gains between every second pair when enabled).
    ///
    /// # Errors
    ///
    /// Propagates parse/bind/elaboration errors (none expected for
    /// generated specs).
    pub fn build_cluster(&self) -> Result<Cluster> {
        self.build_cluster_with(Box::new(FnSource::new("stim", SimTime::from_us(1), |t| {
            Value::Double((t.as_fs() % 7) as f64)
        })))
    }

    /// [`SynthSpec::build_cluster`] with a caller-supplied stimulus
    /// module driving the chain head (its output port must be `op_out`,
    /// like [`FnSource`]'s). This is the hook coverage-guided test
    /// generation uses to run candidate signals through synthetic chains
    /// without hand-building the netlist.
    ///
    /// # Errors
    ///
    /// Propagates parse/bind/elaboration errors (none expected for
    /// generated specs).
    pub fn build_cluster_with(&self, stim: Box<dyn tdf_sim::TdfModule>) -> Result<Cluster> {
        let tu = minic::parse(&self.source)?;
        let mut cluster = Cluster::new("synth_top");
        let src = cluster.add_module(stim)?;
        let mut prev_port = ("stim".to_owned(), "op_out".to_owned());
        let mut prev_id = src;
        for (i, def) in self.models.iter().enumerate() {
            let m = InterpModule::new(&tu, &def.model, def.interface.clone())?;
            let mid = cluster.add_module(Box::new(m))?;
            if self.with_gains && i > 0 && i % 2 == 0 {
                let g = Gain::new(
                    format!("g{i}"),
                    1.5,
                    DefSite::new("synth_top", 1000 + i as u32),
                );
                let gid = cluster.add_module(Box::new(g))?;
                cluster.connect(prev_id, &prev_port.1, gid, "tdf_i")?;
                cluster.connect(gid, "tdf_o", mid, "ip_in")?;
            } else {
                cluster.connect(prev_id, &prev_port.1, mid, "ip_in")?;
            }
            prev_port = (def.model.clone(), "op_out".to_owned());
            prev_id = mid;
        }
        Ok(cluster)
    }

    /// Builds the analysable [`Design`] (sources + interfaces + netlist).
    ///
    /// # Errors
    ///
    /// Propagates parse errors (none expected for generated specs).
    pub fn build_design(&self) -> Result<Design> {
        let cluster = self.build_cluster()?;
        let tu = minic::parse(&self.source)?;
        Design::new(tu, self.models.clone(), cluster.netlist())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::analyse;
    use crate::DftSession;

    #[test]
    fn chain_generates_and_analyses() {
        let spec = synthetic_chain(4, false);
        let design = spec.build_design().unwrap();
        assert_eq!(design.user_models().len(), 4);
        let sa = analyse(&design);
        assert!(!sa.is_empty());
        // Each internal link is a direct Strong connection.
        let cross = sa
            .associations
            .iter()
            .filter(|c| !c.assoc.is_intra_model())
            .count();
        assert!(cross >= 3, "three links produce cluster pairs, got {cross}");
    }

    #[test]
    fn gains_introduce_pweak_pairs() {
        use crate::assoc::Classification;
        let spec = synthetic_chain(5, true);
        let design = spec.build_design().unwrap();
        let sa = analyse(&design);
        let pweak = sa.of_class(Classification::PWeak);
        assert!(!pweak.is_empty(), "gain links are purely redefined");
    }

    #[test]
    fn associations_scale_with_length() {
        let short = analyse(&synthetic_chain(2, false).build_design().unwrap()).len();
        let long = analyse(&synthetic_chain(8, false).build_design().unwrap()).len();
        assert!(long > short * 3, "roughly linear growth: {short} -> {long}");
    }

    #[test]
    fn end_to_end_session_on_synthetic_design() {
        let spec = synthetic_chain(3, true);
        let design = spec.build_design().unwrap();
        let mut session = DftSession::new(design).unwrap();
        let cluster = spec.build_cluster().unwrap();
        session
            .run_testcase("TC1", cluster, SimTime::from_us(10))
            .unwrap();
        let cov = session.coverage();
        assert!(cov.exercised_count() > 0);
    }
}

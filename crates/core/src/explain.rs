//! Human-readable explanation of a single association: for intra-model
//! pairs, the enumerated static paths between def and use with intervening
//! redefinitions marked (why a pair is Firm rather than Strong); for
//! cluster pairs, the binding chain through the netlist with redefining
//! elements called out (why a pair is PFirm or PWeak).

use std::fmt::Write as _;

use dataflow::{enumerate_du_paths, Cfg, ReachingDefs};
use tdf_sim::ModuleClass;

use crate::assoc::Association;
use crate::design::Design;

/// Maximum number of static paths rendered per association.
const MAX_PATHS: usize = 16;

/// Renders an explanation of `assoc` against `design`, or `None` when the
/// association's coordinates cannot be resolved (e.g. a stale tuple).
pub fn explain_association(design: &Design, assoc: &Association) -> Option<String> {
    if assoc.is_intra_model() {
        explain_intra(design, assoc)
    } else {
        explain_cluster(design, assoc)
    }
}

fn explain_intra(design: &Design, assoc: &Association) -> Option<String> {
    let f = design.tu().processing(&assoc.def_model)?;
    let cfg = Cfg::from_function(f);
    let rd = ReachingDefs::compute(&cfg);
    let pair = rd.pairs().iter().find(|p| {
        p.var == assoc.var && rd.def(p.def).line == assoc.def_line && p.use_line == assoc.use_line
    })?;
    let paths = enumerate_du_paths(&cfg, &rd, pair, MAX_PATHS);
    let mut out = String::new();
    let _ = writeln!(out, "{assoc}: {} static path(s) def -> use", paths.len());
    let redef_nodes: Vec<usize> = rd
        .defs_of(&assoc.var)
        .iter()
        .filter(|d| d.id != pair.def)
        .map(|d| d.node)
        .collect();
    for (k, p) in paths.iter().enumerate() {
        let verdict = if p.is_du_path {
            "du-path"
        } else {
            "NOT a du-path"
        };
        let _ = writeln!(out, "  path {}: {verdict}", k + 1);
        for &n in &p.nodes {
            let node = cfg.node(n);
            let marker = if redef_nodes.contains(&n) {
                "  <-- redefines "
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    line {:>3}: {}{}{}",
                node.line,
                node.label,
                marker,
                if marker.is_empty() { "" } else { &assoc.var }
            );
        }
    }
    if paths.len() == MAX_PATHS {
        let _ = writeln!(out, "  (truncated at {MAX_PATHS} paths)");
    }
    Some(out)
}

fn explain_cluster(design: &Design, assoc: &Association) -> Option<String> {
    let netlist = design.netlist();
    let mut out = String::new();
    let _ = writeln!(out, "{assoc}: cluster-level flow");
    // Walk forward from the defining side. For redefined pairs the
    // def_model is the netlist model; find the component whose site matches.
    let origin = if design.tu().processing(&assoc.def_model).is_some() {
        (assoc.def_model.clone(), assoc.var.clone())
    } else {
        // Redefined: locate the component bound at (def_model, def_line).
        let comp = netlist.modules.iter().find(|m| {
            matches!(&m.class, ModuleClass::Redefining(site)
                if site.model == assoc.def_model && site.line == assoc.def_line)
        })?;
        let _ = writeln!(
            out,
            "  redefined by `{}` (binding at {}:{})",
            comp.name, assoc.def_model, assoc.def_line
        );
        (comp.name.clone(), comp.out_ports.first()?.clone())
    };
    // Render the chain from origin to the using model (first match).
    let mut cur = origin;
    let mut hops = 0;
    while hops < 32 {
        hops += 1;
        let mut advanced = false;
        for b in netlist.fanout(&cur.0, &cur.1) {
            match netlist.class_of(&b.to.model) {
                Some(ModuleClass::UserCode) if b.to.model == assoc.use_model => {
                    let _ = writeln!(
                        out,
                        "  {}.{} -> {}.{} (used at line {})",
                        b.from.model, b.from.port, b.to.model, b.to.port, assoc.use_line
                    );
                    return Some(out);
                }
                Some(ModuleClass::Redefining(site)) => {
                    let _ = writeln!(
                        out,
                        "  {}.{} -> {}.{} [redefining, site {site}]",
                        b.from.model, b.from.port, b.to.model, b.to.port
                    );
                    if let Some(info) = netlist.module(&b.to.model) {
                        if let Some(op) = info.out_ports.first() {
                            cur = (b.to.model.clone(), op.clone());
                            advanced = true;
                            break;
                        }
                    }
                }
                Some(ModuleClass::Transparent) => {
                    let _ = writeln!(
                        out,
                        "  {}.{} -> {}.{} [transparent]",
                        b.from.model, b.from.port, b.to.model, b.to.port
                    );
                    if let Some(info) = netlist.module(&b.to.model) {
                        if let Some(op) = info.out_ports.first() {
                            cur = (b.to.model.clone(), op.clone());
                            advanced = true;
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        if !advanced {
            break;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{DefSite, ModuleInfo, NetBinding, Netlist, PortRef};

    fn design() -> Design {
        let src = "\
void A::processing()
{
    double o = 0;
    if (ip_c) { o = 1; }
    op_y = o;
}
void B::processing()
{
    double v = ip_x;
    op_z = v;
}";
        let tu = minic::parse(src).unwrap();
        let models = vec![
            TdfModelDef::new("A", Interface::new().input("ip_c").output("op_y")),
            TdfModelDef::new("B", Interface::new().input("ip_x").output("op_z")),
        ];
        let bind = |fm: &str, fp: &str, tm: &str, tp: &str| NetBinding {
            from: PortRef::new(fm, fp),
            to: PortRef::new(tm, tp),
        };
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![
                bind("A", "op_y", "g1", "tdf_i"),
                bind("g1", "tdf_o", "B", "ip_x"),
            ],
            modules: vec![
                ModuleInfo {
                    name: "A".into(),
                    class: tdf_sim::ModuleClass::UserCode,
                    in_ports: vec!["ip_c".into()],
                    out_ports: vec!["op_y".into()],
                },
                ModuleInfo {
                    name: "B".into(),
                    class: tdf_sim::ModuleClass::UserCode,
                    in_ports: vec!["ip_x".into()],
                    out_ports: vec!["op_z".into()],
                },
                ModuleInfo {
                    name: "g1".into(),
                    class: tdf_sim::ModuleClass::Redefining(DefSite::new("top", 77)),
                    in_ports: vec!["tdf_i".into()],
                    out_ports: vec!["tdf_o".into()],
                },
            ],
        };
        Design::new(tu, models, netlist).unwrap()
    }

    #[test]
    fn intra_explanation_shows_both_paths() {
        let d = design();
        let text =
            explain_association(&d, &Association::new("o", 3, "A", 5, "A")).expect("explains");
        assert!(text.contains("2 static path(s)"), "{text}");
        assert!(text.contains("NOT a du-path"), "{text}");
        assert!(text.contains("du-path"), "{text}");
        assert!(text.contains("redefines o"), "{text}");
    }

    #[test]
    fn cluster_explanation_names_the_redefining_element() {
        let d = design();
        let text = explain_association(&d, &Association::new("op_y", 77, "top", 9, "B"))
            .expect("explains");
        assert!(text.contains("redefined by `g1`"), "{text}");
        assert!(text.contains("used at line 9"), "{text}");
    }

    #[test]
    fn unknown_association_yields_none() {
        let d = design();
        assert!(explain_association(&d, &Association::new("ghost", 1, "A", 2, "A")).is_none());
    }
}

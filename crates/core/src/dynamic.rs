//! Stage 2 of Fig. 3: dynamic analysis.
//!
//! Consumes the instrumentation event log of one testcase run and derives
//! the set of *exercised* def-use associations plus runtime warnings
//! (§V/§VI: "if there exists a use, but no definition, it is notified as a
//! warning").

use std::collections::{HashMap, HashSet};

use tdf_interp::VarKind;
use tdf_sim::{Event, SimTime};

use crate::assoc::Association;
use crate::design::Design;

/// A runtime finding of the dynamic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicWarning {
    /// A local variable was read before any definition executed.
    UseWithoutDef {
        /// Model name.
        model: String,
        /// Variable name.
        var: String,
        /// Use line.
        line: u32,
        /// First occurrence time.
        time: SimTime,
    },
    /// An input port delivered an *undefined* sample (the driving model
    /// never wrote its output port this activation, or the input is open) —
    /// undefined behaviour per the SystemC-AMS standard, found in both of
    /// the paper's case studies.
    UndefinedSampleRead {
        /// Model name.
        model: String,
        /// Port name.
        var: String,
        /// Use line.
        line: u32,
        /// First occurrence time.
        time: SimTime,
    },
}

/// Result of analysing one testcase's event log.
#[derive(Debug, Clone, Default)]
pub struct DynamicResult {
    /// Distinct associations exercised by the testcase.
    pub exercised: HashSet<Association>,
    /// Definition sites that executed at least once: `(model, var, line)`.
    /// Used by the uncovered-pair diagnosis (definition never ran vs. flow
    /// not observed).
    pub defs_executed: HashSet<(String, String, u32)>,
    /// Deduplicated runtime warnings, in first-occurrence order.
    pub warnings: Vec<DynamicWarning>,
}

/// Matches an event log into exercised associations.
///
/// * a **use with feeding provenance** (an input-port read of a sample
///   stamped by a remote model or a redefining component) exercises the
///   cluster association `(prov.var, prov.line, prov.model, line, model)`;
/// * a **use of an externally-driven input port** (no provenance but
///   defined) exercises the pseudo-def association at the model start line;
/// * a **local/member use** pairs with the most recent definition of that
///   variable in the same model (members are seeded with a start-line
///   pseudo-definition because elaboration initialises them).
pub fn analyse_events(design: &Design, events: &[Event]) -> DynamicResult {
    let _span = obs::span("stage.match");
    static EVENTS_MATCHED: obs::Counter = obs::Counter::new("match.events");
    EVENTS_MATCHED.add(events.len() as u64);
    let mut exercised: HashSet<Association> = HashSet::new();
    let mut defs_executed: HashSet<(String, String, u32)> = HashSet::new();
    let mut warnings: Vec<DynamicWarning> = Vec::new();
    let mut warned: HashSet<(String, String, u32)> = HashSet::new();
    // Last definition line per (model, var).
    let mut last_def: HashMap<(String, String), u32> = HashMap::new();

    // Seed members with their elaboration-time initial values.
    for def in design.models() {
        for (m, _) in &def.interface.members {
            last_def.insert(
                (def.model.clone(), m.clone()),
                design.start_line(&def.model),
            );
        }
    }

    for ev in events {
        match ev {
            Event::Def {
                model, var, line, ..
            } => {
                last_def.insert((model.clone(), var.clone()), *line);
                defs_executed.insert((model.clone(), var.clone(), *line));
            }
            Event::Use {
                time,
                model,
                var,
                line,
                feeding,
                defined,
            } => {
                if let Some(prov) = feeding {
                    defs_executed.insert((prov.model.clone(), prov.var.clone(), prov.line));
                    exercised.insert(Association::new(
                        prov.var.clone(),
                        prov.line,
                        prov.model.clone(),
                        *line,
                        model.clone(),
                    ));
                    continue;
                }
                let kind = design.kind_of(model, var);
                match kind {
                    VarKind::InPort(_) => {
                        if *defined {
                            exercised.insert(Association::new(
                                var.clone(),
                                design.start_line(model),
                                model.clone(),
                                *line,
                                model.clone(),
                            ));
                        } else if warned.insert((model.clone(), var.clone(), *line)) {
                            warnings.push(DynamicWarning::UndefinedSampleRead {
                                model: model.clone(),
                                var: var.clone(),
                                line: *line,
                                time: *time,
                            });
                        }
                    }
                    _ => match last_def.get(&(model.clone(), var.clone())) {
                        Some(&dline) => {
                            exercised.insert(Association::new(
                                var.clone(),
                                dline,
                                model.clone(),
                                *line,
                                model.clone(),
                            ));
                        }
                        None => {
                            if warned.insert((model.clone(), var.clone(), *line)) {
                                warnings.push(DynamicWarning::UseWithoutDef {
                                    model: model.clone(),
                                    var: var.clone(),
                                    line: *line,
                                    time: *time,
                                });
                            }
                        }
                    },
                }
            }
        }
    }

    static ASSOC_EXERCISED: obs::Counter = obs::Counter::new("match.associations_exercised");
    ASSOC_EXERCISED.add(exercised.len() as u64);
    DynamicResult {
        exercised,
        defs_executed,
        warnings,
    }
}

/// Matches many event logs at once, fanning the per-log work of
/// [`analyse_events`] out across up to `threads` scoped workers. Logs are
/// independent, so this is a pure speedup: results come back in input
/// order, identical to mapping [`analyse_events`] sequentially.
pub fn analyse_events_batch(
    design: &Design,
    logs: &[Vec<Event>],
    threads: usize,
) -> Vec<DynamicResult> {
    crate::par::par_map(logs, threads, |events| analyse_events(design, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{ModuleClass, ModuleInfo, Netlist, Provenance};

    fn design() -> Design {
        let src = "void M::processing()\n{\n    double t = ip_x;\n    op_y = t;\n}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_x")
                .output("op_y")
                .member("m_s", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![ModuleInfo {
                name: "M".into(),
                class: ModuleClass::UserCode,
                in_ports: vec!["ip_x".into()],
                out_ports: vec!["op_y".into()],
            }],
        };
        Design::new(tu, models, netlist).unwrap()
    }

    fn def(model: &str, var: &str, line: u32) -> Event {
        Event::Def {
            time: SimTime::ZERO,
            model: model.into(),
            var: var.into(),
            line,
        }
    }

    fn use_local(model: &str, var: &str, line: u32) -> Event {
        Event::Use {
            time: SimTime::ZERO,
            model: model.into(),
            var: var.into(),
            line,
            feeding: None,
            defined: true,
        }
    }

    #[test]
    fn local_use_pairs_with_last_def() {
        let d = design();
        let events = vec![
            def("M", "t", 3),
            use_local("M", "t", 4),
            def("M", "t", 9),
            use_local("M", "t", 10),
        ];
        let r = analyse_events(&d, &events);
        assert!(r.exercised.contains(&Association::new("t", 3, "M", 4, "M")));
        assert!(r
            .exercised
            .contains(&Association::new("t", 9, "M", 10, "M")));
        assert!(!r
            .exercised
            .contains(&Association::new("t", 3, "M", 10, "M")));
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn feeding_provenance_exercises_cluster_pair() {
        let d = design();
        let events = vec![Event::Use {
            time: SimTime::ZERO,
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: Some(Provenance::new("op_out", 14, "TS")),
            defined: true,
        }];
        let r = analyse_events(&d, &events);
        assert!(r
            .exercised
            .contains(&Association::new("op_out", 14, "TS", 3, "M")));
    }

    #[test]
    fn external_input_exercises_pseudo_def() {
        let d = design();
        let events = vec![Event::Use {
            time: SimTime::ZERO,
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: None,
            defined: true,
        }];
        let r = analyse_events(&d, &events);
        // M::processing() is on line 1.
        assert!(r
            .exercised
            .contains(&Association::new("ip_x", 1, "M", 3, "M")));
    }

    #[test]
    fn undefined_sample_warns_once() {
        let d = design();
        let ev = Event::Use {
            time: SimTime::from_us(3),
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: None,
            defined: false,
        };
        let r = analyse_events(&d, &[ev.clone(), ev]);
        assert_eq!(r.warnings.len(), 1);
        assert!(matches!(
            &r.warnings[0],
            DynamicWarning::UndefinedSampleRead { var, line: 3, .. } if var == "ip_x"
        ));
        assert!(r.exercised.is_empty());
    }

    #[test]
    fn local_use_without_def_warns() {
        let d = design();
        let r = analyse_events(&d, &[use_local("M", "t", 4)]);
        assert_eq!(r.warnings.len(), 1);
        assert!(matches!(
            &r.warnings[0],
            DynamicWarning::UseWithoutDef { var, .. } if var == "t"
        ));
    }

    #[test]
    fn member_initial_value_counts_as_start_line_def() {
        let d = design();
        let r = analyse_events(&d, &[use_local("M", "m_s", 3)]);
        assert!(
            r.warnings.is_empty(),
            "members are initialised at elaboration"
        );
        assert!(r
            .exercised
            .contains(&Association::new("m_s", 1, "M", 3, "M")));
    }

    #[test]
    fn member_redefinition_updates_pairing() {
        let d = design();
        let events = vec![
            def("M", "m_s", 7),
            use_local("M", "m_s", 3), // next activation, observes line 7
        ];
        let r = analyse_events(&d, &events);
        assert!(r
            .exercised
            .contains(&Association::new("m_s", 7, "M", 3, "M")));
    }
}

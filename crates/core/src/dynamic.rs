//! Stage 2 of Fig. 3: dynamic analysis.
//!
//! Consumes the instrumentation event log of one testcase run and derives
//! the set of *exercised* def-use associations plus runtime warnings
//! (§V/§VI: "if there exists a use, but no definition, it is notified as a
//! warning").
//!
//! Two equivalent forms exist: the batch functions here take a complete
//! event log, while [`crate::MatchCursor`] (built from the same
//! [`crate::MatchAutomaton`]) accepts events one at a time as the
//! simulation emits them — the streamed form sessions use by default.
//! `tests/match_equiv.rs` holds the byte-equivalence gates between them.

use std::collections::{HashMap, HashSet};

use dataflow::Cfg;
use tdf_interp::VarKind;
use tdf_sim::{Event, SimTime};

use crate::assoc::Association;
use crate::design::Design;

/// How strictly [`analyse_events_with_mode`] treats malformed event logs.
///
/// Strict mode trusts the log completely — the behaviour instrumented
/// simulations have always had. Lenient mode validates every event against
/// the design (known model, known variable, per-model monotone time) and
/// *quarantines* offenders instead of matching them: the event is dropped
/// from association matching, a structured [`DynamicWarning`] is recorded
/// once per offending site, and [`DynamicResult::quarantined`] counts the
/// total. On a healthy event log the two modes produce identical results;
/// on a corrupted log lenient mode never exercises *more* associations
/// than strict mode would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MatchMode {
    /// Trust the event log (historical behaviour).
    #[default]
    Strict,
    /// Validate events against the design and quarantine offenders.
    Lenient,
}

/// A runtime finding of the dynamic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicWarning {
    /// A local variable was read before any definition executed.
    UseWithoutDef {
        /// Model name.
        model: String,
        /// Variable name.
        var: String,
        /// Use line.
        line: u32,
        /// First occurrence time.
        time: SimTime,
    },
    /// An input port delivered an *undefined* sample (the driving model
    /// never wrote its output port this activation, or the input is open) —
    /// undefined behaviour per the SystemC-AMS standard, found in both of
    /// the paper's case studies.
    UndefinedSampleRead {
        /// Model name.
        model: String,
        /// Port name.
        var: String,
        /// Use line.
        line: u32,
        /// First occurrence time.
        time: SimTime,
    },
    /// (Lenient mode) An event carried a timestamp earlier than an
    /// already-observed event of the same model. Per-model local times are
    /// monotone non-decreasing in any well-formed log (global interleaving
    /// across models is *not* monotone, so the check is per model). The
    /// event was quarantined.
    NonMonotoneTimestamp {
        /// Model whose local time went backwards.
        model: String,
        /// The offending (earlier) timestamp.
        time: SimTime,
        /// The latest timestamp previously seen for this model.
        last: SimTime,
    },
    /// (Lenient mode) An event referenced a model that is neither a
    /// declared model, a netlist module, nor the cluster itself. The event
    /// was quarantined.
    UnknownModel {
        /// The unrecognised model name.
        model: String,
        /// First occurrence time.
        time: SimTime,
    },
    /// (Lenient mode) An event referenced a variable that appears neither
    /// in the model's interface nor anywhere in its `processing()` source.
    /// The event was quarantined.
    UnknownVariable {
        /// Model name.
        model: String,
        /// The unrecognised variable name.
        var: String,
        /// First occurrence time.
        time: SimTime,
    },
}

/// Result of analysing one testcase's event log.
#[derive(Debug, Clone, Default)]
pub struct DynamicResult {
    /// Distinct associations exercised by the testcase.
    pub exercised: HashSet<Association>,
    /// Definition sites that executed at least once: `(model, var, line)`.
    /// Used by the uncovered-pair diagnosis (definition never ran vs. flow
    /// not observed).
    pub defs_executed: HashSet<(String, String, u32)>,
    /// Deduplicated runtime warnings, in first-occurrence order.
    pub warnings: Vec<DynamicWarning>,
    /// Number of events quarantined by lenient validation (always 0 in
    /// strict mode).
    pub quarantined: u64,
}

/// Matches an event log into exercised associations.
///
/// * a **use with feeding provenance** (an input-port read of a sample
///   stamped by a remote model or a redefining component) exercises the
///   cluster association `(prov.var, prov.line, prov.model, line, model)`;
/// * a **use of an externally-driven input port** (no provenance but
///   defined) exercises the pseudo-def association at the model start line;
/// * a **local/member use** pairs with the most recent definition of that
///   variable in the same model (members are seeded with a start-line
///   pseudo-definition because elaboration initialises them).
pub fn analyse_events(design: &Design, events: &[Event]) -> DynamicResult {
    analyse_events_with_mode(design, events, MatchMode::Strict)
}

/// True when `model` exists somewhere in the design: a declared model
/// interface, a netlist module instance (library components included), or
/// the cluster architecture itself (provenance stamped by redefining
/// components and `parallel_print` carries the architecture name).
fn model_is_known(design: &Design, model: &str) -> bool {
    design.interface(model).is_some()
        || design.netlist().module(model).is_some()
        || model == design.netlist().cluster
}

/// Per-model vocabulary for lenient validation: interface names (ports and
/// members) plus every variable read or written anywhere in the model's
/// `processing()` source. Only models with a declared interface get an
/// entry — events of library/architecture models are not vocabulary-checked
/// because their "variables" are netlist port names, not source symbols.
fn known_variables(design: &Design) -> HashMap<String, HashSet<String>> {
    let mut vocab: HashMap<String, HashSet<String>> = HashMap::new();
    for def in design.models() {
        let mut names: HashSet<String> = HashSet::new();
        for p in &def.interface.inputs {
            names.insert(p.name.clone());
        }
        for p in &def.interface.outputs {
            names.insert(p.name.clone());
        }
        for (m, _) in &def.interface.members {
            names.insert(m.clone());
        }
        if let Some(f) = design.tu().processing(&def.model) {
            let cfg = Cfg::from_function(f);
            for node in cfg.nodes() {
                for d in &node.def_use.defs {
                    names.insert(d.name.clone());
                }
                for u in &node.def_use.uses {
                    names.insert(u.name.clone());
                }
            }
        }
        vocab.insert(def.model.clone(), names);
    }
    vocab
}

/// [`analyse_events`] with an explicit [`MatchMode`].
///
/// In [`MatchMode::Lenient`] each event is validated before matching:
/// unknown models, unknown variables and per-model backwards timestamps are
/// quarantined (skipped, warned once, counted). A quarantined *definition*
/// additionally poisons the pending `last_def` entry for its `(model, var)`
/// so that later uses report [`DynamicWarning::UseWithoutDef`] instead of
/// silently pairing with a stale older definition — this is what guarantees
/// lenient mode never exercises associations strict mode would not.
pub fn analyse_events_with_mode(
    design: &Design,
    events: &[Event],
    mode: MatchMode,
) -> DynamicResult {
    let _span = obs::span("stage.match");
    static EVENTS_MATCHED: obs::Counter = obs::Counter::new("match.events");
    static QUARANTINED: obs::Counter = obs::Counter::new("match.quarantined_events");
    EVENTS_MATCHED.add(events.len() as u64);

    // Lenient-mode validation vocabulary, in owned string form.
    let vocab_src = match mode {
        MatchMode::Strict => HashMap::new(),
        MatchMode::Lenient => known_variables(design),
    };

    // Per-call borrowing interner: every hot map below is keyed on these
    // compact ids instead of cloned `String` pairs, so steady-state
    // matching allocates nothing. Strings are materialised only on the
    // first occurrence of a site (a warning, an exercised pair, an
    // executed def). For the cross-session fast path see
    // [`MatchAutomaton`](crate::MatchAutomaton), which hoists the id
    // tables out of the per-call scope entirely.
    fn sym<'a>(ids: &mut HashMap<&'a str, u32>, s: &'a str) -> u32 {
        match ids.get(s) {
            Some(&id) => id,
            None => {
                let id = ids.len() as u32;
                ids.insert(s, id);
                id
            }
        }
    }
    let mut ids: HashMap<&str, u32> = HashMap::new();

    let mut exercised: HashSet<Association> = HashSet::new();
    let mut seen_pair: HashSet<(u32, u32, u32, u32, u32)> = HashSet::new();
    let mut defs_executed: HashSet<(String, String, u32)> = HashSet::new();
    let mut seen_def: HashSet<(u32, u32, u32)> = HashSet::new();
    let mut warnings: Vec<DynamicWarning> = Vec::new();
    let mut warned: HashSet<(u32, u32, u32)> = HashSet::new();
    // Last definition line per (model, var).
    let mut last_def: HashMap<(u32, u32), u32> = HashMap::new();

    // Lenient-mode validation state.
    let mut vocab: HashMap<u32, HashSet<u32>> = HashMap::new();
    for (model, names) in &vocab_src {
        let m = sym(&mut ids, model);
        let names: HashSet<u32> = names.iter().map(|n| sym(&mut ids, n)).collect();
        vocab.insert(m, names);
    }
    let mut last_time: HashMap<u32, SimTime> = HashMap::new();
    let mut quarantined: u64 = 0;
    let mut warned_models: HashSet<u32> = HashSet::new();
    let mut warned_times: HashSet<u32> = HashSet::new();
    let mut warned_vars: HashSet<(u32, u32)> = HashSet::new();
    // Design lookups scan the model list linearly; memoise per site.
    let mut known_memo: HashMap<u32, bool> = HashMap::new();
    let mut inport_memo: HashMap<(u32, u32), bool> = HashMap::new();
    let mut start_memo: HashMap<u32, u32> = HashMap::new();

    // Seed members with their elaboration-time initial values.
    for def in design.models() {
        let m = sym(&mut ids, &def.model);
        for (member, _) in &def.interface.members {
            let v = sym(&mut ids, member);
            last_def.insert((m, v), design.start_line(&def.model));
        }
    }

    for ev in events {
        let (time, model, var, line) = match ev {
            Event::Def {
                time,
                model,
                var,
                line,
            }
            | Event::Use {
                time,
                model,
                var,
                line,
                ..
            } => (*time, model.as_str(), var.as_str(), *line),
        };
        let msym = sym(&mut ids, model);
        let vsym = sym(&mut ids, var);
        if mode == MatchMode::Lenient {
            let known = *known_memo
                .entry(msym)
                .or_insert_with(|| model_is_known(design, model));
            // `Some(w)` quarantines the event; the inner option is the
            // warning to record (None once a site has already warned).
            let quarantine_reason: Option<Option<DynamicWarning>> =
                if !known {
                    Some(
                        warned_models
                            .insert(msym)
                            .then(|| DynamicWarning::UnknownModel {
                                model: model.to_string(),
                                time,
                            }),
                    )
                } else if let Some(&last) = last_time.get(&msym).filter(|&&last| time < last) {
                    Some(
                        warned_times
                            .insert(msym)
                            .then(|| DynamicWarning::NonMonotoneTimestamp {
                                model: model.to_string(),
                                time,
                                last,
                            }),
                    )
                } else if vocab.get(&msym).is_some_and(|names| !names.contains(&vsym)) {
                    Some(warned_vars.insert((msym, vsym)).then(|| {
                        DynamicWarning::UnknownVariable {
                            model: model.to_string(),
                            var: var.to_string(),
                            time,
                        }
                    }))
                } else if let Event::Use {
                    feeding: Some(prov),
                    ..
                } = ev
                {
                    // Provenance must also name a real model, else the pair
                    // it would exercise is fabricated.
                    let psym = sym(&mut ids, &prov.model);
                    let pknown = *known_memo
                        .entry(psym)
                        .or_insert_with(|| model_is_known(design, &prov.model));
                    (!pknown).then(|| {
                        warned_models
                            .insert(psym)
                            .then(|| DynamicWarning::UnknownModel {
                                model: prov.model.clone(),
                                time,
                            })
                    })
                } else {
                    None
                };
            if let Some(warning) = quarantine_reason {
                quarantined += 1;
                if let Some(w) = warning {
                    warnings.push(w);
                }
                // Poison the pending definition: a quarantined def must not
                // let later uses pair with an older, stale definition.
                if matches!(ev, Event::Def { .. }) {
                    last_def.remove(&(msym, vsym));
                }
                continue;
            }
            last_time.insert(msym, time);
        }
        match ev {
            Event::Def { .. } => {
                last_def.insert((msym, vsym), line);
                if seen_def.insert((msym, vsym, line)) {
                    defs_executed.insert((model.to_string(), var.to_string(), line));
                }
            }
            Event::Use {
                feeding, defined, ..
            } => {
                if let Some(prov) = feeding {
                    let pm = sym(&mut ids, &prov.model);
                    let pv = sym(&mut ids, &prov.var);
                    if seen_def.insert((pm, pv, prov.line)) {
                        defs_executed.insert((prov.model.clone(), prov.var.clone(), prov.line));
                    }
                    if seen_pair.insert((pv, prov.line, pm, line, msym)) {
                        exercised.insert(Association::new(
                            prov.var.clone(),
                            prov.line,
                            prov.model.clone(),
                            line,
                            model.to_string(),
                        ));
                    }
                    continue;
                }
                let inport = *inport_memo
                    .entry((msym, vsym))
                    .or_insert_with(|| matches!(design.kind_of(model, var), VarKind::InPort(_)));
                if inport {
                    if *defined {
                        let dline = *start_memo
                            .entry(msym)
                            .or_insert_with(|| design.start_line(model));
                        if seen_pair.insert((vsym, dline, msym, line, msym)) {
                            exercised.insert(Association::new(
                                var.to_string(),
                                dline,
                                model.to_string(),
                                line,
                                model.to_string(),
                            ));
                        }
                    } else if warned.insert((msym, vsym, line)) {
                        warnings.push(DynamicWarning::UndefinedSampleRead {
                            model: model.to_string(),
                            var: var.to_string(),
                            line,
                            time,
                        });
                    }
                } else {
                    match last_def.get(&(msym, vsym)) {
                        Some(&dline) => {
                            if seen_pair.insert((vsym, dline, msym, line, msym)) {
                                exercised.insert(Association::new(
                                    var.to_string(),
                                    dline,
                                    model.to_string(),
                                    line,
                                    model.to_string(),
                                ));
                            }
                        }
                        None => {
                            if warned.insert((msym, vsym, line)) {
                                warnings.push(DynamicWarning::UseWithoutDef {
                                    model: model.to_string(),
                                    var: var.to_string(),
                                    line,
                                    time,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    static ASSOC_EXERCISED: obs::Counter = obs::Counter::new("match.associations_exercised");
    ASSOC_EXERCISED.add(exercised.len() as u64);
    QUARANTINED.add(quarantined);
    DynamicResult {
        exercised,
        defs_executed,
        warnings,
        quarantined,
    }
}

/// Matches many event logs at once, fanning the per-log work of
/// [`analyse_events`] out across up to `threads` scoped workers. Logs are
/// independent, so this is a pure speedup: results come back in input
/// order, identical to mapping [`analyse_events`] sequentially.
pub fn analyse_events_batch(
    design: &Design,
    logs: &[Vec<Event>],
    threads: usize,
) -> Vec<DynamicResult> {
    analyse_events_batch_with_mode(design, logs, threads, MatchMode::Strict)
}

/// [`analyse_events_batch`] with an explicit [`MatchMode`] applied to every
/// log.
pub fn analyse_events_batch_with_mode(
    design: &Design,
    logs: &[Vec<Event>],
    threads: usize,
    mode: MatchMode,
) -> Vec<DynamicResult> {
    crate::par::par_map(logs, threads, |events| {
        analyse_events_with_mode(design, events, mode)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_interp::{Interface, TdfModelDef};
    use tdf_sim::{ModuleClass, ModuleInfo, Netlist, Provenance};

    fn design() -> Design {
        let src = "void M::processing()\n{\n    double t = ip_x;\n    op_y = t;\n}";
        let tu = minic::parse(src).unwrap();
        let models = vec![TdfModelDef::new(
            "M",
            Interface::new()
                .input("ip_x")
                .output("op_y")
                .member("m_s", 0i64),
        )];
        let netlist = Netlist {
            cluster: "top".into(),
            bindings: vec![],
            modules: vec![ModuleInfo {
                name: "M".into(),
                class: ModuleClass::UserCode,
                in_ports: vec!["ip_x".into()],
                out_ports: vec!["op_y".into()],
            }],
        };
        Design::new(tu, models, netlist).unwrap()
    }

    fn def(model: &str, var: &str, line: u32) -> Event {
        Event::Def {
            time: SimTime::ZERO,
            model: model.into(),
            var: var.into(),
            line,
        }
    }

    fn use_local(model: &str, var: &str, line: u32) -> Event {
        Event::Use {
            time: SimTime::ZERO,
            model: model.into(),
            var: var.into(),
            line,
            feeding: None,
            defined: true,
        }
    }

    #[test]
    fn local_use_pairs_with_last_def() {
        let d = design();
        let events = vec![
            def("M", "t", 3),
            use_local("M", "t", 4),
            def("M", "t", 9),
            use_local("M", "t", 10),
        ];
        let r = analyse_events(&d, &events);
        assert!(r.exercised.contains(&Association::new("t", 3, "M", 4, "M")));
        assert!(r
            .exercised
            .contains(&Association::new("t", 9, "M", 10, "M")));
        assert!(!r
            .exercised
            .contains(&Association::new("t", 3, "M", 10, "M")));
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn feeding_provenance_exercises_cluster_pair() {
        let d = design();
        let events = vec![Event::Use {
            time: SimTime::ZERO,
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: Some(Provenance::new("op_out", 14, "TS")),
            defined: true,
        }];
        let r = analyse_events(&d, &events);
        assert!(r
            .exercised
            .contains(&Association::new("op_out", 14, "TS", 3, "M")));
    }

    #[test]
    fn external_input_exercises_pseudo_def() {
        let d = design();
        let events = vec![Event::Use {
            time: SimTime::ZERO,
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: None,
            defined: true,
        }];
        let r = analyse_events(&d, &events);
        // M::processing() is on line 1.
        assert!(r
            .exercised
            .contains(&Association::new("ip_x", 1, "M", 3, "M")));
    }

    #[test]
    fn undefined_sample_warns_once() {
        let d = design();
        let ev = Event::Use {
            time: SimTime::from_us(3),
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: None,
            defined: false,
        };
        let r = analyse_events(&d, &[ev.clone(), ev]);
        assert_eq!(r.warnings.len(), 1);
        assert!(matches!(
            &r.warnings[0],
            DynamicWarning::UndefinedSampleRead { var, line: 3, .. } if var == "ip_x"
        ));
        assert!(r.exercised.is_empty());
    }

    #[test]
    fn local_use_without_def_warns() {
        let d = design();
        let r = analyse_events(&d, &[use_local("M", "t", 4)]);
        assert_eq!(r.warnings.len(), 1);
        assert!(matches!(
            &r.warnings[0],
            DynamicWarning::UseWithoutDef { var, .. } if var == "t"
        ));
    }

    #[test]
    fn member_initial_value_counts_as_start_line_def() {
        let d = design();
        let r = analyse_events(&d, &[use_local("M", "m_s", 3)]);
        assert!(
            r.warnings.is_empty(),
            "members are initialised at elaboration"
        );
        assert!(r
            .exercised
            .contains(&Association::new("m_s", 1, "M", 3, "M")));
    }

    #[test]
    fn member_redefinition_updates_pairing() {
        let d = design();
        let events = vec![
            def("M", "m_s", 7),
            use_local("M", "m_s", 3), // next activation, observes line 7
        ];
        let r = analyse_events(&d, &events);
        assert!(r
            .exercised
            .contains(&Association::new("m_s", 7, "M", 3, "M")));
    }

    fn def_at(model: &str, var: &str, line: u32, us: u64) -> Event {
        Event::Def {
            time: SimTime::from_us(us),
            model: model.into(),
            var: var.into(),
            line,
        }
    }

    fn use_at(model: &str, var: &str, line: u32, us: u64) -> Event {
        Event::Use {
            time: SimTime::from_us(us),
            model: model.into(),
            var: var.into(),
            line,
            feeding: None,
            defined: true,
        }
    }

    #[test]
    fn lenient_matches_strict_on_a_healthy_log() {
        let d = design();
        let events = vec![
            def_at("M", "t", 3, 0),
            use_at("M", "t", 4, 0),
            def_at("M", "m_s", 7, 1),
            use_at("M", "m_s", 3, 2),
            Event::Use {
                time: SimTime::from_us(2),
                model: "M".into(),
                var: "ip_x".into(),
                line: 3,
                feeding: Some(Provenance::new("op_y", 4, "M")),
                defined: true,
            },
        ];
        let strict = analyse_events_with_mode(&d, &events, MatchMode::Strict);
        let lenient = analyse_events_with_mode(&d, &events, MatchMode::Lenient);
        assert_eq!(strict.exercised, lenient.exercised);
        assert_eq!(strict.defs_executed, lenient.defs_executed);
        assert_eq!(strict.warnings, lenient.warnings);
        assert_eq!(lenient.quarantined, 0);
    }

    #[test]
    fn lenient_quarantines_unknown_models_and_warns_once() {
        let d = design();
        let events = vec![
            use_at("__ghost_model_0", "t", 4, 0),
            use_at("__ghost_model_0", "t", 4, 1),
        ];
        let r = analyse_events_with_mode(&d, &events, MatchMode::Lenient);
        assert_eq!(r.quarantined, 2);
        assert_eq!(r.warnings.len(), 1);
        assert!(matches!(
            &r.warnings[0],
            DynamicWarning::UnknownModel { model, .. } if model == "__ghost_model_0"
        ));
        assert!(r.exercised.is_empty());
    }

    #[test]
    fn lenient_accepts_cluster_named_events() {
        // Provenance and parallel_print events carry the architecture name.
        let d = design();
        let events = vec![Event::Use {
            time: SimTime::ZERO,
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: Some(Provenance::new("op_out", 14, "top")),
            defined: true,
        }];
        let r = analyse_events_with_mode(&d, &events, MatchMode::Lenient);
        assert_eq!(r.quarantined, 0);
        assert!(r
            .exercised
            .contains(&Association::new("op_out", 14, "top", 3, "M")));
    }

    #[test]
    fn lenient_quarantines_backward_time_and_poisons_the_def() {
        let d = design();
        let events = vec![
            def_at("M", "t", 3, 10),
            def_at("M", "t", 9, 0), // time warped backwards: quarantined
            use_at("M", "t", 10, 10),
        ];
        let r = analyse_events_with_mode(&d, &events, MatchMode::Lenient);
        assert_eq!(r.quarantined, 1);
        // The stale line-3 def must NOT pair with the line-10 use: the
        // quarantined redefinition poisoned it.
        assert!(r.exercised.is_empty());
        assert!(r.warnings.iter().any(
            |w| matches!(w, DynamicWarning::NonMonotoneTimestamp { model, .. } if model == "M")
        ));
        assert!(r
            .warnings
            .iter()
            .any(|w| matches!(w, DynamicWarning::UseWithoutDef { var, .. } if var == "t")));
    }

    #[test]
    fn lenient_quarantines_unknown_variables() {
        let d = design();
        let r = analyse_events_with_mode(
            &d,
            &[use_at("M", "__ghost_var_0", 4, 0)],
            MatchMode::Lenient,
        );
        assert_eq!(r.quarantined, 1);
        assert!(matches!(
            &r.warnings[0],
            DynamicWarning::UnknownVariable { var, .. } if var == "__ghost_var_0"
        ));
        assert!(r.exercised.is_empty());
    }

    #[test]
    fn lenient_quarantines_fabricated_provenance() {
        let d = design();
        let events = vec![Event::Use {
            time: SimTime::ZERO,
            model: "M".into(),
            var: "ip_x".into(),
            line: 3,
            feeding: Some(Provenance::new("op_out", 14, "__ghost_model_2")),
            defined: true,
        }];
        let r = analyse_events_with_mode(&d, &events, MatchMode::Lenient);
        assert_eq!(r.quarantined, 1);
        assert!(r.exercised.is_empty());
        assert!(matches!(
            &r.warnings[0],
            DynamicWarning::UnknownModel { model, .. } if model == "__ghost_model_2"
        ));
    }
}

//! End-to-end tests of the analysis server over real TCP connections:
//! correctness (responses match a locally-run pipeline byte for byte),
//! resilience (malformed input, deadlines, rejection, drain) and the
//! concurrency-equivalence guarantee (concurrent == sequential, warm and
//! cold cache, 1 and 4 matching threads).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use dft_serve::{start, Json, ServeConfig, ServerHandle};

fn test_config() -> ServeConfig {
    ServeConfig {
        retry_sleep: false,
        workers: 4,
        ..ServeConfig::default()
    }
}

/// One client connection speaking the line protocol.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send_raw(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(line.trim_end()).expect("response is valid JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send_raw(line);
        self.recv()
    }
}

fn status(v: &Json) -> &str {
    v.get("status").and_then(Json::as_str).unwrap_or("<none>")
}

fn tables(v: &Json) -> (String, String) {
    (
        v.get("table1")
            .and_then(Json::as_str)
            .expect("table1")
            .to_owned(),
        v.get("table2")
            .and_then(Json::as_str)
            .expect("table2")
            .to_owned(),
    )
}

#[test]
fn ping_metrics_and_malformed_lines() {
    let handle = start(test_config()).unwrap();
    let mut client = Client::connect(&handle);
    let pong = client.roundtrip(r#"{"op":"ping"}"#);
    assert_eq!(status(&pong), "ok");
    assert_eq!(pong.get("draining").and_then(Json::as_bool), Some(false));

    // Malformed lines get error responses on a live connection...
    for bad in [
        "this is not json",
        "{}",
        r#"{"op":"frobnicate"}"#,
        "[1,2,3]",
    ] {
        let resp = client.roundtrip(bad);
        assert_eq!(status(&resp), "error", "{bad}");
        assert!(resp.get("error").and_then(Json::as_str).is_some());
    }
    // ...and the connection still works afterwards.
    let resp = client.roundtrip(r#"{"op":"metrics"}"#);
    assert_eq!(status(&resp), "ok");
    assert!(resp.get("metrics").is_some());

    handle.begin_shutdown();
    handle.wait();
}

#[test]
fn analyse_matches_a_locally_run_pipeline() {
    use systemc_ams_dft_server_oracle::sensor_oracle;
    let handle = start(test_config()).unwrap();
    let mut client = Client::connect(&handle);
    let resp = client.roundtrip(r#"{"op":"analyse","id":"r1","design":"sensor"}"#);
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("r1"));
    assert_eq!(resp.get("cache").and_then(Json::as_str), Some("cold"));
    let (t1, _t2) = tables(&resp);
    assert_eq!(t1, sensor_oracle(), "served Table I == locally computed");
    let tcs = resp.get("testcases").and_then(Json::as_arr).unwrap();
    assert_eq!(tcs.len(), 3, "sensor suite is TC1..TC3");
    assert!(tcs
        .iter()
        .all(|t| t.get("outcome").and_then(Json::as_str) == Some("ok")));

    // The second request for the same design hits the artifact cache.
    let warm = client.roundtrip(r#"{"op":"analyse","id":"r2","design":"sensor"}"#);
    assert_eq!(warm.get("cache").and_then(Json::as_str), Some("warm"));
    assert_eq!(tables(&warm).0, t1, "warm response is byte-identical");

    // A different parameterisation is a different artifact (cold again).
    let buggy = client
        .roundtrip(r#"{"op":"analyse","id":"r3","design":{"name":"sensor","full_scale":511}}"#);
    assert_eq!(buggy.get("cache").and_then(Json::as_str), Some("cold"));

    handle.begin_shutdown();
    handle.wait();
}

/// Local oracle for the sensor Table I, computed through the library the
/// same way a client would check the server's work.
mod systemc_ams_dft_server_oracle {
    use ams_models::sensor;
    use dft_core::{render_table1, DftSession};

    pub fn sensor_oracle() -> String {
        sensor_oracle_at(sensor::FIXED_ADC_FULL_SCALE)
    }

    /// Like [`sensor_oracle`] but parameterised by ADC full-scale, with
    /// incremental artifact reuse forced off — a pure cold build to hold
    /// the server's incremental path against.
    pub fn sensor_oracle_at(full_scale: f64) -> String {
        use dft_core::{SessionArtifacts, SessionConfig};
        let design = sensor::sensor_design(full_scale).unwrap();
        let config = SessionConfig::from_env().with_incremental(false);
        let artifacts = SessionArtifacts::build_with(design, &config);
        let mut session = DftSession::from_artifacts(artifacts, config);
        for tc in sensor::sensor_testcases() {
            let (cluster, _) = sensor::build_sensor_cluster(&tc, full_scale).unwrap();
            session
                .run_testcase(&tc.name, cluster, tc.duration)
                .unwrap();
        }
        render_table1(&session.coverage())
    }
}

/// The three case studies, as analyse request lines. Subsets of the two
/// big suites keep the equivalence matrix fast while still spanning all
/// three designs.
fn case_study_requests(threads: usize) -> Vec<String> {
    vec![
        format!(
            r#"{{"op":"analyse","id":"sensor","tenant":"eq","design":"sensor","threads":{threads}}}"#
        ),
        format!(
            r#"{{"op":"analyse","id":"lifter","tenant":"eq","design":"window-lifter","threads":{threads},"testcases":["up_0","up_1","down_0","idle"]}}"#
        ),
        format!(
            r#"{{"op":"analyse","id":"bb","tenant":"eq","design":"buck-boost","threads":{threads},"testcases":["buck_0","buck_1","boost_0"]}}"#
        ),
    ]
}

/// Satellite: N concurrent clients get byte-identical Table I/II bodies
/// to a sequential client, warm cache and cold, at 1 and 4 threads.
#[test]
fn concurrent_responses_equal_sequential_warm_and_cold() {
    let handle = start(test_config()).unwrap();

    // Sequential, cold cache, threads=1 — the reference bodies.
    let mut client = Client::connect(&handle);
    let mut reference = Vec::new();
    for req in case_study_requests(1) {
        let resp = client.roundtrip(&req);
        assert_eq!(status(&resp), "ok", "{resp:?}");
        assert_eq!(resp.get("cache").and_then(Json::as_str), Some("cold"));
        reference.push(tables(&resp));
    }

    // Sequential, warm, threads=4.
    for (req, expected) in case_study_requests(4).iter().zip(&reference) {
        let resp = client.roundtrip(req);
        assert_eq!(resp.get("cache").and_then(Json::as_str), Some("warm"));
        assert_eq!(&tables(&resp), expected, "warm/threads=4 differs");
    }

    // Concurrent, warm, both thread counts: one client per case study.
    for threads in [1usize, 4] {
        let joins: Vec<_> = case_study_requests(threads)
            .into_iter()
            .map(|req| {
                let mut c = Client::connect(&handle);
                std::thread::spawn(move || c.roundtrip(&req))
            })
            .collect();
        for (join, expected) in joins.into_iter().zip(&reference) {
            let resp = join.join().unwrap();
            assert_eq!(status(&resp), "ok");
            assert_eq!(&tables(&resp), expected, "concurrent differs (t={threads})");
        }
    }
    handle.begin_shutdown();
    handle.wait();

    // Concurrent, cold: a fresh server, all three built in parallel.
    let handle = start(test_config()).unwrap();
    let joins: Vec<_> = case_study_requests(4)
        .into_iter()
        .map(|req| {
            let mut c = Client::connect(&handle);
            std::thread::spawn(move || c.roundtrip(&req))
        })
        .collect();
    for (join, expected) in joins.into_iter().zip(&reference) {
        let resp = join.join().unwrap();
        assert_eq!(resp.get("cache").and_then(Json::as_str), Some("cold"));
        assert_eq!(&tables(&resp), expected, "concurrent-cold differs");
    }
    handle.begin_shutdown();
    handle.wait();
}

/// Tentpole: assertions ride the analyse request and verdicts ride the
/// response — evaluated in the same simulation pass as coverage. The
/// probe's producer doubles its input, so P1 (level 1.0) drives
/// `producer.op_y` to 2.0 from the very first activation.
#[test]
fn analyse_with_assertions_returns_verdicts() {
    let handle = start(test_config()).unwrap();
    let mut client = Client::connect(&handle);
    let resp = client.roundtrip(
        r#"{"op":"analyse","id":"a1","design":"probe","testcases":["P1"],"assertions":[{"name":"bounded","assert":{"op":"never_above","signal":"producer.op_y","level":10.0}},{"name":"small","assert":{"op":"never_above","signal":"producer.op_y","level":1.5}}]}"#,
    );
    assert_eq!(status(&resp), "ok", "{resp:?}");
    let verdicts = resp
        .get("verdicts")
        .and_then(Json::as_arr)
        .expect("verdicts");
    assert_eq!(verdicts.len(), 1, "one entry per testcase");
    let tc = &verdicts[0];
    assert_eq!(tc.get("testcase").and_then(Json::as_str), Some("P1"));
    let vs = tc.get("verdicts").and_then(Json::as_arr).unwrap();
    assert_eq!(vs.len(), 2, "spec order, one verdict per assertion");
    assert_eq!(vs[0].get("name").and_then(Json::as_str), Some("bounded"));
    assert_eq!(vs[0].get("verdict").and_then(Json::as_str), Some("holds"));
    assert_eq!(vs[1].get("name").and_then(Json::as_str), Some("small"));
    assert_eq!(vs[1].get("verdict").and_then(Json::as_str), Some("fails"));
    // Lossless femtosecond time comes back as a string; op_y first
    // exceeds 1.5 at the producer's very first activation (t = 0).
    assert_eq!(
        vs[1].get("first_violation_fs").and_then(Json::as_str),
        Some("0")
    );

    // An assertion-free request carries no verdicts key at all, so
    // pre-existing clients see byte-identical responses.
    let plain =
        client.roundtrip(r#"{"op":"analyse","id":"a2","design":"probe","testcases":["P1"]}"#);
    assert_eq!(status(&plain), "ok");
    assert!(
        plain.get("verdicts").is_none(),
        "no assertions, no verdicts"
    );

    // Malformed assertion specs are protocol errors, not crashes.
    let bad = client.roundtrip(
        r#"{"op":"analyse","id":"a3","design":"probe","assertions":[{"name":"x","assert":{"op":"sometime"}}]}"#,
    );
    assert_eq!(status(&bad), "error", "{bad:?}");
    handle.begin_shutdown();
    handle.wait();
}

/// A probe testcase that simulates far longer than any test deadline.
fn runaway_request(id: &str, deadline_ms: u64, retries: u32) -> String {
    format!(
        r#"{{"op":"analyse","id":"{id}","design":"probe","deadline_ms":{deadline_ms},"retries":{retries},"testcases":[{{"name":"RUNAWAY","duration_us":30000000,"channels":{{"level":{{"kind":"constant","level":1}}}}}}]}}"#
    )
}

#[test]
fn deadlines_degrade_the_request_not_the_server() {
    let handle = start(test_config()).unwrap();
    let mut client = Client::connect(&handle);
    let resp = client.roundtrip(&runaway_request("dl", 60, 2));
    assert_eq!(status(&resp), "degraded", "{resp:?}");
    let tcs = resp.get("testcases").and_then(Json::as_arr).unwrap();
    assert_eq!(
        tcs[0].get("outcome").and_then(Json::as_str),
        Some("timed-out")
    );
    // The absolute deadline is not escalated by retries: all three
    // attempts trip it, and the supervisor reports them.
    assert_eq!(tcs[0].get("attempts").and_then(Json::as_u64), Some(3));
    assert_eq!(tcs[0].get("salvaged").and_then(Json::as_bool), Some(false));
    // The server (and the very same connection) survive.
    assert_eq!(status(&client.roundtrip(r#"{"op":"ping"}"#)), "ok");
    handle.begin_shutdown();
    handle.wait();
}

#[test]
fn overload_rejects_with_retry_hints() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        per_tenant_in_flight: 1,
        retry_sleep: false,
        ..ServeConfig::default()
    };
    let handle = start(config).unwrap();

    // Occupy the single worker with a runaway request (bounded by its own
    // deadline so the test always terminates).
    let mut busy = Client::connect(&handle);
    busy.send_raw(&runaway_request("busy", 2000, 0));
    std::thread::sleep(Duration::from_millis(150)); // let it start executing

    // Same tenant (anonymous) again: per-tenant cap trips.
    let mut second = Client::connect(&handle);
    let rej = second.roundtrip(r#"{"op":"analyse","id":"t2","design":"probe","testcases":["P1"]}"#);
    assert_eq!(status(&rej), "rejected", "{rej:?}");
    assert_eq!(
        rej.get("reason").and_then(Json::as_str),
        Some("tenant-busy")
    );
    assert!(rej.get("retry_after_ms").and_then(Json::as_u64).unwrap() > 0);

    // A second tenant fits in the queue; a third finds it full.
    let mut t3 = Client::connect(&handle);
    t3.send_raw(
        r#"{"op":"analyse","id":"t3","tenant":"other","design":"probe","testcases":["P1"]}"#,
    );
    std::thread::sleep(Duration::from_millis(100)); // let it enqueue
    let mut t4 = Client::connect(&handle);
    let full = t4.roundtrip(
        r#"{"op":"analyse","id":"t4","tenant":"third","design":"probe","testcases":["P1"]}"#,
    );
    assert_eq!(status(&full), "rejected");
    assert_eq!(
        full.get("reason").and_then(Json::as_str),
        Some("queue-full")
    );

    // Everything admitted still completes.
    assert_eq!(status(&busy.recv()), "degraded"); // deadline-tripped runaway
    assert_eq!(status(&t3.recv()), "ok");
    handle.begin_shutdown();
    handle.wait();
}

#[test]
fn shutdown_drains_in_flight_work() {
    let handle = start(ServeConfig {
        workers: 1,
        retry_sleep: false,
        ..ServeConfig::default()
    })
    .unwrap();

    // A request that takes a while (bounded by its deadline).
    let mut slow = Client::connect(&handle);
    slow.send_raw(&runaway_request("slow", 800, 0));
    std::thread::sleep(Duration::from_millis(100));

    // In-band shutdown (same path as SIGTERM in the binary).
    let mut admin = Client::connect(&handle);
    let ack = admin.roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));

    // New work is rejected while draining...
    let rej =
        admin.roundtrip(r#"{"op":"analyse","id":"late","design":"probe","testcases":["P1"]}"#);
    assert_eq!(status(&rej), "rejected");
    assert_eq!(rej.get("reason").and_then(Json::as_str), Some("draining"));

    // ...but the in-flight request is answered before the server exits.
    let resp = slow.recv();
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("slow"));
    assert_eq!(status(&resp), "degraded");
    handle.wait();
}

#[test]
fn oversized_lines_are_answered_then_the_connection_closes() {
    let handle = start(test_config()).unwrap();
    let mut client = Client::connect(&handle);
    let huge = "x".repeat(dft_serve::MAX_LINE_BYTES + 16);
    client.send_raw(&huge);
    let resp = client.recv();
    assert_eq!(status(&resp), "error");
    assert!(resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("1 MiB"));
    // That connection is closed; a fresh one works.
    let mut fresh = Client::connect(&handle);
    assert_eq!(status(&fresh.roundtrip(r#"{"op":"ping"}"#)), "ok");
    handle.begin_shutdown();
    handle.wait();
}

#[cfg(feature = "fault-inject")]
mod fault_soak {
    use super::*;

    #[test]
    fn injected_panics_degrade_responses_never_the_server() {
        let handle = start(test_config()).unwrap();
        let mut client = Client::connect(&handle);
        let resp = client.roundtrip(
            r#"{"op":"analyse","id":"f1","design":"probe","retries":1,"testcases":["P1","P2"],"fault":{"kind":"panic_after","after":2}}"#,
        );
        assert_eq!(status(&resp), "degraded", "{resp:?}");
        let tcs = resp.get("testcases").and_then(Json::as_arr).unwrap();
        for tc in tcs {
            // The saboteur is deterministic, so every retry panics too:
            // budget exhausted, outcome stays panicked.
            assert_eq!(tc.get("outcome").and_then(Json::as_str), Some("panicked"));
            assert_eq!(tc.get("attempts").and_then(Json::as_u64), Some(2));
        }
        assert_eq!(status(&client.roundtrip(r#"{"op":"ping"}"#)), "ok");
        handle.begin_shutdown();
        handle.wait();
    }

    #[test]
    fn corrupted_event_streams_stay_answered() {
        let handle = start(test_config()).unwrap();
        let mut client = Client::connect(&handle);
        let resp = client.roundtrip(
            r#"{"op":"analyse","id":"f2","design":"probe","testcases":["P1"],"fault":{"kind":"corrupt_events","seed":7,"rate":0.5}}"#,
        );
        // Lenient matching absorbs the corruption: the run completes (with
        // warnings), the server stays healthy.
        assert!(matches!(status(&resp), "ok" | "degraded"), "{resp:?}");
        assert_eq!(status(&client.roundtrip(r#"{"op":"ping"}"#)), "ok");
        handle.begin_shutdown();
        handle.wait();
    }

    #[test]
    fn soak_many_sabotaged_requests_concurrently() {
        let handle = start(test_config()).unwrap();
        let joins: Vec<_> = (0..8)
            .map(|i| {
                let mut c = Client::connect(&handle);
                let kind = match i % 3 {
                    0 => r#"{"kind":"panic_after","after":1}"#,
                    1 => r#"{"kind":"corrupt_events","seed":9,"rate":0.3}"#,
                    _ => r#"{"kind":"stall","after":0,"stall_ms":50}"#,
                };
                let req = format!(
                    r#"{{"op":"analyse","id":"soak{i}","design":"probe","retries":0,"deadline_ms":200,"testcases":["P1"],"fault":{kind}}}"#
                );
                std::thread::spawn(move || c.roundtrip(&req))
            })
            .collect();
        for join in joins {
            let resp = join.join().unwrap();
            let s = status(&resp);
            assert!(
                matches!(s, "ok" | "degraded" | "rejected"),
                "unexpected status {s}: {resp:?}"
            );
        }
        // After the soak, the server still answers cleanly.
        let mut c = Client::connect(&handle);
        let clean = c.roundtrip(r#"{"op":"analyse","id":"clean","design":"probe"}"#);
        assert_eq!(status(&clean), "ok", "{clean:?}");
        handle.begin_shutdown();
        handle.wait();
    }
}

/// Tentpole: a one-model edit (new ADC full-scale) misses the
/// whole-design cache tier but is rebuilt incrementally from the family's
/// previous build — and the served tables stay byte-identical to a pure
/// cold build with incremental reuse forced off.
#[test]
fn one_model_edit_is_served_incrementally() {
    use systemc_ams_dft_server_oracle::sensor_oracle_at;
    let handle = start(test_config()).unwrap();
    let mut client = Client::connect(&handle);

    let cold = client.roundtrip(r#"{"op":"analyse","id":"i1","design":"sensor"}"#);
    assert_eq!(status(&cold), "ok", "{cold:?}");
    assert_eq!(cold.get("cache").and_then(Json::as_str), Some("cold"));
    assert_eq!(cold.get("artifact").and_then(Json::as_str), Some("cold"));

    // Same family, edited ADC interface: cold at the whole-design tier,
    // incremental at the per-model tier — unless the suite runs with
    // DFT_INCR=0, where the fallback tier is off and the edit is simply
    // cold (the served tables must be byte-identical either way).
    let incremental_on = dft_core::incremental_enabled();
    let edited = client
        .roundtrip(r#"{"op":"analyse","id":"i2","design":{"name":"sensor","full_scale":511}}"#);
    assert_eq!(status(&edited), "ok", "{edited:?}");
    assert_eq!(edited.get("cache").and_then(Json::as_str), Some("cold"));
    assert_eq!(
        edited.get("artifact").and_then(Json::as_str),
        Some(if incremental_on {
            "incremental"
        } else {
            "cold"
        }),
        "{edited:?}"
    );
    // A one-model edit rebuilds at most the edited model — possibly zero
    // when the process-wide per-model cache already holds it (other tests
    // in this binary analyse the fs=511 parameterisation too).
    let rebuilt = edited
        .get("timings")
        .and_then(|t| t.get("models_rebuilt"))
        .and_then(Json::as_f64)
        .expect("timings.models_rebuilt");
    if incremental_on {
        assert!(
            (0.0..=1.0).contains(&rebuilt),
            "one-model edit rebuilt {rebuilt} models"
        );
    } else {
        assert!(rebuilt >= 1.0, "cold build rebuilt {rebuilt} models");
    }
    assert_eq!(
        tables(&edited).0,
        sensor_oracle_at(511.0),
        "incremental rebuild must be byte-identical to a cold build"
    );

    // Repeating the edited design hits the whole-design tier.
    let warm = client
        .roundtrip(r#"{"op":"analyse","id":"i3","design":{"name":"sensor","full_scale":511}}"#);
    assert_eq!(warm.get("cache").and_then(Json::as_str), Some("warm"));
    assert_eq!(warm.get("artifact").and_then(Json::as_str), Some("warm"));

    handle.begin_shutdown();
    handle.wait();
}

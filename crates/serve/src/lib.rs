//! # dft-serve — resilient DFT-as-a-service
//!
//! A multi-tenant analysis server wrapping the [`dft_core`] pipeline:
//! long-lived TCP, one JSON request per line, one JSON response per line.
//! Built for *robustness* rather than raw throughput:
//!
//! * **admission control** ([`admission`]) — a bounded queue with
//!   per-tenant in-flight caps; overload answers `rejected` with a
//!   `retry_after_ms` hint instead of queueing without bound;
//! * **deadlines** — a request's `deadline_ms` maps onto the simulator's
//!   cooperative [`tdf_sim::RunLimits`] cancellation, so a runaway
//!   testcase returns `timed-out` with partial coverage instead of
//!   occupying a worker;
//! * **retry with backoff** — transient per-testcase failures (panics,
//!   tripped budgets) are rerun with exponential backoff and escalating
//!   budgets ([`dft_core::RetryPolicy`]); deterministic failures are
//!   permanent immediately;
//! * **artifact cache** ([`cache`]) — frozen design + static analysis +
//!   match automaton, content-hashed, shared across tenants: warm
//!   requests skip elaboration entirely;
//! * **graceful shutdown** — SIGTERM or an in-band `shutdown` request
//!   drains in-flight work, rejects new work, then closes.
//!
//! Zero heavy dependencies, in the `obs` tradition: hand-rolled JSON
//! ([`json`]), `std::net` sockets, `Mutex` + `Condvar` scheduling.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod json;
pub mod probe;
pub mod proto;
pub mod server;

pub use admission::{AdmissionConfig, Queue, RejectReason, Rejection};
pub use cache::ArtifactCache;
pub use json::Json;
pub use proto::{AnalyseRequest, DesignRef, FaultSpec, ProtoError, Request, TestcaseSel};
pub use server::{start, ServeConfig, ServerHandle, MAX_LINE_BYTES};

//! A minimal, zero-dependency JSON value type with a strict parser and a
//! writer — just enough for the newline-delimited protocol of
//! [`crate::server`]. Hand-rolled in the `crates/obs` tradition: no
//! serde, no macros, bounded recursion.
//!
//! Robustness properties the server relies on:
//!
//! * parsing never panics — every malformed input returns a
//!   [`JsonError`] naming the byte offset;
//! * nesting depth is capped at [`MAX_DEPTH`] so adversarial inputs
//!   cannot overflow the stack;
//! * the writer escapes every control character, so rendered reports
//!   (which contain newlines) round-trip through one protocol line.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum array/object nesting the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), which also makes every
    /// serialized response byte-deterministic.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable reason.
    pub reason: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a single line (no raw newlines — all control
    /// characters are escaped), suitable for the line-delimited protocol.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without the trailing ".0" so
                    // ids round-trip textually.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emitting an unparseable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            reason: reason.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits at the cursor (leaving the cursor
    /// after them) and returns the code unit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_line()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":1e3}"#).unwrap();
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        // Round trip preserves structure.
        assert_eq!(Json::parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn multiline_reports_serialize_to_one_line() {
        let v = Json::obj([("table", Json::str("row1\nrow2\n\trow3"))]);
        let line = v.to_line();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_inputs_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "nul",
            "1.",
            "1e",
            "\"\\x\"",
            "\"unterminated",
            "01x",
            "{\"a\":1} extra",
            "\"\\udc00\"",
            "\"\\ud800\"",
            "[1 2]",
            "\u{1}",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.reason.contains("deep"), "{err}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(42.0).to_line(), "42");
        assert_eq!(Json::num(2.5).to_line(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::num(3.0).as_u64(), Some(3));
        assert_eq!(Json::num(3.5).as_u64(), None);
        assert_eq!(Json::num(-1.0).as_u64(), None);
        assert_eq!(Json::str("3").as_u64(), None);
    }
}

//! Content-addressed cache of frozen [`SessionArtifacts`].
//!
//! The static stage (elaboration + def-use analysis + automaton build) is
//! by far the most expensive part of a request on small batches, and it
//! depends only on the design source and its elaboration parameters — so
//! artifacts are keyed by an FNV-1a hash of exactly that material
//! ([`crate::proto::DesignRef::cache_key_material`]) plus the tracking
//! mode the automaton is built with, and shared across tenants via `Arc`.
//!
//! The cache is bounded: once `capacity` distinct designs are resident,
//! the **least-recently-used** entry is evicted. Lookups promote their
//! entry to most-recently-used, so a hot design interleaved with many
//! one-off designs stays resident no matter how many distinct keys pass
//! through (the FIFO policy this replaces evicted it regardless of hits).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use dft_core::{obs, SessionArtifacts};

/// FNV-1a, the same zero-dependency hash the interner uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Entry {
    key: u64,
    artifacts: Arc<SessionArtifacts>,
}

/// A bounded, thread-safe artifact cache.
pub struct ArtifactCache {
    entries: Mutex<VecDeque<Entry>>,
    capacity: usize,
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` designs (min 1).
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, or builds the artifacts with `build` on a miss.
    ///
    /// Returns `(artifacts, warm)` where `warm` reports whether this was
    /// a cache hit — surfaced in responses so clients (and the latency
    /// experiment) can attribute cold-start cost. `build` runs outside
    /// the lock, so a slow elaboration never blocks concurrent lookups of
    /// other designs; two racing cold requests for the *same* design may
    /// both build, and the first insert wins.
    pub fn get_or_build<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<Arc<SessionArtifacts>, E>,
    ) -> Result<(Arc<SessionArtifacts>, bool), E> {
        static HITS: obs::Counter = obs::Counter::new("serve.cache.hits");
        static MISSES: obs::Counter = obs::Counter::new("serve.cache.misses");
        static EVICTIONS: obs::Counter = obs::Counter::new("serve.cache.evictions");
        if let Some(found) = self.lookup(key) {
            HITS.add(1);
            return Ok((found, true));
        }
        MISSES.add(1);
        let built = build()?;
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(raced) = entries.iter().find(|e| e.key == key) {
            // Another worker built the same design while we did; keep the
            // resident copy so all sessions share one automaton.
            return Ok((Arc::clone(&raced.artifacts), false));
        }
        while entries.len() >= self.capacity {
            entries.pop_front();
            EVICTIONS.add(1);
        }
        entries.push_back(Entry {
            key,
            artifacts: Arc::clone(&built),
        });
        Ok((built, false))
    }

    /// Finds `key` and promotes it to most-recently-used (back of the
    /// eviction queue), so constant hitters survive churn from one-off
    /// designs.
    fn lookup(&self, key: u64) -> Option<Arc<SessionArtifacts>> {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let pos = entries.iter().position(|e| e.key == key)?;
        let entry = entries.remove(pos).expect("position came from this deque");
        let found = Arc::clone(&entry.artifacts);
        entries.push_back(entry);
        Some(found)
    }

    /// Number of resident designs.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::probe_design;
    use dft_core::SessionConfig;

    fn build_probe() -> Result<Arc<SessionArtifacts>, String> {
        let design = probe_design().map_err(|e| e.to_string())?;
        Ok(SessionArtifacts::build_with(
            design,
            &SessionConfig::from_env(),
        ))
    }

    #[test]
    fn second_lookup_is_warm_and_shares_the_arc() {
        let cache = ArtifactCache::new(4);
        let (cold, warm) = cache.get_or_build(42, build_probe).unwrap();
        assert!(!warm);
        let (hit, warm) = cache
            .get_or_build(42, || -> Result<_, String> {
                panic!("warm path must not rebuild")
            })
            .unwrap();
        assert!(warm);
        assert!(Arc::ptr_eq(&cold, &hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bounds_residency() {
        let cache = ArtifactCache::new(2);
        for key in 0..5u64 {
            cache.get_or_build(key, build_probe).unwrap();
        }
        assert_eq!(cache.len(), 2);
        // Least-recently-used evicted: key 3 and 4 remain.
        let (_, warm) = cache.get_or_build(4, build_probe).unwrap();
        assert!(warm);
        let (_, warm) = cache.get_or_build(0, build_probe).unwrap();
        assert!(!warm, "key 0 was evicted");
    }

    #[test]
    fn hot_entry_survives_capacity_many_distinct_inserts() {
        // The LRU regression: a repeatedly-hit design must stay resident
        // while capacity-many (and more) one-off designs churn through.
        // Under the old FIFO policy the hot entry was evicted regardless
        // of its hits.
        let cache = ArtifactCache::new(2);
        let (hot, _) = cache.get_or_build(100, build_probe).unwrap();
        for key in 0..4u64 {
            cache.get_or_build(key, build_probe).unwrap();
            let (again, warm) = cache
                .get_or_build(100, || -> Result<_, String> {
                    panic!("hot entry must never rebuild")
                })
                .unwrap();
            assert!(warm, "hot entry evicted after one-off insert {key}");
            assert!(Arc::ptr_eq(&hot, &again));
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn build_failures_are_not_cached() {
        let cache = ArtifactCache::new(2);
        let err = cache.get_or_build(7, || Err::<Arc<SessionArtifacts>, _>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        // A later successful build for the same key still works.
        let (_, warm) = cache.get_or_build(7, build_probe).unwrap();
        assert!(!warm);
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"sensor;fs=1"), fnv1a(b"sensor;fs=2"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }
}

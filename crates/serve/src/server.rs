//! The resilient analysis server: a long-lived TCP listener speaking
//! newline-delimited JSON, an admission-controlled job queue, and a fixed
//! worker pool running the full static → simulate → match pipeline per
//! request.
//!
//! Resilience invariants (exercised by `tests/server.rs`):
//!
//! * a malformed line, a panicking module, a tripped deadline or a
//!   fault-injected cluster produce an **error or degraded response**,
//!   never a dead connection or a dead server;
//! * overload produces an immediate `rejected` response with a
//!   `retry_after_ms` hint instead of unbounded queueing;
//! * responses are **byte-deterministic**: concurrent clients get the
//!   same table bodies a sequential run produces, warm or cold cache;
//! * SIGTERM (or an in-band `shutdown` request) drains: queued and
//!   executing jobs are answered, new work is rejected, then the
//!   listener closes and [`ServerHandle::wait`] returns the final
//!   metrics snapshot.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::admission::{AdmissionConfig, Queue, Rejection};
use crate::cache::{fnv1a, ArtifactCache};
use crate::json::Json;
use crate::proto::{AnalyseRequest, Request, TestcaseSel};
use dft_core::{
    obs, render_table1, render_table2, DftSession, MetricsReport, RetryPolicy, RetryReport,
    RunOutcome, SessionArtifacts, SessionConfig, Table2Row, TestcaseResult, Verdict,
};
use tdf_sim::RunLimits;

/// Longest accepted request line (bytes). Anything longer is answered
/// with an error and the connection is closed — a client streaming an
/// unterminated line cannot balloon server memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker-pool size (jobs executing concurrently).
    pub workers: usize,
    /// Admission-queue capacity (jobs waiting beyond the executing ones).
    pub queue_capacity: usize,
    /// Per-tenant queued + executing cap.
    pub per_tenant_in_flight: usize,
    /// Artifact-cache capacity in designs.
    pub cache_capacity: usize,
    /// Default transient-failure retry budget per testcase (requests may
    /// lower or raise their own within `[0, 16]`).
    pub default_retries: u32,
    /// Base backoff between retry attempts.
    pub retry_backoff: Duration,
    /// Whether retries actually sleep their backoff (tests disable).
    pub retry_sleep: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 32,
            per_tenant_in_flight: 4,
            cache_capacity: 8,
            default_retries: 2,
            retry_backoff: Duration::from_millis(25),
            retry_sleep: true,
        }
    }
}

impl ServeConfig {
    /// Reads overrides from `DFT_SERVE_*` environment variables
    /// (`ADDR`, `WORKERS`, `QUEUE`, `TENANT_CAP`, `CACHE`, `RETRIES`).
    pub fn from_env() -> ServeConfig {
        fn var<T: std::str::FromStr>(key: &str) -> Option<T> {
            std::env::var(key).ok()?.parse().ok()
        }
        let mut cfg = ServeConfig::default();
        if let Ok(addr) = std::env::var("DFT_SERVE_ADDR") {
            cfg.addr = addr;
        }
        if let Some(n) = var::<usize>("DFT_SERVE_WORKERS") {
            cfg.workers = n.clamp(1, 64);
        }
        if let Some(n) = var::<usize>("DFT_SERVE_QUEUE") {
            cfg.queue_capacity = n.max(1);
        }
        if let Some(n) = var::<usize>("DFT_SERVE_TENANT_CAP") {
            cfg.per_tenant_in_flight = n.max(1);
        }
        if let Some(n) = var::<usize>("DFT_SERVE_CACHE") {
            cfg.cache_capacity = n.max(1);
        }
        if let Some(n) = var::<u32>("DFT_SERVE_RETRIES") {
            cfg.default_retries = n.min(16);
        }
        cfg
    }
}

/// One admitted analysis job: the parsed request plus the channel its
/// response travels back to the connection thread on.
struct Job {
    request: Box<AnalyseRequest>,
    reply: mpsc::Sender<String>,
}

struct Shared {
    queue: Queue<Job>,
    cache: ArtifactCache,
    config: ServeConfig,
    /// The per-process session knobs requests start from (environment,
    /// resolved once at server start — satellite of the SessionConfig
    /// refactor: no hot-path env reads per request).
    base_session: SessionConfig,
    /// Second cache tier: the last frozen artifacts per design *family*
    /// (+ tracking mode). A whole-design miss — typically an edited
    /// parameterisation of a known family — rebuilds incrementally from
    /// this instead of cold, splicing every model the edit left
    /// unchanged. Bounded by the design-family enum, so no eviction.
    prev_builds: Mutex<HashMap<String, Arc<SessionArtifacts>>>,
    connections: AtomicUsize,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::begin_shutdown`] then [`ServerHandle::wait`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: new `analyse` requests are rejected,
    /// queued and executing ones complete, workers then exit.
    pub fn begin_shutdown(&self) {
        self.shared.queue.begin_drain();
    }

    /// True once a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.queue.is_draining()
    }

    /// Blocks until the drain completes and every thread has exited, then
    /// returns the final process-wide metrics snapshot. Call
    /// [`ServerHandle::begin_shutdown`] first (or send a `shutdown`
    /// request / SIGTERM), otherwise this blocks until one arrives.
    pub fn wait(mut self) -> MetricsReport {
        self.shared.queue.await_drained();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Replies travel job-channel → connection thread → socket; the
        // drain barrier covers the first hop. Give the (microsecond-scale)
        // socket writes a grace window before the caller tears down.
        std::thread::sleep(Duration::from_millis(50));
        MetricsReport::capture()
    }
}

/// Binds the listener and spawns the acceptor + worker threads.
///
/// # Errors
///
/// Propagates bind failures; everything after a successful bind is
/// handled inside the server threads.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: Queue::new(AdmissionConfig {
            queue_capacity: config.queue_capacity,
            per_tenant_in_flight: config.per_tenant_in_flight,
            workers: config.workers,
        }),
        cache: ArtifactCache::new(config.cache_capacity),
        base_session: SessionConfig::from_env(),
        prev_builds: Mutex::new(HashMap::new()),
        connections: AtomicUsize::new(0),
        config,
    });
    let workers = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("dft-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("dft-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn acceptor")
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.queue.is_draining() {
            return; // closes the listener
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let spawned = std::thread::Builder::new()
                    .name("dft-serve-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &shared);
                        shared.connections.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: shed the connection, keep serving.
                    obs::Counter::new("serve.conn.spawn_failed").add(1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads one `\n`-terminated line, bounded by [`MAX_LINE_BYTES`].
///
/// `Ok(None)` on clean EOF; `Err(true)` when the line overflowed the
/// bound (answerable), `Err(false)` on I/O errors (connection is gone).
fn read_bounded_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, bool> {
    let mut line = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(false),
        };
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                // EOF mid-line: treat the fragment as the final line.
                Ok(Some(String::from_utf8_lossy(&line).into_owned()))
            };
        }
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..nl]);
            reader.consume(nl + 1);
            if line.len() > MAX_LINE_BYTES {
                return Err(true);
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        let n = buf.len();
        line.extend_from_slice(buf);
        reader.consume(n);
        if line.len() > MAX_LINE_BYTES {
            return Err(true);
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(true) => {
                let resp = error_response("", "request line exceeds 1 MiB");
                let _ = writeln!(writer, "{resp}");
                return;
            }
            Err(false) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = dispatch(&line, shared);
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

fn error_response(id: &str, message: &str) -> String {
    Json::obj([
        ("id", Json::str(id)),
        ("status", Json::str("error")),
        ("error", Json::str(message)),
    ])
    .to_line()
}

fn rejected_response(id: &str, rejection: &Rejection) -> String {
    Json::obj([
        ("id", Json::str(id)),
        ("status", Json::str("rejected")),
        ("reason", Json::str(rejection.reason.as_str())),
        ("retry_after_ms", Json::num(rejection.retry_after_ms as f64)),
    ])
    .to_line()
}

/// Handles one request line end to end, always producing a response line.
fn dispatch(line: &str, shared: &Arc<Shared>) -> String {
    static REJECTED: obs::Counter = obs::Counter::new("serve.rejected");
    let request = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => {
            obs::Counter::new("serve.malformed").add(1);
            return error_response("", &e.0);
        }
    };
    match request {
        Request::Ping => Json::obj([
            ("status", Json::str("ok")),
            ("op", Json::str("ping")),
            ("draining", Json::Bool(shared.queue.is_draining())),
        ])
        .to_line(),
        Request::Metrics => {
            let report = MetricsReport::capture();
            let parsed = Json::parse(&report.to_json()).unwrap_or(Json::Null);
            Json::obj([("status", Json::str("ok")), ("metrics", parsed)]).to_line()
        }
        Request::Shutdown => {
            shared.queue.begin_drain();
            Json::obj([("status", Json::str("ok")), ("draining", Json::Bool(true))]).to_line()
        }
        Request::Analyse(request) => {
            let id = request.id.clone();
            let tenant = request.tenant.clone();
            let (reply, rx) = mpsc::channel();
            match shared.queue.push(&tenant, Job { request, reply }) {
                Err(rejection) => {
                    REJECTED.add(1);
                    rejected_response(&id, &rejection)
                }
                Ok(()) => rx
                    .recv()
                    .unwrap_or_else(|_| error_response(&id, "worker dropped the request")),
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((tenant, job)) = shared.queue.pop() {
        let started = Instant::now();
        let id = job.request.id.clone();
        // The pipeline already isolates module panics; this outer guard
        // catches server-side bugs so a worker never dies with the queue
        // slot held.
        let response = catch_unwind(AssertUnwindSafe(|| handle_analyse(shared, &job.request)))
            .unwrap_or_else(|_| {
                obs::Counter::new("serve.worker_panics").add(1);
                error_response(&id, "internal error while processing the request")
            });
        let _ = job.reply.send(response);
        shared.queue.complete(&tenant, started.elapsed());
    }
}

fn outcome_json(outcome: &RunOutcome) -> (Json, Json) {
    match outcome {
        RunOutcome::Ok => (Json::str("ok"), Json::Null),
        RunOutcome::Failed { error } => (Json::str("failed"), Json::str(error.clone())),
        RunOutcome::TimedOut { reason } => (Json::str("timed-out"), Json::str(reason.clone())),
        RunOutcome::Panicked { payload } => (Json::str("panicked"), Json::str(payload.clone())),
    }
}

fn testcase_json(result: &TestcaseResult, retry: Option<&RetryReport>) -> Json {
    let (outcome, detail) = outcome_json(&result.outcome);
    Json::obj([
        ("name", Json::str(result.name.clone())),
        ("outcome", outcome),
        ("detail", detail),
        (
            "attempts",
            Json::num(retry.map_or(1, |r| r.attempts.len()) as f64),
        ),
        (
            "salvaged",
            Json::Bool(retry.is_some_and(RetryReport::salvaged)),
        ),
        ("warnings", Json::num(result.warnings.len() as f64)),
    ])
}

/// One testcase's assertion verdicts. Femtosecond violation times are
/// serialized as strings — they exceed the integers JSON numbers carry
/// exactly (2^53 fs is nine simulated seconds); `first_violation_us` is
/// the lossy numeric convenience.
fn verdicts_json(result: &TestcaseResult) -> Json {
    Json::obj([
        ("testcase", Json::str(result.name.clone())),
        (
            "verdicts",
            Json::Arr(
                result
                    .verdicts
                    .iter()
                    .map(|v| {
                        let mut fields = vec![("name", Json::str(v.name.clone()))];
                        match v.verdict {
                            Verdict::Holds => fields.push(("verdict", Json::str("holds"))),
                            Verdict::Vacuous => fields.push(("verdict", Json::str("vacuous"))),
                            Verdict::Inconclusive => {
                                fields.push(("verdict", Json::str("inconclusive")))
                            }
                            Verdict::Fails {
                                first_violation_time,
                            } => {
                                fields.push(("verdict", Json::str("fails")));
                                fields.push((
                                    "first_violation_fs",
                                    Json::str(first_violation_time.as_fs().to_string()),
                                ));
                                fields.push((
                                    "first_violation_us",
                                    Json::num(first_violation_time.as_fs() as f64 / 1e9),
                                ));
                            }
                        }
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs one `analyse` request to completion and renders its response.
fn handle_analyse(shared: &Arc<Shared>, request: &AnalyseRequest) -> String {
    static REQUESTS: obs::Counter = obs::Counter::new("serve.requests");
    static DEGRADED: obs::Counter = obs::Counter::new("serve.degraded_responses");
    static PREEMPTED: obs::Counter = obs::Counter::new("serve.deadline_preempted");
    REQUESTS.add(1);
    let started = Instant::now();
    let deadline = request
        .deadline_ms
        .map(|ms| started + Duration::from_millis(ms));
    let before = MetricsReport::capture();

    // Per-request session knobs: the server's environment-resolved base,
    // overridden by the request.
    let mut session_config = shared.base_session;
    if let Some(threads) = request.threads {
        session_config = session_config.with_threads(threads);
    }
    if let Some(strategy) = request.strategy {
        session_config = session_config.with_strategy(strategy);
    }

    // Artifact cache: key on everything the frozen artifacts depend on.
    let material = format!(
        "{};tracking={:?}",
        request.design.cache_key_material(),
        session_config.tracking
    );
    // Second tier: on a whole-design miss, the family's previous frozen
    // build (if any) seeds an incremental rebuild — only models the edit
    // touched are recomputed, the rest splice. `DFT_INCR=0` (or
    // `incremental: false` per request config) disables the tier.
    let family_key = format!(
        "{};tracking={:?}",
        request.design.family(),
        session_config.tracking
    );
    let via_incremental = std::cell::Cell::new(false);
    let elaborate_started = Instant::now();
    let built = shared.cache.get_or_build(fnv1a(material.as_bytes()), || {
        request.design.design().map(|design| {
            let prev = if session_config.incremental {
                let prev_builds = shared.prev_builds.lock().unwrap_or_else(|p| p.into_inner());
                prev_builds.get(&family_key).map(Arc::clone)
            } else {
                None
            };
            match prev {
                Some(prev) => {
                    via_incremental.set(true);
                    SessionArtifacts::build_incremental(design, &prev, &session_config)
                }
                None => SessionArtifacts::build_with(design, &session_config),
            }
        })
    });
    let (artifacts, warm) = match built {
        Ok(pair) => pair,
        Err(e) => return error_response(&request.id, &format!("elaboration failed: {e}")),
    };
    let elaborate_ms = elaborate_started.elapsed().as_secs_f64() * 1e3;
    if !warm {
        let mut prev_builds = shared.prev_builds.lock().unwrap_or_else(|p| p.into_inner());
        prev_builds.insert(family_key, Arc::clone(&artifacts));
    }
    // `cold | warm | incremental` attribution: `warm` is a whole-design
    // hit; a miss that spliced at least one model from the family's
    // previous build is `incremental`; everything else (including a
    // splice attempt where every model changed) is `cold`.
    let artifact_state = if warm {
        "warm"
    } else if via_incremental.get() && artifacts.models_rebuilt() < artifacts.model_count() {
        "incremental"
    } else {
        "cold"
    };
    let models_rebuilt = if warm { 0 } else { artifacts.models_rebuilt() };
    let mut session = DftSession::from_artifacts(artifacts, session_config);
    if !request.assertions.is_empty() {
        session.set_assertions(request.assertions.clone());
    }

    // Resolve the batch (empty selector = the design's full suite).
    let suite = request.design.suite();
    let selectors: Vec<TestcaseSel> = if request.testcases.is_empty() {
        suite
            .iter()
            .map(|tc| TestcaseSel::Named(tc.name.clone()))
            .collect()
    } else {
        request.testcases.clone()
    };

    let policy = RetryPolicy {
        max_retries: request.retries.unwrap_or(shared.config.default_retries),
        backoff_base: shared.config.retry_backoff,
        sleep: shared.config.retry_sleep,
        ..RetryPolicy::default()
    };
    let mut limits = RunLimits::none();
    if let Some(n) = request.max_activations {
        limits = limits.with_max_activations(n);
    }
    if let Some(n) = request.max_events {
        limits = limits.with_max_events(n);
    }
    if let Some(at) = deadline {
        limits = limits.with_deadline(at);
    }

    let mut retries: Vec<Option<RetryReport>> = Vec::new();
    for sel in &selectors {
        let tc = match sel.resolve(&suite) {
            Ok(tc) => tc,
            Err(e) => {
                let name = match sel {
                    TestcaseSel::Named(name) => name.clone(),
                    TestcaseSel::Custom(tc) => tc.name.clone(),
                };
                session.push_run(TestcaseResult {
                    name,
                    outcome: RunOutcome::Failed {
                        error: e.to_string(),
                    },
                    ..TestcaseResult::default()
                });
                retries.push(None);
                continue;
            }
        };
        // Deadline pre-check: a request that has already spent its budget
        // degrades the *remaining* testcases instead of running them —
        // partial coverage from the completed prefix is still reported.
        if deadline.is_some_and(|at| Instant::now() >= at) {
            PREEMPTED.add(1);
            session.push_run(TestcaseResult {
                name: tc.name.clone(),
                outcome: RunOutcome::TimedOut {
                    reason: "request deadline exhausted before start".to_owned(),
                },
                ..TestcaseResult::default()
            });
            retries.push(None);
            continue;
        }
        let report = session.run_testcase_retrying(
            &tc.name,
            |_attempt| request.design.cluster(&tc, request.fault.as_ref()),
            tc.duration,
            limits,
            &policy,
        );
        retries.push(Some(report));
    }

    let coverage = session.coverage();
    let runs = session.runs();
    let degraded = runs.iter().any(|r| r.outcome.is_degraded());
    if degraded {
        DEGRADED.add(1);
    }
    let testcases = Json::Arr(
        runs.iter()
            .zip(&retries)
            .map(|(r, retry)| testcase_json(r, retry.as_ref()))
            .collect(),
    );
    let (exercised, total) = coverage.total_ratio();
    let mut response = vec![
        ("id", Json::str(request.id.clone())),
        (
            "status",
            Json::str(if degraded { "degraded" } else { "ok" }),
        ),
        ("design", Json::str(request.design.label())),
        ("cache", Json::str(if warm { "warm" } else { "cold" })),
        ("artifact", Json::str(artifact_state)),
        ("testcases", testcases),
        (
            "coverage",
            Json::obj([
                ("exercised", Json::num(exercised as f64)),
                ("static_total", Json::num(total as f64)),
                ("percent", Json::num(coverage.total_percent())),
            ]),
        ),
    ];
    if request.tables {
        let row = Table2Row::from_coverage(&request.design.label(), 0, runs.len(), &coverage);
        response.push(("table1", Json::str(render_table1(&coverage))));
        response.push(("table2", Json::str(render_table2(&[row]))));
    }
    // Verdicts ride along exactly when the request monitored assertions,
    // so assertion-free responses stay byte-identical to earlier builds.
    if !request.assertions.is_empty() {
        response.push((
            "verdicts",
            Json::Arr(runs.iter().map(verdicts_json).collect()),
        ));
    }
    // Per-request observability: the registry delta over this request
    // (empty unless the server runs with DFT_METRICS=1).
    let delta = MetricsReport::capture().delta(&before);
    let stages = Json::parse(&delta.to_json()).unwrap_or(Json::Null);
    response.push((
        "timings",
        Json::obj([
            ("elaborate_ms", Json::num(elaborate_ms)),
            ("models_rebuilt", Json::num(models_rebuilt as f64)),
            ("total_ms", Json::num(started.elapsed().as_secs_f64() * 1e3)),
            ("stages", stages),
        ]),
    ));
    Json::Obj(
        response
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
    .to_line()
}

//! Admission control: a bounded job queue with per-tenant in-flight caps,
//! backpressure hints and a graceful drain protocol.
//!
//! The server enqueues every `analyse` request here; a fixed worker pool
//! pops jobs. When the queue is full, a tenant exceeds its cap, or the
//! server is draining, the request is **rejected immediately** with a
//! machine-readable reason and a `retry_after_ms` hint derived from an
//! EWMA of recent service times — a loaded server answers "try later in
//! about this long" in microseconds instead of timing the client out.
//!
//! Drain protocol (SIGTERM or a `shutdown` request): [`Queue::begin_drain`]
//! flips the draining flag, after which every new push is rejected;
//! workers keep popping until the queue is empty, then [`Queue::pop`]
//! returns `None` and they exit; [`Queue::await_drained`] blocks until
//! queued and executing both reach zero, at which point in-flight work has
//! been answered and the listener can close.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Most jobs waiting to execute (excess is rejected, not buffered).
    pub queue_capacity: usize,
    /// Most jobs one tenant may have queued + executing at once.
    pub per_tenant_in_flight: usize,
    /// Worker-pool size, used to scale the retry-after estimate.
    pub workers: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 32,
            per_tenant_in_flight: 4,
            workers: 2,
        }
    }
}

/// Why a job was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The global queue is at capacity.
    QueueFull,
    /// The tenant is at its in-flight cap.
    TenantBusy,
    /// The server is draining; it will not take new work.
    Draining,
}

impl RejectReason {
    /// Wire-stable reason string.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::TenantBusy => "tenant-busy",
            RejectReason::Draining => "draining",
        }
    }
}

/// A rejected push: the reason plus a backoff hint for the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Why the job was rejected.
    pub reason: RejectReason,
    /// Suggested client backoff before retrying. Zero when retrying is
    /// pointless (draining).
    pub retry_after_ms: u64,
}

struct State<T> {
    queued: VecDeque<(String, T)>,
    /// Per-tenant queued + executing counts (entries removed at zero).
    tenants: HashMap<String, usize>,
    executing: usize,
    draining: bool,
    /// Exponentially weighted moving average of job service time.
    ewma_service_ms: f64,
}

/// The bounded admission queue (generic so tests can enqueue plain
/// values; the server enqueues its job structs).
pub struct Queue<T> {
    state: Mutex<State<T>>,
    /// Signalled when work arrives or drain begins (workers wait here).
    ready: Condvar,
    /// Signalled when a job completes (drain waiter sleeps here).
    idle: Condvar,
    config: AdmissionConfig,
}

impl<T> Queue<T> {
    /// Creates an empty queue.
    pub fn new(config: AdmissionConfig) -> Queue<T> {
        Queue {
            state: Mutex::new(State {
                queued: VecDeque::new(),
                tenants: HashMap::new(),
                executing: 0,
                draining: false,
                // Seed: a request with a cold cache costs a few hundred
                // ms; refined by the first completions.
                ewma_service_ms: 200.0,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
            config,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Estimated wait until capacity frees up, given `backlog` jobs ahead.
    fn retry_hint(&self, ewma_ms: f64, backlog: usize) -> u64 {
        let per_worker = backlog as f64 / self.config.workers.max(1) as f64;
        // At least one service-time quantum, floored to something humane.
        (ewma_ms * (per_worker + 1.0)).ceil().max(25.0) as u64
    }

    /// Offers a job for `tenant`. Never blocks: either the job is queued
    /// or a [`Rejection`] with a retry hint comes back immediately.
    pub fn push(&self, tenant: &str, job: T) -> Result<(), Rejection> {
        let mut st = self.lock();
        if st.draining {
            return Err(Rejection {
                reason: RejectReason::Draining,
                retry_after_ms: 0,
            });
        }
        if st.queued.len() >= self.config.queue_capacity {
            let hint = self.retry_hint(st.ewma_service_ms, st.queued.len() + st.executing);
            return Err(Rejection {
                reason: RejectReason::QueueFull,
                retry_after_ms: hint,
            });
        }
        let inflight = st.tenants.get(tenant).copied().unwrap_or(0);
        if inflight >= self.config.per_tenant_in_flight {
            let hint = self.retry_hint(st.ewma_service_ms, inflight);
            return Err(Rejection {
                reason: RejectReason::TenantBusy,
                retry_after_ms: hint,
            });
        }
        *st.tenants.entry(tenant.to_owned()).or_insert(0) += 1;
        st.queued.push_back((tenant.to_owned(), job));
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is draining *and*
    /// empty (the worker should exit). Each returned job must be matched
    /// by exactly one [`Queue::complete`] call.
    pub fn pop(&self) -> Option<(String, T)> {
        let mut st = self.lock();
        loop {
            if let Some((tenant, job)) = st.queued.pop_front() {
                st.executing += 1;
                return Some((tenant, job));
            }
            if st.draining {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Records a job completion: frees the tenant slot, folds the service
    /// time into the EWMA, and wakes the drain waiter.
    pub fn complete(&self, tenant: &str, service: Duration) {
        let mut st = self.lock();
        st.executing = st.executing.saturating_sub(1);
        if let Some(n) = st.tenants.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.tenants.remove(tenant);
            }
        }
        let ms = service.as_secs_f64() * 1e3;
        st.ewma_service_ms = 0.8 * st.ewma_service_ms + 0.2 * ms;
        drop(st);
        self.idle.notify_all();
    }

    /// Flips the queue into draining mode: every subsequent push is
    /// rejected, and workers exit once the backlog is consumed.
    pub fn begin_drain(&self) {
        let mut st = self.lock();
        st.draining = true;
        drop(st);
        // Wake every blocked worker so it can observe the flag...
        self.ready.notify_all();
        // ...and the drain waiter, in case the queue was already idle.
        self.idle.notify_all();
    }

    /// True once [`Queue::begin_drain`] has run.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Blocks until draining *and* fully idle (no queued or executing
    /// jobs) — i.e. every admitted request has been answered.
    pub fn await_drained(&self) {
        let mut st = self.lock();
        while !(st.draining && st.queued.is_empty() && st.executing == 0) {
            st = self.idle.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// `(queued, executing)` — for metrics and tests.
    pub fn depth(&self) -> (usize, usize) {
        let st = self.lock();
        (st.queued.len(), st.executing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn config(capacity: usize, per_tenant: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: capacity,
            per_tenant_in_flight: per_tenant,
            workers: 2,
        }
    }

    #[test]
    fn queue_full_rejects_with_hint() {
        let q: Queue<u32> = Queue::new(config(2, 10));
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        let rej = q.push("a", 3).unwrap_err();
        assert_eq!(rej.reason, RejectReason::QueueFull);
        assert!(rej.retry_after_ms >= 25, "{rej:?}");
    }

    #[test]
    fn tenant_cap_is_per_tenant() {
        let q: Queue<u32> = Queue::new(config(10, 1));
        q.push("a", 1).unwrap();
        let rej = q.push("a", 2).unwrap_err();
        assert_eq!(rej.reason, RejectReason::TenantBusy);
        // A different tenant is unaffected.
        q.push("b", 3).unwrap();
        // Completing the job frees the slot only after pop + complete.
        let (tenant, _) = q.pop().unwrap();
        q.complete(&tenant, Duration::from_millis(5));
        q.push("a", 4).unwrap();
    }

    #[test]
    fn drain_rejects_new_work_and_unblocks_workers() {
        let q: Arc<Queue<u32>> = Arc::new(Queue::new(config(10, 10)));
        q.push("a", 1).unwrap();
        q.begin_drain();
        let rej = q.push("a", 2).unwrap_err();
        assert_eq!(rej.reason, RejectReason::Draining);
        // Backlog still served.
        let (tenant, job) = q.pop().unwrap();
        assert_eq!(job, 1);
        q.complete(&tenant, Duration::from_millis(1));
        // Then workers are released.
        assert!(q.pop().is_none());
        q.await_drained(); // returns because queued == executing == 0
    }

    #[test]
    fn await_drained_waits_for_executing_jobs() {
        let q: Arc<Queue<u32>> = Arc::new(Queue::new(config(10, 10)));
        q.push("a", 1).unwrap();
        let (tenant, _) = q.pop().unwrap();
        q.begin_drain();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.await_drained())
        };
        // The waiter cannot finish while the job executes.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "drain must wait for in-flight work");
        q.complete(&tenant, Duration::from_millis(1));
        waiter.join().unwrap();
    }

    #[test]
    fn ewma_tracks_service_time() {
        let q: Queue<u32> = Queue::new(config(1, 10));
        for _ in 0..50 {
            q.push("a", 1).unwrap();
            let (t, _) = q.pop().unwrap();
            q.complete(&t, Duration::from_millis(1000));
        }
        q.push("a", 1).unwrap();
        let rej = q.push("a", 2).unwrap_err();
        // Hint converged towards the 1 s service time.
        assert!(rej.retry_after_ms > 500, "{rej:?}");
    }
}

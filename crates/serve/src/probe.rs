//! The built-in **probe** design: a minimal producer/consumer TDF cluster
//! whose producer can be wrapped in a fault saboteur per request. The
//! soak tests drive panics, stalls and event corruption through the whole
//! server path against this design, so a misbehaving module exercises
//! worker isolation, retries and degraded responses without touching the
//! case studies.

use std::time::Duration;

use crate::proto::FaultSpec;
use dft_core::{Design, Result as DftResult};
use stimuli::{Signal, Testcase};
use tdf_interp::{Interface, InterpModule, TdfModelDef};
use tdf_sim::{Cluster, FaultPlan, FaultyEvents, PanicAfter, SimTime, StallAfter, TdfModule};

/// The probe's minic source (two models, one def-use chain each).
pub const PROBE_SRC: &str = "\
void producer::processing()
{
    double v = ip_in;
    double o = v * 2;
    op_y = o;
}
void consumer::processing()
{
    double got = ip_x;
    op_z = got + 1;
}";

/// The stimulus channel probe testcases drive.
pub const PROBE_CHANNEL: &str = "level";

const PROBE_TIMESTEP: SimTime = SimTime::from_us(5);

fn probe_defs() -> Vec<TdfModelDef> {
    vec![
        TdfModelDef::new(
            "producer",
            Interface::new()
                .input("ip_in")
                .output("op_y")
                .timestep(PROBE_TIMESTEP),
        ),
        TdfModelDef::new("consumer", Interface::new().input("ip_x").output("op_z")),
    ]
}

/// Builds the probe cluster for one testcase, wrapping the producer in
/// the requested saboteur (if any).
pub fn probe_cluster(tc: &Testcase, fault: Option<&FaultSpec>) -> DftResult<Cluster> {
    let tu = minic::parse(PROBE_SRC)?;
    let mut cluster = Cluster::new("probe");
    let src = cluster.add_module(Box::new(
        tc.signal(PROBE_CHANNEL).into_source("stim", PROBE_TIMESTEP),
    ))?;
    let defs = probe_defs();
    let producer: Box<dyn TdfModule> = Box::new(InterpModule::new(
        &tu,
        "producer",
        defs[0].interface.clone(),
    )?);
    let producer: Box<dyn TdfModule> = match fault {
        None => producer,
        Some(FaultSpec::PanicAfter { after }) => Box::new(PanicAfter::new(producer, *after)),
        Some(FaultSpec::Stall { after, stall_ms }) => Box::new(StallAfter::new(
            producer,
            *after,
            Duration::from_millis(*stall_ms),
        )),
        Some(FaultSpec::CorruptEvents { seed, rate }) => Box::new(FaultyEvents::new(
            producer,
            FaultPlan::new().with_seed(*seed).with_corrupt_events(*rate),
        )),
    };
    let p = cluster.add_module(producer)?;
    let c = cluster.add_module(Box::new(InterpModule::new(
        &tu,
        "consumer",
        defs[1].interface.clone(),
    )?))?;
    cluster.connect(src, "op_out", p, "ip_in")?;
    cluster.connect(p, "op_y", c, "ip_x")?;
    Ok(cluster)
}

/// Elaborates the probe design for static analysis.
pub fn probe_design() -> DftResult<Design> {
    // The netlist needs a (fault-free) reference cluster.
    let reference = probe_cluster(&probe_testcases()[0], None)?;
    Design::new(minic::parse(PROBE_SRC)?, probe_defs(), reference.netlist())
}

/// The probe's tiny named suite (two constant-level testcases).
pub fn probe_testcases() -> Vec<Testcase> {
    let dur = SimTime::from_us(40); // 8 producer activations
    vec![
        Testcase::new("P1", dur).with(PROBE_CHANNEL, Signal::Constant(1.0)),
        Testcase::new("P2", dur).with(PROBE_CHANNEL, Signal::Constant(2.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::{DftSession, RunOutcome};

    #[test]
    fn probe_pipeline_runs_clean() {
        let mut session = DftSession::new(probe_design().unwrap()).unwrap();
        for tc in probe_testcases() {
            let cluster = probe_cluster(&tc, None).unwrap();
            session
                .run_testcase(&tc.name, cluster, tc.duration)
                .unwrap();
        }
        let cov = session.coverage();
        assert!(cov.exercised_count() > 0, "probe exercises associations");
        assert!(session.runs().iter().all(|r| r.outcome == RunOutcome::Ok));
    }

    #[test]
    fn sabotaged_probe_degrades_not_dies() {
        let mut session = DftSession::new(probe_design().unwrap()).unwrap();
        let tc = &probe_testcases()[0];
        let fault = FaultSpec::PanicAfter { after: 2 };
        let cluster = probe_cluster(tc, Some(&fault)).unwrap();
        let spec = dft_core::TestcaseSpec::new(&tc.name, cluster, tc.duration);
        session.run_testcases_with(vec![spec], tdf_sim::RunLimits::none());
        assert!(matches!(
            session.runs()[0].outcome,
            RunOutcome::Panicked { .. }
        ));
    }
}

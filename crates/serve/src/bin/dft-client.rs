//! A minimal line-protocol client: sends each CLI argument (or stdin
//! line) as one request line to a running `dft-serve`, printing each
//! response line to stdout.
//!
//! ```text
//! dft-client 127.0.0.1:4870 '{"op":"ping"}' '{"op":"analyse","design":"sensor"}'
//! echo '{"op":"metrics"}' | dft-client 127.0.0.1:4870
//! ```
//!
//! Exit status: 0 when every response has `"status":"ok"`, 2 when any
//! response was degraded/rejected/error, 1 on connection failures.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!("usage: dft-client <addr> [request-json ...]");
        std::process::exit(1);
    };
    let requests: Vec<String> = args.collect();
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dft-client: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut all_ok = true;
    let mut roundtrip = |request: &str| -> bool {
        if writeln!(writer, "{request}").is_err() {
            return false;
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) | Err(_) => false,
            Ok(_) => {
                print!("{response}");
                // Cheap status sniff; the response is a single JSON obj.
                if !response.contains("\"status\":\"ok\"") {
                    all_ok = false;
                }
                true
            }
        }
    };
    if requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if !roundtrip(&line) {
                eprintln!("dft-client: connection closed");
                std::process::exit(1);
            }
        }
    } else {
        for request in &requests {
            if !roundtrip(request) {
                eprintln!("dft-client: connection closed");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(if all_ok { 0 } else { 2 });
}

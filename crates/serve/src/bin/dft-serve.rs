//! The `dft-serve` binary: binds the analysis server, then runs until a
//! SIGTERM/SIGINT (or an in-band `shutdown` request) triggers a graceful
//! drain. The final metrics snapshot is printed to stderr on exit.
//!
//! Configuration via `DFT_SERVE_ADDR` (default `127.0.0.1:4870`) and the
//! other `DFT_SERVE_*` variables (see `ServeConfig::from_env`), plus the
//! usual pipeline knobs (`DFT_THREADS`, `DFT_STREAM`, `DFT_SUBSUME`,
//! `DFT_METRICS`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Async-signal-safe by construction: the handler only stores a
    // relaxed atomic. Raw libc `signal` via the C runtime the binary is
    // linked against anyway — no crate dependency.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    install_signal_handlers();
    let mut config = dft_serve::ServeConfig::from_env();
    if std::env::var("DFT_SERVE_ADDR").is_err() {
        config.addr = "127.0.0.1:4870".to_owned();
    }
    let handle = match dft_serve::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("dft-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The test harness greps for this exact line to learn the port.
    println!("dft-serve listening on {}", handle.addr());
    while !SHUTDOWN.load(Ordering::Relaxed) && !handle.is_draining() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("dft-serve: draining");
    handle.begin_shutdown();
    let report = handle.wait();
    let text = report.to_text();
    if !text.is_empty() {
        eprintln!("{text}");
    }
    eprintln!("dft-serve: drained, bye");
}
